#include <memory>
#include <utility>
#include <vector>

#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/formats/driver_util.h"
#include "engine/formats/drivers.h"
#include "engine/physical_plan.h"
#include "jit/codegen.h"
#include "jit/pipeline_codegen.h"
#include "scan/fused_pipeline.h"
#include "scan/insitu_bin_scan.h"
#include "scan/jit_scan.h"
#include "scan/loader.h"
#include "scan/morsel.h"
#include "scan/shred_scan.h"

namespace raw {
namespace {

class BinaryFormatDriver final : public FormatDriver {
 public:
  FileFormat format() const override { return FileFormat::kBinary; }
  std::string_view name() const override { return "bin"; }

  Status OpenTable(TableEntry& entry) const override {
    RAW_RETURN_NOT_OK(entry.EnsureMmap().status());
    return entry.EnsureBinReader();
  }

  StatusOr<std::unique_ptr<InMemoryTable>> LoadTable(
      const TableEntry& entry) const override {
    std::vector<int> all;
    for (int c = 0; c < entry.info.schema.num_fields(); ++c) all.push_back(c);
    return LoadBinaryTable(entry.bin_reader(), all);
  }

  std::vector<ScanRange> SplitMorsels(const FormatScanContext& tc,
                                      int target_morsels) const override {
    return SplitRowRanges(tc.entry->bin_reader()->num_rows(), target_morsels);
  }

  /// Full binary scan; with num_threads > 1, row-range morsels. Binary
  /// morsels know their first row up front, so ids stay global (JIT kernels
  /// emit window-local ids that JitScanOperator rebases by row_id_offset).
  StatusOr<OperatorPtr> BuildScan(FormatScanContext& tc,
                                  const std::vector<int>& cols,
                                  const Schema& qualified) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PlannerOptions& opts = *tc.opts;
    (*tc.desc) << "[bin-scan " << info.name << "] ";

    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      morsels = SplitMorsels(tc, tc.num_threads * 4);
    }

    if (opts.access_path == AccessPathKind::kJit) {
      RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                           BinaryLayout::Create(info.schema));
      auto make_jit_args = [&](int64_t first, int64_t count) {
        AccessPathSpec spec;
        spec.format = FileFormat::kBinary;
        spec.mode = ScanMode::kSequential;
        spec.row_width = layout.row_width();
        for (int c : cols) {
          spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
          spec.column_offsets.push_back(layout.ColumnOffset(c));
        }
        JitScanArgs args;
        args.spec = std::move(spec);
        args.output_schema = qualified;
        args.file = entry->mmap();
        args.total_rows = count;
        args.batch_rows = opts.batch_rows;
        if (first > 0 || count < entry->bin_reader()->num_rows()) {
          const uint64_t width = static_cast<uint64_t>(layout.row_width());
          args.window_begin = static_cast<uint64_t>(first) * width;
          args.window_end = static_cast<uint64_t>(first + count) * width;
          args.row_id_offset = first;
        }
        return args;
      };
      if (morsels.size() > 1) {
        ParallelTableScanOperator::Options popts;
        popts.deadline = tc.opts->deadline;
        popts.num_threads = tc.num_threads;
        std::vector<OperatorPtr> children;
        for (const ScanRange& m : morsels) {
          children.push_back(std::make_unique<JitScanOperator>(
              tc.jit, make_jit_args(m.begin, m.count())));
        }
        (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                   << morsels.size() << "] ";
        return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
            qualified, std::move(children), std::move(popts)));
      }
      return OperatorPtr(std::make_unique<JitScanOperator>(
          tc.jit, make_jit_args(0, entry->bin_reader()->num_rows())));
    }

    auto make_insitu = [&](int64_t first, int64_t count) {
      BinScanSpec spec;
      spec.outputs = cols;
      spec.batch_rows = opts.batch_rows;
      spec.range = ScanRange::Rows(first, count);
      return WrapQualified(std::make_unique<InsituBinScanOperator>(
                               entry->bin_reader(), std::move(spec)),
                           qualified);
    };
    if (morsels.size() > 1) {
      ParallelTableScanOperator::Options popts;
      popts.deadline = tc.opts->deadline;
      popts.num_threads = tc.num_threads;
      std::vector<OperatorPtr> children;
      for (const ScanRange& m : morsels) {
        children.push_back(make_insitu(m.begin, m.count()));
      }
      (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                 << morsels.size() << "] ";
      return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
          qualified, std::move(children), std::move(popts)));
    }
    return make_insitu(0, entry->bin_reader()->num_rows());
  }

  StatusOr<RowFetcherPtr> BuildFetcher(FormatScanContext& tc,
                                       const std::vector<int>& cols,
                                       const Schema& qualified) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    if (tc.opts->access_path == AccessPathKind::kJit) {
      RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                           BinaryLayout::Create(info.schema));
      AccessPathSpec spec;
      spec.format = FileFormat::kBinary;
      spec.mode = ScanMode::kByRowIndex;
      spec.row_width = layout.row_width();
      for (int c : cols) {
        spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
        spec.column_offsets.push_back(layout.ColumnOffset(c));
      }
      JitScanArgs args;
      args.spec = std::move(spec);
      args.output_schema = qualified;
      args.file = entry->mmap();
      return RowFetcherPtr(
          std::make_unique<JitRowFetcher>(tc.jit, std::move(args)));
    }
    BinScanSpec spec;
    spec.outputs = cols;
    auto fetcher =
        std::make_unique<InsituRowFetcher>(entry->bin_reader(), std::move(spec));
    fetcher->set_fields(qualified);
    return RowFetcherPtr(std::move(fetcher));
  }

  FormatCostParams cost_params(const CostParams& base) const override {
    FormatCostParams p;
    p.read_value = base.bin_read_value;
    p.random_penalty = base.bin_random_penalty;
    return p;
  }

  StatusOr<std::string> EmitJitSource(const AccessPathSpec& spec) const override {
    return GenerateBinScanSource(spec);
  }

  StatusOr<std::string> EmitJitPipelineSource(
      const PipelineSpec& spec) const override {
    return GenerateBinPipelineSource(spec);
  }

  /// Fused binary pipelines scan row ranges sequentially; kernels emit
  /// global row ids via dense_row_base, so morsel children need no rebase.
  StatusOr<OperatorPtr> BuildFusedPipeline(
      FormatScanContext& tc, const FusedPipelineRequest& req) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PlannerOptions& opts = *tc.opts;
    RAW_ASSIGN_OR_RETURN(BinaryLayout layout,
                         BinaryLayout::Create(info.schema));

    PipelineSpec spec;
    spec.scan.format = FileFormat::kBinary;
    spec.scan.mode = ScanMode::kSequential;
    spec.scan.row_width = layout.row_width();
    for (const PipelineInput& in : req.inputs) {
      if (in.dense) continue;
      spec.scan.outputs.push_back(OutputField{in.column, in.type});
      spec.scan.column_offsets.push_back(layout.ColumnOffset(in.column));
    }
    spec.inputs = req.inputs;
    spec.predicates = req.predicates;
    spec.mode = req.mode;
    spec.projections = req.projections;
    spec.aggs = req.aggs;
    Schema out_schema = req.mode == PipelineOutputMode::kAggregate
                            ? FusedAggPartialSchema(req.aggs)
                            : req.output_schema;
    (*tc.desc) << "[fused-bin-scan " << info.name << "] ";

    const int64_t num_rows = entry->bin_reader()->num_rows();
    auto make_args = [&](int64_t first, int64_t count) {
      FusedPipelineArgs args;
      args.spec = spec;
      args.output_schema = out_schema;
      args.file = entry->mmap();
      args.total_rows = count;
      args.dense_row_base = first;
      args.dense_columns = req.dense_columns;
      args.batch_rows = opts.batch_rows;
      if (first > 0 || count < num_rows) {
        const uint64_t width = static_cast<uint64_t>(layout.row_width());
        args.window_begin = static_cast<uint64_t>(first) * width;
        args.window_end = static_cast<uint64_t>(first + count) * width;
      }
      return args;
    };

    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      morsels = SplitMorsels(tc, tc.num_threads * 4);
    }
    if (morsels.size() > 1) {
      ParallelTableScanOperator::Options popts;
      popts.deadline = tc.opts->deadline;
      popts.num_threads = tc.num_threads;
      std::vector<OperatorPtr> children;
      for (const ScanRange& m : morsels) {
        children.push_back(std::make_unique<FusedPipelineOperator>(
            tc.jit, make_args(m.begin, m.count())));
      }
      (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                 << morsels.size() << "] ";
      return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
          out_schema, std::move(children), std::move(popts)));
    }
    return OperatorPtr(std::make_unique<FusedPipelineOperator>(
        tc.jit, make_args(0, num_rows)));
  }
};

}  // namespace

std::unique_ptr<FormatDriver> MakeBinaryFormatDriver() {
  return std::make_unique<BinaryFormatDriver>();
}

}  // namespace raw
