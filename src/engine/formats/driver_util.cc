#include "engine/formats/driver_util.h"

#include "engine/planner.h"

namespace raw {

SelectColumnsOperator::SelectColumnsOperator(OperatorPtr child,
                                             std::vector<int> indices,
                                             std::vector<std::string> names)
    : child_(std::move(child)),
      indices_(std::move(indices)),
      names_(std::move(names)) {}

Status SelectColumnsOperator::Open() {
  RAW_RETURN_NOT_OK(child_->Open());
  Schema schema;
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < indices_.size(); ++i) {
    schema.AddField(names_[i], in.field(indices_[i]).type);
  }
  RAW_RETURN_NOT_OK(schema.Validate());
  schema_ = std::move(schema);
  return Status::OK();
}

StatusOr<ColumnBatch> SelectColumnsOperator::Next() {
  RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
  if (batch.end_of_stream()) return ColumnBatch::EndOfStream(schema_);
  ColumnBatch out(schema_);
  if (batch.empty()) return out;  // zero-row data batch
  for (int idx : indices_) out.AddColumn(batch.column(idx));
  out.SetNumRows(batch.num_rows());
  if (batch.has_row_ids()) out.SetRowIds(batch.row_ids());
  return out;
}

PmapPublishOperator::PmapPublishOperator(OperatorPtr child,
                                         std::shared_ptr<PositionalMap> map,
                                         TableEntry* entry)
    : child_(std::move(child)), map_(std::move(map)), entry_(entry) {}

PmapPublishOperator::~PmapPublishOperator() { Finish(/*publish=*/false); }

StatusOr<ColumnBatch> PmapPublishOperator::Next() {
  RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
  if (batch.end_of_stream()) drained_ = true;
  return batch;
}

Status PmapPublishOperator::Close() {
  Status status = child_->Close();
  Finish(/*publish=*/drained_ && status.ok());
  return status;
}

void PmapPublishOperator::Finish(bool publish) {
  if (finished_) return;
  finished_ = true;
  if (publish && map_ != nullptr && map_->CheckConsistency().ok()) {
    entry_->PublishPmap(std::move(map_));
  } else {
    entry_->AbandonPmapBuild();
  }
}

Schema QualifiedSchema(const TableEntry& entry, const std::vector<int>& cols) {
  Schema out;
  for (int c : cols) {
    out.AddField(QualifiedName(entry.info.name, entry.info.schema.field(c).name),
                 entry.info.schema.field(c).type);
  }
  return out;
}

OperatorPtr WrapQualified(OperatorPtr op, const Schema& qualified) {
  std::vector<int> idx(static_cast<size_t>(qualified.num_fields()));
  std::vector<std::string> names;
  for (int i = 0; i < qualified.num_fields(); ++i) {
    idx[static_cast<size_t>(i)] = i;
    names.push_back(qualified.field(i).name);
  }
  return std::make_unique<SelectColumnsOperator>(std::move(op), std::move(idx),
                                                 std::move(names));
}

bool AnyStringColumn(const Schema& schema, const std::vector<int>& cols) {
  for (int c : cols) {
    if (schema.field(c).type == DataType::kString) return true;
  }
  return false;
}

}  // namespace raw
