#ifndef RAW_ENGINE_FORMATS_BUILTIN_H_
#define RAW_ENGINE_FORMATS_BUILTIN_H_

namespace raw {

/// Registers the built-in format drivers (csv, bin, ref, jsonl, csv.gz) in
/// FormatRegistry::Global(). Idempotent and thread-safe; runs automatically
/// when a Catalog is constructed. Call it explicitly before using registry
/// consumers without an engine (JIT codegen, the cost model, direct
/// JitScanOperator use).
void EnsureBuiltinFormatDriversRegistered();

}  // namespace raw

#endif  // RAW_ENGINE_FORMATS_BUILTIN_H_
