#include "engine/formats/builtin.h"

#include <mutex>

#include "engine/formats/drivers.h"

namespace raw {

void EnsureBuiltinFormatDriversRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    FormatRegistry& registry = FormatRegistry::Global();
    // Statuses intentionally ignored: AlreadyExists just means user code
    // registered a replacement for a builtin slot before the first catalog
    // was constructed, which is a supported extension point.
    (void)registry.Register(MakeCsvFormatDriver());
    (void)registry.Register(MakeBinaryFormatDriver());
    (void)registry.Register(MakeRefFormatDriver());
    (void)registry.Register(MakeJsonlFormatDriver());
    (void)registry.Register(MakeCsvGzFormatDriver());
  });
}

}  // namespace raw
