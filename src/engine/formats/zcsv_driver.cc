#include <memory>
#include <utility>
#include <vector>

#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/formats/driver_util.h"
#include "engine/formats/drivers.h"
#include "engine/physical_plan.h"
#include "scan/morsel.h"
#include "scan/shred_scan.h"
#include "zcsv/zcsv_scan.h"

namespace raw {
namespace {

/// Publishes the block-offset index a cold compressed scan built once the
/// scan drains completely — the FormatAdaptiveState twin of
/// PmapPublishOperator (same claim/abandon discipline for partial scans).
class IndexPublishOperator : public Operator {
 public:
  IndexPublishOperator(OperatorPtr child, std::shared_ptr<GzipBlockIndex> index,
                       TableEntry* entry)
      : child_(std::move(child)), index_(std::move(index)), entry_(entry) {}
  ~IndexPublishOperator() override { Finish(/*publish=*/false); }

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override { return child_->Open(); }
  StatusOr<ColumnBatch> Next() override {
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, child_->Next());
    if (batch.end_of_stream()) drained_ = true;
    return batch;
  }
  Status Close() override {
    Status status = child_->Close();
    Finish(/*publish=*/drained_ && status.ok());
    return status;
  }
  std::string name() const override { return "IndexPublish"; }

 private:
  void Finish(bool publish) {
    if (finished_) return;
    finished_ = true;
    if (publish && index_ != nullptr && index_->CheckConsistency().ok()) {
      entry_->SetRowCountIfUnknown(index_->total_rows());
      entry_->PublishFormatState(std::move(index_));
    } else {
      entry_->AbandonFormatStateBuild();
    }
  }

  OperatorPtr child_;
  std::shared_ptr<GzipBlockIndex> index_;
  TableEntry* entry_;
  bool drained_ = false;
  bool finished_ = false;
};

const GzipBlockIndex* IndexView(const FormatScanContext& tc) {
  if (tc.format_state != nullptr) {
    return static_cast<const GzipBlockIndex*>(tc.format_state.get());
  }
  return static_cast<const GzipBlockIndex*>(tc.building_format_state.get());
}

class CsvGzFormatDriver final : public FormatDriver {
 public:
  FileFormat format() const override { return FileFormat::kCsvGz; }
  std::string_view name() const override { return "csv.gz"; }

  Status OpenTable(TableEntry& entry) const override {
    return entry.EnsureMmap().status();
  }

  StatusOr<std::unique_ptr<InMemoryTable>> LoadTable(
      const TableEntry& entry) const override {
    ZcsvScanSpec spec;
    spec.file_schema = entry.info.schema;
    for (int c = 0; c < entry.info.schema.num_fields(); ++c) {
      spec.outputs.push_back(c);
    }
    spec.options = entry.info.csv_options;
    ZcsvScanOperator scan(entry.mmap(), std::move(spec));
    RAW_RETURN_NOT_OK(scan.Open());
    auto table = std::make_unique<InMemoryTable>(scan.output_schema());
    while (true) {
      RAW_ASSIGN_OR_RETURN(ColumnBatch batch, scan.Next());
      if (batch.end_of_stream()) break;
      if (batch.empty()) continue;
      RAW_RETURN_NOT_OK(table->AppendBatch(batch));
    }
    RAW_RETURN_NOT_OK(scan.Close());
    return table;
  }

  /// Late scans navigate through the block-offset index: published, or
  /// claimed for construction as a side effect of this query's cold scan
  /// (the format-state analogue of the CSV positional-map protocol).
  bool EnsureLateScanNavigable(FormatScanContext& tc) const override {
    const PlannerOptions& opts = *tc.opts;
    if (tc.format_state != nullptr) return true;
    if (opts.access_path == AccessPathKind::kLoaded ||
        opts.access_path == AccessPathKind::kExternalTable ||
        !opts.build_positional_map) {
      return false;
    }
    if (tc.building_format_state != nullptr) return true;
    if (!tc.entry->TryClaimFormatStateBuild()) return false;
    tc.building_format_state = std::make_shared<GzipBlockIndex>();
    return true;
  }

  std::vector<ScanRange> SplitMorsels(const FormatScanContext& tc,
                                      int target_morsels) const override {
    // Warm scans parallelize over blocks (each decompresses independently);
    // cold scans are serial — members are discovered in file order.
    if (tc.format_state == nullptr) return {};
    const auto* index =
        static_cast<const GzipBlockIndex*>(tc.format_state.get());
    return SplitRowRanges(index->num_blocks(), target_morsels,
                          /*min_rows=*/1);
  }

  StatusOr<OperatorPtr> BuildScan(FormatScanContext& tc,
                                  const std::vector<int>& cols,
                                  const Schema& qualified) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PlannerOptions& opts = *tc.opts;

    auto make_spec = [&] {
      ZcsvScanSpec spec;
      spec.file_schema = info.schema;
      spec.outputs = cols;
      spec.options = info.csv_options;
      spec.batch_rows = opts.batch_rows;
      spec.policy = opts.malformed_row_policy;
      spec.health = tc.health;
      return spec;
    };

    // The external-table baseline re-decompresses and re-parses per query,
    // building nothing — even when an index has been published.
    if (tc.format_state != nullptr &&
        opts.access_path != AccessPathKind::kExternalTable) {
      const auto* index =
          static_cast<const GzipBlockIndex*>(tc.format_state.get());
      (*tc.desc) << "[zcsv-scan " << info.name << " blocks="
                 << index->num_blocks() << "] ";
      std::vector<ScanRange> morsels;
      if (tc.num_threads > 1) morsels = SplitMorsels(tc, tc.num_threads * 4);
      if (morsels.size() > 1) {
        // Warm children emit file-global row ids (rebased per block inside
        // the operator), so the parallel driver does not rebase.
        ParallelTableScanOperator::Options popts;
        popts.deadline = tc.opts->deadline;
        popts.num_threads = tc.num_threads;
        std::vector<OperatorPtr> children;
        for (const ScanRange& m : morsels) {
          ZcsvScanSpec spec = make_spec();
          spec.index = index;
          spec.range = m;
          children.push_back(WrapQualified(
              std::make_unique<ZcsvScanOperator>(entry->mmap(),
                                                 std::move(spec)),
              qualified));
        }
        (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                   << morsels.size() << "] ";
        return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
            qualified, std::move(children), std::move(popts)));
      }
      ZcsvScanSpec spec = make_spec();
      spec.index = index;
      return WrapQualified(
          std::make_unique<ZcsvScanOperator>(entry->mmap(), std::move(spec)),
          qualified);
    }

    // Cold scan: serial member-by-member streaming decompress, building the
    // block index en route when this query holds (or can claim) the build.
    GzipBlockIndex* build = nullptr;
    if (opts.access_path != AccessPathKind::kExternalTable &&
        opts.build_positional_map && tc.format_state == nullptr &&
        !tc.format_state_build_wired &&
        (tc.building_format_state != nullptr ||
         entry->TryClaimFormatStateBuild())) {
      if (tc.building_format_state == nullptr) {
        tc.building_format_state = std::make_shared<GzipBlockIndex>();
      }
      tc.format_state_build_wired = true;
      build = static_cast<GzipBlockIndex*>(tc.building_format_state.get());
    }
    (*tc.desc) << "[zcsv-scan " << info.name << " cold] ";
    ZcsvScanSpec spec = make_spec();
    spec.build_index = build;
    OperatorPtr op = WrapQualified(
        std::make_unique<ZcsvScanOperator>(entry->mmap(), std::move(spec)),
        qualified);
    if (build != nullptr) {
      op = std::make_unique<IndexPublishOperator>(
          std::move(op),
          std::static_pointer_cast<GzipBlockIndex>(tc.building_format_state),
          entry);
    }
    return op;
  }

  StatusOr<RowFetcherPtr> BuildFetcher(FormatScanContext& tc,
                                       const std::vector<int>& cols,
                                       const Schema& qualified) const override {
    const GzipBlockIndex* index = IndexView(tc);
    if (index == nullptr) {
      return Status::Internal(
          "compressed-CSV late scan requires the block index "
          "(none configured)");
    }
    auto fetcher = std::make_unique<ZcsvRowFetcher>(
        tc.entry->mmap(), index, tc.entry->info.schema, cols,
        tc.entry->info.csv_options);
    fetcher->set_fields(qualified);
    return RowFetcherPtr(std::move(fetcher));
  }

  FormatCostParams cost_params(const CostParams& base) const override {
    FormatCostParams p;
    p.read_value = base.csv_parse_field;
    // A positional jump lands on a compressed block: reaching one row pays
    // an (amortized) member decompression on top of the CSV field walk.
    p.jump = base.csv_jump * 16;
    p.skip_field = base.csv_skip_field;
    p.random_penalty = base.bin_random_penalty * 8;
    // Once a block is decompressed for one column, sibling columns of the
    // same rows ride along nearly free.
    p.colocated_shreds = true;
    return p;
  }
};

}  // namespace

std::unique_ptr<FormatDriver> MakeCsvGzFormatDriver() {
  return std::make_unique<CsvGzFormatDriver>();
}

}  // namespace raw
