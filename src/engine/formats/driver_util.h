#ifndef RAW_ENGINE_FORMATS_DRIVER_UTIL_H_
#define RAW_ENGINE_FORMATS_DRIVER_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/operator.h"
#include "engine/catalog.h"

namespace raw {

/// Plan glue shared by format drivers and the planner: schema-shaping
/// operators and helpers that are format-agnostic but sit right at the
/// driver/planner seam (every BuildScan renames its outputs with these).

/// Zero-copy column subset + rename.
class SelectColumnsOperator : public Operator {
 public:
  SelectColumnsOperator(OperatorPtr child, std::vector<int> indices,
                        std::vector<std::string> names);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  StatusOr<ColumnBatch> Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "SelectColumns"; }

 private:
  OperatorPtr child_;
  std::vector<int> indices_;
  std::vector<std::string> names_;
  Schema schema_;
};

/// Owns the positional map a cold textual scan is building for this query
/// and publishes it to the table entry once the scan drains completely. The
/// map stays private to the query until then, so concurrent sessions never
/// observe a half-built map; a partial scan (LIMIT, error, dropped cursor)
/// abandons the build claim instead, letting a later query rebuild.
class PmapPublishOperator : public Operator {
 public:
  PmapPublishOperator(OperatorPtr child, std::shared_ptr<PositionalMap> map,
                      TableEntry* entry);
  ~PmapPublishOperator() override;

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override { return child_->Open(); }
  StatusOr<ColumnBatch> Next() override;
  Status Close() override;
  std::string name() const override { return "PmapPublish"; }

 private:
  void Finish(bool publish);

  OperatorPtr child_;
  std::shared_ptr<PositionalMap> map_;
  TableEntry* entry_;
  bool drained_ = false;
  bool finished_ = false;
};

/// Qualified ("<table>.<column>") output schema for table columns.
Schema QualifiedSchema(const TableEntry& entry, const std::vector<int>& cols);

/// Zero-copy rename of a scan's outputs to their qualified names.
OperatorPtr WrapQualified(OperatorPtr op, const Schema& qualified);

/// True when any of `cols` is variable-length. JIT kernels only materialize
/// fixed-width values; string columns take the interpreted path.
bool AnyStringColumn(const Schema& schema, const std::vector<int>& cols);

}  // namespace raw

#endif  // RAW_ENGINE_FORMATS_DRIVER_UTIL_H_
