#ifndef RAW_ENGINE_FORMATS_DRIVERS_H_
#define RAW_ENGINE_FORMATS_DRIVERS_H_

#include <memory>

#include "format/format_driver.h"

namespace raw {

/// Factories for the built-in drivers (one translation unit each); used by
/// EnsureBuiltinFormatDriversRegistered and by tests that want a scratch
/// registry entry.
std::unique_ptr<FormatDriver> MakeCsvFormatDriver();
std::unique_ptr<FormatDriver> MakeBinaryFormatDriver();
std::unique_ptr<FormatDriver> MakeRefFormatDriver();
std::unique_ptr<FormatDriver> MakeJsonlFormatDriver();
std::unique_ptr<FormatDriver> MakeCsvGzFormatDriver();

}  // namespace raw

#endif  // RAW_ENGINE_FORMATS_DRIVERS_H_
