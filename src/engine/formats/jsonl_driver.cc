#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/formats/driver_util.h"
#include "engine/formats/drivers.h"
#include "engine/physical_plan.h"
#include "jsonl/jsonl_scan.h"
#include "scan/morsel.h"
#include "scan/shred_scan.h"

namespace raw {
namespace {

/// First-contact JSONL scan: sequential, building the field-offset map en
/// route (same claim/publish protocol as the CSV positional map — the map
/// machinery is format-agnostic; only what the offsets *mean* differs).
StatusOr<OperatorPtr> BuildJsonlSequentialScan(FormatScanContext& tc,
                                               const std::vector<int>& cols,
                                               const Schema& qualified,
                                               std::vector<ScanRange> morsels) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *tc.opts;
  PositionalMap* build = nullptr;
  if (opts.access_path != AccessPathKind::kExternalTable &&
      opts.build_positional_map && !tc.has_complete_pmap() &&
      !tc.pmap_build_wired &&
      (tc.building_pmap != nullptr || entry->TryClaimPmapBuild())) {
    if (tc.building_pmap == nullptr) {
      tc.building_pmap = std::make_shared<PositionalMap>(
          PositionalMap::WithStride(info.schema.num_fields(),
                                    info.pmap_stride));
    }
    tc.pmap_build_wired = true;
    build = tc.building_pmap.get();
  }
  (*tc.desc) << "[seq-scan " << info.name << "] ";

  auto make_spec = [&] {
    JsonlScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.batch_rows = opts.batch_rows;
    spec.policy = opts.malformed_row_policy;
    spec.health = tc.health;
    return spec;
  };
  auto wrap_publish = [&](OperatorPtr op) -> OperatorPtr {
    if (build == nullptr) return op;
    return std::make_unique<PmapPublishOperator>(std::move(op),
                                                 tc.building_pmap, entry);
  };

  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.deadline = tc.opts->deadline;
    popts.num_threads = tc.num_threads;
    popts.rebase_row_ids = true;  // morsel children emit range-local ids
    popts.merge_pmap_into = build;
    std::vector<OperatorPtr> children;
    for (const ScanRange& m : morsels) {
      PositionalMap* child_pmap = nullptr;
      if (build != nullptr) {
        popts.partial_pmaps.push_back(
            std::make_unique<PositionalMap>(PositionalMap::WithStride(
                info.schema.num_fields(), info.pmap_stride)));
        child_pmap = popts.partial_pmaps.back().get();
      }
      JsonlScanSpec spec = make_spec();
      spec.build_pmap = child_pmap;
      spec.range = m;
      children.push_back(WrapQualified(
          std::make_unique<JsonlScanOperator>(entry->mmap(), std::move(spec)),
          qualified));
    }
    (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
               << morsels.size() << "] ";
    return wrap_publish(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }

  JsonlScanSpec spec = make_spec();
  spec.build_pmap = build;
  return wrap_publish(WrapQualified(
      std::make_unique<JsonlScanOperator>(entry->mmap(), std::move(spec)),
      qualified));
}

/// Warm JSONL scan: jump to every mapped value offset. Ids are file-global,
/// so no rebasing is needed.
StatusOr<OperatorPtr> BuildJsonlPositionalScan(FormatScanContext& tc,
                                               const std::vector<int>& cols,
                                               const Schema& qualified,
                                               std::vector<ScanRange> morsels) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *tc.opts;
  const PositionalMap& pmap = *tc.published_pmap;
  (*tc.desc) << "[offset-scan " << info.name << "] ";

  auto make_insitu = [&](std::optional<RowSet> rows) {
    JsonlScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.batch_rows = opts.batch_rows;
    spec.use_pmap = &pmap;
    spec.row_set = std::move(rows);
    spec.health = tc.health;
    return WrapQualified(
        std::make_unique<JsonlScanOperator>(entry->mmap(), std::move(spec)),
        qualified);
  };
  auto iota_rows = [](int64_t first, int64_t count) {
    RowSet rows;
    rows.ids.resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      rows.ids[static_cast<size_t>(i)] = first + i;
    }
    return rows;
  };

  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.deadline = tc.opts->deadline;
    popts.num_threads = tc.num_threads;
    std::vector<OperatorPtr> children;
    for (const ScanRange& m : morsels) {
      children.push_back(make_insitu(iota_rows(m.begin, m.count())));
    }
    (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
               << morsels.size() << "] ";
    return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }
  return StatusOr<OperatorPtr>(make_insitu(std::nullopt));
}

class JsonlFormatDriver final : public FormatDriver {
 public:
  FileFormat format() const override { return FileFormat::kJsonl; }
  std::string_view name() const override { return "jsonl"; }

  Status OpenTable(TableEntry& entry) const override {
    return entry.EnsureMmap().status();
  }

  StatusOr<std::unique_ptr<InMemoryTable>> LoadTable(
      const TableEntry& entry) const override {
    JsonlScanSpec spec;
    spec.file_schema = entry.info.schema;
    for (int c = 0; c < entry.info.schema.num_fields(); ++c) {
      spec.outputs.push_back(c);
    }
    JsonlScanOperator scan(entry.mmap(), std::move(spec));
    RAW_RETURN_NOT_OK(scan.Open());
    auto table = std::make_unique<InMemoryTable>(scan.output_schema());
    while (true) {
      RAW_ASSIGN_OR_RETURN(ColumnBatch batch, scan.Next());
      if (batch.end_of_stream()) break;
      if (batch.empty()) continue;
      RAW_RETURN_NOT_OK(table->AppendBatch(batch));
    }
    RAW_RETURN_NOT_OK(scan.Close());
    return table;
  }

  /// Same protocol as CSV: a published field-offset map, or the right to
  /// build one as a side effect of this query's base scan.
  bool EnsureLateScanNavigable(FormatScanContext& tc) const override {
    const PlannerOptions& opts = *tc.opts;
    if (tc.has_complete_pmap()) return true;
    if (opts.access_path == AccessPathKind::kLoaded ||
        opts.access_path == AccessPathKind::kExternalTable ||
        !opts.build_positional_map) {
      return false;
    }
    if (tc.building_pmap != nullptr) return true;
    if (!tc.entry->TryClaimPmapBuild()) return false;
    tc.building_pmap = std::make_shared<PositionalMap>(
        PositionalMap::WithStride(tc.entry->info.schema.num_fields(),
                                  tc.entry->info.pmap_stride));
    return true;
  }

  int EstimateSkipDistance(const FormatScanContext& tc) const override {
    if (!tc.has_complete_pmap()) return 0;
    // Untracked values re-parse from the row start (key order is not
    // positional), so the typical "skip" is about half the object's keys.
    const auto& tracked = tc.published_pmap->tracked_columns();
    if (static_cast<int>(tracked.size()) ==
        tc.entry->info.schema.num_fields()) {
      return 0;  // every value jumps directly
    }
    return tc.entry->info.schema.num_fields() / 2;
  }

  std::vector<ScanRange> SplitMorsels(const FormatScanContext& tc,
                                      int target_morsels) const override {
    if (tc.has_complete_pmap()) {
      return SplitPmapRowRanges(*tc.published_pmap, target_morsels);
    }
    const MmapFile* file = tc.entry->mmap();
    return SplitJsonlByteRanges(file->data(), file->size(), target_morsels);
  }

  StatusOr<OperatorPtr> BuildScan(FormatScanContext& tc,
                                  const std::vector<int>& cols,
                                  const Schema& qualified) const override {
    // The external-table baseline re-parses per query even when a map has
    // been published, so its morsels must stay byte-addressed.
    const bool sequential =
        !tc.has_complete_pmap() ||
        tc.opts->access_path == AccessPathKind::kExternalTable;
    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      if (sequential) {
        const MmapFile* file = tc.entry->mmap();
        morsels = SplitJsonlByteRanges(file->data(), file->size(),
                                       tc.num_threads * 4);
      } else {
        morsels = SplitMorsels(tc, tc.num_threads * 4);
      }
    }
    if (sequential) {
      return BuildJsonlSequentialScan(tc, cols, qualified, std::move(morsels));
    }
    return BuildJsonlPositionalScan(tc, cols, qualified, std::move(morsels));
  }

  StatusOr<RowFetcherPtr> BuildFetcher(FormatScanContext& tc,
                                       const std::vector<int>& cols,
                                       const Schema& qualified) const override {
    const PositionalMap* pmap = tc.pmap_view();
    if (pmap == nullptr) {
      return Status::Internal(
          "JSONL late scan requires a field-offset map (none configured)");
    }
    JsonlScanSpec spec;
    spec.file_schema = tc.entry->info.schema;
    spec.outputs = cols;
    spec.use_pmap = pmap;
    spec.health = tc.health;
    auto fetcher =
        std::make_unique<JsonlRowFetcher>(tc.entry->mmap(), std::move(spec));
    fetcher->set_fields(qualified);
    return RowFetcherPtr(std::move(fetcher));
  }

  FormatCostParams cost_params(const CostParams& base) const override {
    FormatCostParams p;
    // Keys ride along with every value, so tokenizing one JSONL field costs
    // more than one CSV field; jumps resolve through the same offset map.
    p.read_value = base.csv_parse_field * 1.5;
    p.jump = base.csv_jump;
    p.skip_field = base.csv_skip_field;
    p.random_penalty = base.bin_random_penalty * 4;
    // An untracked fetch parses the whole object anyway, so extra columns in
    // the same late scan are nearly free.
    p.colocated_shreds = true;
    return p;
  }
};

}  // namespace

std::unique_ptr<FormatDriver> MakeJsonlFormatDriver() {
  return std::make_unique<JsonlFormatDriver>();
}

}  // namespace raw
