#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/formats/driver_util.h"
#include "engine/formats/drivers.h"
#include "engine/physical_plan.h"
#include "jit/codegen.h"
#include "jit/pipeline_codegen.h"
#include "scan/fused_pipeline.h"
#include "scan/jit_scan.h"
#include "scan/loader.h"
#include "scan/morsel.h"
#include "scan/ref_scan.h"
#include "scan/shred_scan.h"

namespace raw {
namespace {

int64_t RefTableRows(const TableEntry& entry) {
  return entry.info.ref_group < 0
             ? entry.ref_reader()->num_events()
             : entry.ref_reader()->GroupTotal(entry.info.ref_group);
}

/// Interpreted REF fetcher (handles derived eventID on particle tables).
class RefRowFetcher : public RowFetcher {
 public:
  RefRowFetcher(RefReader* reader, int group, std::vector<std::string> fields,
                Schema qualified_schema)
      : reader_(reader),
        group_(group),
        field_names_(std::move(fields)),
        schema_(std::move(qualified_schema)) {}

  const Schema& fields() const override { return schema_; }

  StatusOr<std::vector<ColumnPtr>> Fetch(const RowSet& rows) override {
    RefScanSpec spec;
    spec.group = group_;
    spec.fields = field_names_;
    spec.row_set = rows;
    spec.batch_rows = std::max<int64_t>(rows.size(), 1);
    RefTableScanOperator op(reader_, std::move(spec));
    RAW_RETURN_NOT_OK(op.Open());
    std::vector<ColumnPtr> out;
    if (rows.empty()) {
      for (const Field& f : schema_.fields()) {
        out.push_back(std::make_shared<Column>(f.type));
      }
      return out;
    }
    RAW_ASSIGN_OR_RETURN(ColumnBatch batch, op.Next());
    for (int c = 0; c < batch.num_columns(); ++c) {
      out.push_back(batch.column(c));
    }
    return out;
  }

 private:
  RefReader* reader_;
  int group_;
  std::vector<std::string> field_names_;
  Schema schema_;
};

class RefFormatDriver final : public FormatDriver {
 public:
  FileFormat format() const override { return FileFormat::kRef; }
  std::string_view name() const override { return "ref"; }

  Status PrepareShared(Catalog& catalog, TableEntry& entry) const override {
    if (entry.HasRefReader()) return Status::OK();
    // First lookup of this REF table: resolve/share the file's reader. The
    // attach is idempotent, so racing lookups are fine.
    RAW_ASSIGN_OR_RETURN(std::shared_ptr<RefReader> reader,
                         catalog.SharedRefReader(entry.info.path));
    entry.AttachRefReader(std::move(reader));
    return Status::OK();
  }

  Status OpenTable(TableEntry& entry) const override {
    if (entry.ref_reader() == nullptr) {
      return Status::Internal("REF reader not attached for table " +
                              entry.info.name);
    }
    entry.StoreRowCount(RefTableRows(entry));
    return Status::OK();
  }

  /// REF row counts refresh on every lookup (the shared reader may serve
  /// several derived tables).
  void RefreshEntry(TableEntry& entry) const override {
    if (entry.ref_reader() != nullptr) entry.StoreRowCount(RefTableRows(entry));
  }

  StatusOr<std::unique_ptr<InMemoryTable>> LoadTable(
      const TableEntry& entry) const override {
    if (entry.info.ref_group < 0) {
      return LoadRefEventTable(entry.ref_reader());
    }
    return LoadRefParticleTable(entry.ref_reader(), entry.info.ref_group);
  }

  /// Morsels split on cluster boundaries of the table's row branch, so
  /// parallel workers decode disjoint cluster sets. Emitted row ids are
  /// file-global already; the driver only re-orders batches.
  std::vector<ScanRange> SplitMorsels(const FormatScanContext& tc,
                                      int target_morsels) const override {
    const RefBranch* row_branch =
        tc.entry->ref_reader()->RowBranch(tc.entry->info.ref_group);
    if (row_branch == nullptr) return {};
    return SplitRefRowRanges(*row_branch, target_morsels);
  }

  StatusOr<OperatorPtr> BuildScan(FormatScanContext& tc,
                                  const std::vector<int>& cols,
                                  const Schema& qualified) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PlannerOptions& opts = *tc.opts;
    (*tc.desc) << "[ref-scan " << info.name << "] ";
    std::vector<std::string> field_names;
    bool needs_event_id_derivation = false;
    for (int c : cols) {
      const std::string& f = info.schema.field(c).name;
      field_names.push_back(f);
      if (f == "eventID" && info.ref_group >= 0) {
        needs_event_id_derivation = true;
      }
    }
    const bool use_jit = opts.access_path == AccessPathKind::kJit &&
                         !needs_event_id_derivation;

    auto make_jit_args = [&](int64_t first,
                             int64_t count) -> StatusOr<JitScanArgs> {
      AccessPathSpec spec;
      spec.format = FileFormat::kRef;
      spec.mode = ScanMode::kSequential;
      for (size_t i = 0; i < cols.size(); ++i) {
        RAW_ASSIGN_OR_RETURN(
            int branch, RefBranchFor(*entry->ref_reader(), info.ref_group,
                                     field_names[i]));
        spec.outputs.push_back(OutputField{
            branch, info.schema.field(cols[i]).type});
      }
      JitScanArgs args;
      args.spec = std::move(spec);
      args.output_schema = qualified;
      args.ref_reader = entry->ref_reader();
      args.first_row = first;
      args.total_rows = first + count;  // REF kernels scan [cursor, total)
      args.batch_rows = opts.batch_rows;
      return args;
    };
    auto make_insitu = [&](int64_t first, int64_t count) -> OperatorPtr {
      RefScanSpec spec;
      spec.group = info.ref_group;
      spec.fields = field_names;
      spec.batch_rows = opts.batch_rows;
      spec.range = ScanRange::Rows(first, count);
      auto op = std::make_unique<RefTableScanOperator>(entry->ref_reader(),
                                                       std::move(spec));
      std::vector<int> idx(cols.size());
      std::vector<std::string> names;
      for (size_t i = 0; i < cols.size(); ++i) {
        idx[i] = static_cast<int>(i);
        names.push_back(qualified.field(static_cast<int>(i)).name);
      }
      return std::make_unique<SelectColumnsOperator>(
          std::move(op), std::move(idx), std::move(names));
    };

    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      morsels = SplitMorsels(tc, tc.num_threads * 4);
    }
    if (morsels.size() > 1) {
      ParallelTableScanOperator::Options popts;
      popts.deadline = tc.opts->deadline;
      popts.num_threads = tc.num_threads;
      std::vector<OperatorPtr> children;
      for (const ScanRange& m : morsels) {
        if (use_jit) {
          RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                               make_jit_args(m.begin, m.count()));
          children.push_back(
              std::make_unique<JitScanOperator>(tc.jit, std::move(args)));
        } else {
          children.push_back(make_insitu(m.begin, m.count()));
        }
      }
      (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                 << morsels.size() << "] ";
      return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
          qualified, std::move(children), std::move(popts)));
    }

    if (use_jit) {
      RAW_ASSIGN_OR_RETURN(JitScanArgs args, make_jit_args(0, tc.row_count));
      return OperatorPtr(
          std::make_unique<JitScanOperator>(tc.jit, std::move(args)));
    }
    return make_insitu(0, -1);
  }

  StatusOr<RowFetcherPtr> BuildFetcher(FormatScanContext& tc,
                                       const std::vector<int>& cols,
                                       const Schema& qualified) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    std::vector<std::string> field_names;
    bool derived_event_id = false;
    for (int c : cols) {
      field_names.push_back(info.schema.field(c).name);
      if (field_names.back() == "eventID" && info.ref_group >= 0) {
        derived_event_id = true;
      }
    }
    if (tc.opts->access_path == AccessPathKind::kJit && !derived_event_id) {
      AccessPathSpec spec;
      spec.format = FileFormat::kRef;
      spec.mode = ScanMode::kByRowIndex;
      for (size_t i = 0; i < cols.size(); ++i) {
        RAW_ASSIGN_OR_RETURN(
            int branch, RefBranchFor(*entry->ref_reader(), info.ref_group,
                                     field_names[i]));
        spec.outputs.push_back(
            OutputField{branch, info.schema.field(cols[i]).type});
      }
      JitScanArgs args;
      args.spec = std::move(spec);
      args.output_schema = qualified;
      args.ref_reader = entry->ref_reader();
      return RowFetcherPtr(
          std::make_unique<JitRowFetcher>(tc.jit, std::move(args)));
    }
    return RowFetcherPtr(std::make_unique<RefRowFetcher>(
        entry->ref_reader(), info.ref_group, field_names, qualified));
  }

  FormatCostParams cost_params(const CostParams& base) const override {
    FormatCostParams p;
    p.read_value = base.ref_api_value;
    return p;
  }

  StatusOr<std::string> EmitJitSource(const AccessPathSpec& spec) const override {
    return GenerateRefScanSource(spec);
  }

  StatusOr<std::string> EmitJitPipelineSource(
      const PipelineSpec& spec) const override {
    return GenerateRefPipelineSource(spec);
  }

  /// Fused REF pipelines support aggregation only (the bulk-decode API has
  /// no output-compaction path for projections). PipelineInput.column holds
  /// the *table column*; this hook remaps file inputs to branch indices,
  /// which is what the generated read_range calls address.
  StatusOr<OperatorPtr> BuildFusedPipeline(
      FormatScanContext& tc, const FusedPipelineRequest& req) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PlannerOptions& opts = *tc.opts;
    if (req.mode != PipelineOutputMode::kAggregate) {
      return Status::NotImplemented(
          "fused REF pipelines support aggregation only");
    }
    PipelineSpec spec;
    spec.scan.format = FileFormat::kRef;
    spec.scan.mode = ScanMode::kSequential;
    spec.inputs = req.inputs;
    for (PipelineInput& in : spec.inputs) {
      if (in.dense) continue;
      const std::string& field = info.schema.field(in.column).name;
      if (field == "eventID" && info.ref_group >= 0) {
        return Status::NotImplemented(
            "fused REF pipelines cannot derive eventID");
      }
      RAW_ASSIGN_OR_RETURN(
          int branch,
          RefBranchFor(*entry->ref_reader(), info.ref_group, field));
      in.column = branch;
      spec.scan.outputs.push_back(OutputField{branch, in.type});
    }
    spec.predicates = req.predicates;
    spec.mode = req.mode;
    spec.projections = req.projections;
    spec.aggs = req.aggs;
    Schema out_schema = FusedAggPartialSchema(req.aggs);
    (*tc.desc) << "[fused-ref-scan " << info.name << "] ";

    auto make_args = [&](int64_t first, int64_t count) {
      FusedPipelineArgs args;
      args.spec = spec;
      args.output_schema = out_schema;
      args.ref_reader = entry->ref_reader();
      args.first_row = first;
      args.total_rows = first + count;  // REF kernels scan [cursor, total)
      args.dense_columns = req.dense_columns;
      args.batch_rows = opts.batch_rows;
      return args;
    };

    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      morsels = SplitMorsels(tc, tc.num_threads * 4);
    }
    if (morsels.size() > 1) {
      ParallelTableScanOperator::Options popts;
      popts.deadline = tc.opts->deadline;
      popts.num_threads = tc.num_threads;
      std::vector<OperatorPtr> children;
      for (const ScanRange& m : morsels) {
        children.push_back(std::make_unique<FusedPipelineOperator>(
            tc.jit, make_args(m.begin, m.count())));
      }
      (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                 << morsels.size() << "] ";
      return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
          out_schema, std::move(children), std::move(popts)));
    }
    return OperatorPtr(std::make_unique<FusedPipelineOperator>(
        tc.jit, make_args(0, tc.row_count)));
  }
};

}  // namespace

std::unique_ptr<FormatDriver> MakeRefFormatDriver() {
  return std::make_unique<RefFormatDriver>();
}

}  // namespace raw
