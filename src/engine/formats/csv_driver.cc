#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "csv/csv_tokenizer.h"
#include "engine/cost_model.h"
#include "engine/executor.h"
#include "engine/formats/driver_util.h"
#include "engine/formats/drivers.h"
#include "engine/physical_plan.h"
#include "jit/codegen.h"
#include "jit/pipeline_codegen.h"
#include "scan/external_table_scan.h"
#include "scan/fused_pipeline.h"
#include "scan/insitu_csv_scan.h"
#include "scan/jit_scan.h"
#include "scan/loader.h"
#include "scan/morsel.h"
#include "scan/shred_scan.h"

namespace raw {
namespace {

/// CSV JIT kernels tokenize with the branch-light unquoted fast path and only
/// materialize fixed-width values; quoted files and string columns fall back
/// to the interpreted, quote-aware scan.
bool CsvJitEligible(const TableEntry& entry, const std::vector<int>& cols) {
  return !AnyStringColumn(entry.info.schema, cols) && !entry.csv_quoted();
}

/// First-contact CSV scan: sequential, building the positional map en route.
/// With num_threads > 1 the file splits into newline-aligned byte morsels
/// scanned concurrently; each morsel builds a private partial map that the
/// parallel driver stitches together in file order at end of stream.
///
/// The map is built into query-private storage under the table's build claim
/// (at most one query builds at a time; losers just scan) and published to
/// the shared entry only on a complete drain.
StatusOr<OperatorPtr> BuildCsvSequentialScan(FormatScanContext& tc,
                                             const std::vector<int>& cols,
                                             const Schema& qualified,
                                             std::vector<ScanRange> morsels) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *tc.opts;
  PositionalMap* build = nullptr;
  if (opts.build_positional_map && !tc.has_complete_pmap() &&
      !tc.pmap_build_wired &&
      (tc.building_pmap != nullptr || entry->TryClaimPmapBuild())) {
    if (tc.building_pmap == nullptr) {
      tc.building_pmap = std::make_shared<PositionalMap>(
          PositionalMap::WithStride(info.schema.num_fields(),
                                    info.pmap_stride));
    }
    tc.pmap_build_wired = true;
    build = tc.building_pmap.get();
  }
  (*tc.desc) << "[seq-scan " << info.name << "] ";
  // Generated kernels fail hard on the first malformed value, so tolerant
  // row policies always take the interpreted scan (the planner already
  // downgrades access_path; this guard keeps the driver safe on its own).
  const bool use_jit =
      opts.access_path == AccessPathKind::kJit &&
      opts.malformed_row_policy == MalformedRowPolicy::kFail &&
      CsvJitEligible(*entry, cols);

  auto make_jit_spec = [&] {
    AccessPathSpec spec;
    spec.format = FileFormat::kCsv;
    spec.mode = ScanMode::kSequential;
    spec.delimiter = info.csv_options.delimiter;
    for (int c : cols) {
      spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
    }
    if (build != nullptr) spec.pmap_tracked = build->tracked_columns();
    return spec;
  };
  auto make_insitu_spec = [&] {
    CsvScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.options = info.csv_options;
    spec.quoted = entry->csv_quoted();
    spec.batch_rows = opts.batch_rows;
    spec.policy = opts.malformed_row_policy;
    spec.health = tc.health;
    return spec;
  };
  auto wrap_publish = [&](OperatorPtr op) -> OperatorPtr {
    if (build == nullptr) return op;
    return std::make_unique<PmapPublishOperator>(std::move(op),
                                                 tc.building_pmap, entry);
  };

  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.deadline = tc.opts->deadline;
    popts.num_threads = tc.num_threads;
    popts.rebase_row_ids = true;  // morsel children emit range-local ids
    popts.merge_pmap_into = build;
    std::vector<OperatorPtr> children;
    for (const ScanRange& m : morsels) {
      PositionalMap* child_pmap = nullptr;
      if (build != nullptr) {
        popts.partial_pmaps.push_back(
            std::make_unique<PositionalMap>(PositionalMap::WithStride(
                info.schema.num_fields(), info.pmap_stride)));
        child_pmap = popts.partial_pmaps.back().get();
      }
      if (use_jit) {
        JitScanArgs args;
        args.spec = make_jit_spec();
        args.output_schema = qualified;
        args.file = entry->mmap();
        args.build_pmap = child_pmap;
        args.window_begin = static_cast<uint64_t>(m.begin);
        args.window_end = static_cast<uint64_t>(m.end);
        args.batch_rows = opts.batch_rows;
        children.push_back(
            std::make_unique<JitScanOperator>(tc.jit, std::move(args)));
      } else {
        CsvScanSpec spec = make_insitu_spec();
        spec.build_pmap = child_pmap;
        spec.range = m;
        children.push_back(WrapQualified(
            std::make_unique<InsituCsvScanOperator>(entry->mmap(),
                                                    std::move(spec)),
            qualified));
      }
    }
    (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
               << morsels.size() << "] ";
    return wrap_publish(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }

  if (use_jit) {
    JitScanArgs args;
    args.spec = make_jit_spec();
    args.output_schema = qualified;
    args.file = entry->mmap();
    args.build_pmap = build;
    args.batch_rows = opts.batch_rows;
    return wrap_publish(
        std::make_unique<JitScanOperator>(tc.jit, std::move(args)));
  }
  CsvScanSpec spec = make_insitu_spec();
  spec.build_pmap = build;
  return wrap_publish(WrapQualified(std::make_unique<InsituCsvScanOperator>(
                                        entry->mmap(), std::move(spec)),
                                    qualified));
}

/// Warm CSV scan: jump to every mapped row via the positional map. With
/// num_threads > 1 the mapped rows split into row-range morsels; ids are
/// already file-global, so no rebasing is needed.
StatusOr<OperatorPtr> BuildCsvPositionalScan(FormatScanContext& tc,
                                             const std::vector<int>& cols,
                                             const Schema& qualified,
                                             std::vector<ScanRange> morsels) {
  TableEntry* entry = tc.entry;
  const TableInfo& info = entry->info;
  const PlannerOptions& opts = *tc.opts;
  const PositionalMap& pmap = *tc.published_pmap;
  int anchor = pmap.tracked_columns().front();
  for (int t : pmap.tracked_columns()) {
    if (t <= cols.front()) anchor = t;
  }
  (*tc.desc) << "[pmap-scan " << info.name << " anchor=" << anchor << "] ";
  const bool use_jit =
      opts.access_path == AccessPathKind::kJit &&
      opts.malformed_row_policy == MalformedRowPolicy::kFail &&
      CsvJitEligible(*entry, cols);

  auto make_jit_args = [&](RowSet rows) -> StatusOr<JitScanArgs> {
    RAW_RETURN_NOT_OK(FillPositions(pmap, pmap.SlotFor(anchor), &rows));
    AccessPathSpec spec;
    spec.format = FileFormat::kCsv;
    spec.mode = ScanMode::kByPosition;
    spec.delimiter = info.csv_options.delimiter;
    spec.anchor_column = anchor;
    for (int c : cols) {
      spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
    }
    JitScanArgs args;
    args.spec = std::move(spec);
    args.output_schema = qualified;
    args.file = entry->mmap();
    args.row_set = std::move(rows);
    args.batch_rows = opts.batch_rows;
    return args;
  };
  auto make_insitu = [&](std::optional<RowSet> rows) {
    CsvScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.options = info.csv_options;
    spec.quoted = entry->csv_quoted();
    spec.batch_rows = opts.batch_rows;
    spec.use_pmap = &pmap;
    spec.anchor_column = anchor;
    spec.row_set = std::move(rows);
    spec.health = tc.health;
    return WrapQualified(std::make_unique<InsituCsvScanOperator>(
                             entry->mmap(), std::move(spec)),
                         qualified);
  };
  auto iota_rows = [](int64_t first, int64_t count) {
    RowSet rows;
    rows.ids.resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      rows.ids[static_cast<size_t>(i)] = first + i;
    }
    return rows;
  };

  if (morsels.size() > 1) {
    ParallelTableScanOperator::Options popts;
    popts.deadline = tc.opts->deadline;
    popts.num_threads = tc.num_threads;
    std::vector<OperatorPtr> children;
    for (const ScanRange& m : morsels) {
      if (use_jit) {
        RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                             make_jit_args(iota_rows(m.begin, m.count())));
        children.push_back(
            std::make_unique<JitScanOperator>(tc.jit, std::move(args)));
      } else {
        children.push_back(make_insitu(iota_rows(m.begin, m.count())));
      }
    }
    (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
               << morsels.size() << "] ";
    return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
        qualified, std::move(children), std::move(popts)));
  }

  if (use_jit) {
    RAW_ASSIGN_OR_RETURN(JitScanArgs args,
                         make_jit_args(iota_rows(0, pmap.num_rows())));
    return OperatorPtr(
        std::make_unique<JitScanOperator>(tc.jit, std::move(args)));
  }
  return make_insitu(std::nullopt);
}

class CsvFormatDriver final : public FormatDriver {
 public:
  FileFormat format() const override { return FileFormat::kCsv; }
  std::string_view name() const override { return "csv"; }

  Status OpenTable(TableEntry& entry) const override {
    RAW_ASSIGN_OR_RETURN(const MmapFile* file, entry.EnsureMmap());
    // One memchr pass over the file decides the tokenizer for every future
    // scan (quote handling must be known up front — a quote appearing late
    // would invalidate earlier row boundaries). The pass also warms the page
    // cache the first scan reads right after, so on files that fit in memory
    // the extra disk I/O is ~zero.
    entry.SetCsvQuoted(BufferContainsQuote(file->data(),
                                           file->data() + file->size(),
                                           entry.info.csv_options.quote));
    return Status::OK();
  }

  StatusOr<std::unique_ptr<InMemoryTable>> LoadTable(
      const TableEntry& entry) const override {
    std::vector<int> all;
    for (int c = 0; c < entry.info.schema.num_fields(); ++c) all.push_back(c);
    return LoadCsvTable(entry.mmap(), entry.info.schema, all,
                        entry.info.csv_options, entry.csv_quoted());
  }

  /// Late scans need a positional map — one already published, or one this
  /// query can (and, as a side effect here, does) claim the right to build.
  /// Returns false for the baselines that never build maps and for cold
  /// tables whose build claim another in-flight session holds; callers must
  /// then route columns into base scans instead of late scans.
  bool EnsureLateScanNavigable(FormatScanContext& tc) const override {
    const PlannerOptions& opts = *tc.opts;
    if (tc.has_complete_pmap()) return true;
    if (opts.access_path == AccessPathKind::kLoaded ||
        opts.access_path == AccessPathKind::kExternalTable ||
        !opts.build_positional_map) {
      return false;
    }
    if (tc.building_pmap != nullptr) return true;
    if (!tc.entry->TryClaimPmapBuild()) return false;
    // Claim taken here so the planning decision is binding; the base scan
    // wires this map in (BuildBaseScan guarantees the sequential scan runs
    // while the claim is unwired).
    tc.building_pmap = std::make_shared<PositionalMap>(
        PositionalMap::WithStride(tc.entry->info.schema.num_fields(),
                                  tc.entry->info.pmap_stride));
    return true;
  }

  int EstimateSkipDistance(const FormatScanContext& tc) const override {
    if (!tc.has_complete_pmap()) return 0;
    // Typical skip distance: half the tracking stride.
    const auto& tracked = tc.published_pmap->tracked_columns();
    int stride = tracked.size() > 1 ? tracked[1] - tracked[0]
                                    : tc.entry->info.schema.num_fields();
    return stride / 2;
  }

  std::vector<ScanRange> SplitMorsels(const FormatScanContext& tc,
                                      int target_morsels) const override {
    if (tc.has_complete_pmap()) {
      return SplitPmapRowRanges(*tc.published_pmap, target_morsels);
    }
    const MmapFile* file = tc.entry->mmap();
    return SplitCsvByteRanges(file->data(), file->size(),
                              tc.entry->info.csv_options, target_morsels);
  }

  StatusOr<OperatorPtr> BuildScan(FormatScanContext& tc,
                                  const std::vector<int>& cols,
                                  const Schema& qualified) const override {
    const PlannerOptions& opts = *tc.opts;
    if (opts.access_path == AccessPathKind::kExternalTable) {
      // The "external tables" baseline re-parses everything per query by
      // design; it stays serial (it is a comparison system, not a target).
      auto ext = std::make_unique<ExternalTableScanOperator>(
          tc.entry->mmap(), tc.entry->info.schema, cols,
          tc.entry->info.csv_options, opts.batch_rows);
      return WrapQualified(std::move(ext), qualified);
    }
    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      morsels = SplitMorsels(tc, tc.num_threads * 4);
    }
    if (!tc.has_complete_pmap()) {
      return BuildCsvSequentialScan(tc, cols, qualified, std::move(morsels));
    }
    return BuildCsvPositionalScan(tc, cols, qualified, std::move(morsels));
  }

  StatusOr<RowFetcherPtr> BuildFetcher(FormatScanContext& tc,
                                       const std::vector<int>& cols,
                                       const Schema& qualified) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PositionalMap* pmap = tc.pmap_view();
    if (pmap == nullptr) {
      return Status::Internal(
          "CSV late scan requires a positional map (none configured)");
    }
    int anchor = pmap->tracked_columns().front();
    for (int t : pmap->tracked_columns()) {
      if (t <= cols.front()) anchor = t;
    }
    if (tc.opts->access_path == AccessPathKind::kJit &&
        CsvJitEligible(*entry, cols)) {
      AccessPathSpec spec;
      spec.format = FileFormat::kCsv;
      spec.mode = ScanMode::kByPosition;
      spec.delimiter = info.csv_options.delimiter;
      spec.anchor_column = anchor;
      for (int c : cols) {
        spec.outputs.push_back(OutputField{c, info.schema.field(c).type});
      }
      JitScanArgs args;
      args.spec = std::move(spec);
      args.output_schema = qualified;
      args.file = entry->mmap();
      return RowFetcherPtr(
          std::make_unique<JitRowFetcher>(tc.jit, std::move(args), pmap));
    }
    CsvScanSpec spec;
    spec.file_schema = info.schema;
    spec.outputs = cols;
    spec.options = info.csv_options;
    spec.quoted = entry->csv_quoted();
    spec.use_pmap = pmap;
    spec.anchor_column = anchor;
    spec.health = tc.health;
    auto fetcher =
        std::make_unique<InsituRowFetcher>(entry->mmap(), std::move(spec));
    fetcher->set_fields(qualified);
    return RowFetcherPtr(std::move(fetcher));
  }

  FormatCostParams cost_params(const CostParams& base) const override {
    FormatCostParams p;
    p.read_value = base.csv_parse_field;
    p.jump = base.csv_jump;
    p.skip_field = base.csv_skip_field;
    // Out-of-order textual fetches thrash the parser state and the cache.
    p.random_penalty = base.bin_random_penalty * 4;
    p.colocated_shreds = true;  // adjacent fields parse almost for free
    return p;
  }

  StatusOr<std::string> EmitJitSource(const AccessPathSpec& spec) const override {
    return GenerateCsvScanSource(spec);
  }

  StatusOr<std::string> EmitJitPipelineSource(
      const PipelineSpec& spec) const override {
    return GenerateCsvPipelineSource(spec);
  }

  /// Fused CSV pipelines run warm only: the complete positional map turns
  /// the scan into by-position field parsing, and the fused kernel skips the
  /// parse work of every row its dense predicates reject. Cold tables (and
  /// quoted files) report NotImplemented so the planner stays interpreted.
  StatusOr<OperatorPtr> BuildFusedPipeline(
      FormatScanContext& tc, const FusedPipelineRequest& req) const override {
    TableEntry* entry = tc.entry;
    const TableInfo& info = entry->info;
    const PlannerOptions& opts = *tc.opts;
    if (!tc.has_complete_pmap()) {
      return Status::NotImplemented(
          "fused CSV pipelines require a complete positional map");
    }
    if (entry->csv_quoted()) {
      return Status::NotImplemented(
          "fused CSV pipelines do not handle quoted files");
    }
    const PositionalMap& pmap = *tc.published_pmap;
    std::vector<int> file_cols;
    for (const PipelineInput& in : req.inputs) {
      if (!in.dense) file_cols.push_back(in.column);
    }
    if (file_cols.empty()) {
      return Status::NotImplemented(
          "fused CSV pipeline needs at least one file-read input");
    }
    int anchor = pmap.tracked_columns().front();
    for (int t : pmap.tracked_columns()) {
      if (t <= file_cols.front()) anchor = t;
    }

    PipelineSpec spec;
    spec.scan.format = FileFormat::kCsv;
    spec.scan.mode = ScanMode::kByPosition;
    spec.scan.delimiter = info.csv_options.delimiter;
    spec.scan.anchor_column = anchor;
    for (const PipelineInput& in : req.inputs) {
      if (!in.dense) spec.scan.outputs.push_back(OutputField{in.column, in.type});
    }
    spec.inputs = req.inputs;
    spec.predicates = req.predicates;
    spec.mode = req.mode;
    spec.projections = req.projections;
    spec.aggs = req.aggs;
    Schema out_schema = req.mode == PipelineOutputMode::kAggregate
                            ? FusedAggPartialSchema(req.aggs)
                            : req.output_schema;
    (*tc.desc) << "[fused-pmap-scan " << info.name << " anchor=" << anchor
               << "] ";

    auto make_args = [&](int64_t first,
                         int64_t count) -> StatusOr<FusedPipelineArgs> {
      RowSet rows;
      rows.ids.resize(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        rows.ids[static_cast<size_t>(i)] = first + i;
      }
      RAW_RETURN_NOT_OK(FillPositions(pmap, pmap.SlotFor(anchor), &rows));
      FusedPipelineArgs args;
      args.spec = spec;
      args.output_schema = out_schema;
      args.file = entry->mmap();
      args.row_set = std::move(rows);
      args.dense_columns = req.dense_columns;
      args.batch_rows = opts.batch_rows;
      return args;
    };

    std::vector<ScanRange> morsels;
    if (tc.num_threads > 1) {
      morsels = SplitPmapRowRanges(pmap, tc.num_threads * 4);
    }
    if (morsels.size() > 1) {
      ParallelTableScanOperator::Options popts;
      popts.deadline = tc.opts->deadline;
      popts.num_threads = tc.num_threads;
      std::vector<OperatorPtr> children;
      for (const ScanRange& m : morsels) {
        RAW_ASSIGN_OR_RETURN(FusedPipelineArgs args,
                             make_args(m.begin, m.count()));
        children.push_back(
            std::make_unique<FusedPipelineOperator>(tc.jit, std::move(args)));
      }
      (*tc.desc) << "[parallel x" << tc.num_threads << " morsels="
                 << morsels.size() << "] ";
      return OperatorPtr(std::make_unique<ParallelTableScanOperator>(
          out_schema, std::move(children), std::move(popts)));
    }
    RAW_ASSIGN_OR_RETURN(FusedPipelineArgs args,
                         make_args(0, pmap.num_rows()));
    return OperatorPtr(
        std::make_unique<FusedPipelineOperator>(tc.jit, std::move(args)));
  }
};

}  // namespace

std::unique_ptr<FormatDriver> MakeCsvFormatDriver() {
  return std::make_unique<CsvFormatDriver>();
}

}  // namespace raw
