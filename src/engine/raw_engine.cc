#include "engine/raw_engine.h"

#include "common/stopwatch.h"
#include "csv/schema_inference.h"
#include "engine/sql/binder.h"
#include "engine/sql/parser.h"

namespace raw {

Status RawEngine::RegisterCsvInferred(const std::string& name,
                                      const std::string& path, CsvOptions csv,
                                      int pmap_stride) {
  RAW_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(path, csv));
  return catalog_.RegisterCsv(name, path, std::move(schema), csv, pmap_stride);
}

RawEngine::RawEngine(RawEngineOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      jit_(options_.jit_compiler),
      shreds_(options_.shred_cache_bytes),
      planner_(&catalog_, &jit_, &shreds_) {}

StatusOr<QuerySpec> RawEngine::ParseSql(const std::string& sql) {
  RAW_ASSIGN_OR_RETURN(QuerySpec spec, sql::Parse(sql));
  RAW_RETURN_NOT_OK(sql::Bind(&catalog_, &spec));
  return spec;
}

StatusOr<QueryResult> RawEngine::Query(const std::string& sql) {
  return Query(sql, options_.planner);
}

StatusOr<QueryResult> RawEngine::Query(const std::string& sql,
                                       const PlannerOptions& options) {
  RAW_ASSIGN_OR_RETURN(QuerySpec spec, ParseSql(sql));
  return Execute(spec, options);
}

StatusOr<QueryResult> RawEngine::Execute(const QuerySpec& spec,
                                         const PlannerOptions& options) {
  Stopwatch plan_watch;
  const double compile_before = jit_.total_compile_seconds();
  RAW_ASSIGN_OR_RETURN(PhysicalPlan plan, planner_.Plan(spec, options));
  const double plan_seconds = plan_watch.ElapsedSeconds();
  if (spec.explain) {
    // EXPLAIN: return the plan description as a one-row result.
    QueryResult result;
    result.plan_description = plan.description;
    result.plan_seconds = plan_seconds;
    result.compile_seconds = jit_.total_compile_seconds() - compile_before;
    ColumnBatch table(Schema{{"plan", DataType::kString}});
    auto col = std::make_shared<Column>(DataType::kString);
    col->AppendString(plan.description);
    table.AddColumn(std::move(col));
    table.SetNumRows(1);
    result.table = std::move(table);
    return result;
  }
  RAW_ASSIGN_OR_RETURN(QueryResult result, Executor::Run(std::move(plan)));
  result.plan_seconds = plan_seconds;
  result.compile_seconds = jit_.total_compile_seconds() - compile_before;
  return result;
}

void RawEngine::ResetAdaptiveState() {
  shreds_.Clear();
  jit_.Clear();
  for (const std::string& name : catalog_.TableNames()) {
    auto entry = catalog_.Get(name);
    if (entry.ok()) {
      (*entry)->pmap.reset();
      (*entry)->loaded.reset();
    }
  }
}

}  // namespace raw
