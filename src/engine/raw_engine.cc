#include "engine/raw_engine.h"

#include <chrono>
#include <cstdlib>
#include <optional>

#include "common/env.h"
#include "common/fault_injector.h"
#include "csv/schema_inference.h"

namespace raw {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status RawEngine::RegisterCsvInferred(const std::string& name,
                                      const std::string& path, CsvOptions csv,
                                      int pmap_stride) {
  // One CsvOptions drives both the sampling pass and every later scan, so
  // quoting/delimiter/header handling cannot diverge between them.
  StatusOr<Schema> schema = InferCsvSchema(path, csv);
  if (!schema.ok()) {
    return Status(schema.status().code(),
                  "schema inference for table '" + name + "' failed: " +
                      std::string(schema.status().message()));
  }
  return catalog_.RegisterCsv(name, path, std::move(schema).value(), csv,
                              pmap_stride);
}

RawEngine::RawEngine(RawEngineOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      jit_(options_.jit_compiler),
      shreds_(options_.shred_cache_bytes, options_.shred_cache_shards),
      planner_(&catalog_, &jit_, &shreds_) {
  // Env knobs override the configured autotune defaults (strict parsing:
  // malformed values fall back rather than misconfigure silently).
  options_.autotune.enabled =
      GetEnvInt64("RAW_AUTOTUNE", options_.autotune.enabled ? 1 : 0, 0, 1) !=
      0;
  options_.result_cache_bytes = GetEnvInt64(
      "RAW_RESULT_CACHE_BYTES", options_.result_cache_bytes, 0, 1ll << 40);
  options_.result_cache_min_us = GetEnvInt64(
      "RAW_RESULT_CACHE_MIN_US", options_.result_cache_min_us, 0, 1ll << 40);
  if (options_.result_cache_bytes > 0) {
    result_cache_ =
        std::make_unique<autotune::ResultCache>(options_.result_cache_bytes);
  }
  // RAW_JIT_FUSION: 0 = never fuse, 1 = fuse eligible pipelines, auto =
  // planner's choice (today identical to 1; reserved for cost-model
  // arbitration). Same strict-parse discipline as the integer knobs.
  if (const char* fusion_env = std::getenv("RAW_JIT_FUSION")) {
    const std::string v(fusion_env);
    if (v == "0") {
      options_.planner.jit_fusion = JitFusion::kOff;
    } else if (v == "1") {
      options_.planner.jit_fusion = JitFusion::kOn;
    } else if (v == "auto") {
      options_.planner.jit_fusion = JitFusion::kAuto;
    } else {
      WarnMalformedEnvOnce("RAW_JIT_FUSION", v, "0, 1 or auto");
    }
  }
  // RAW_MALFORMED_ROWS: fail (default) | skip | null-fill — the engine-wide
  // default policy for rows whose raw bytes don't parse. Same strict-parse
  // discipline as the integer knobs.
  if (const char* policy_env = std::getenv("RAW_MALFORMED_ROWS")) {
    const std::string v(policy_env);
    if (std::optional<MalformedRowPolicy> p = ParseMalformedRowPolicy(v)) {
      options_.planner.malformed_row_policy = *p;
    } else {
      WarnMalformedEnvOnce("RAW_MALFORMED_ROWS", v, "fail, skip or null-fill");
    }
  }
  // A stale backing file purges every cached structure derived from it.
  catalog_.SetInvalidationCallback([this](const std::string& table) {
    shreds_.EraseTable(table);
    if (result_cache_ != nullptr) result_cache_->InvalidateTable(table);
  });
  default_session_ = OpenSession(options_.planner);
  materializer_ =
      std::make_unique<autotune::BackgroundMaterializer>(this,
                                                         options_.autotune);
  materializer_->Start();
}

std::unique_ptr<Session> RawEngine::OpenSession() {
  return OpenSession(options_.planner);
}

std::unique_ptr<Session> RawEngine::OpenSession(
    const PlannerOptions& options) {
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(
      this, options, next_session_id_.fetch_add(1, std::memory_order_relaxed)));
}

std::unique_ptr<Session> RawEngine::OpenInternalSession() {
  PlannerOptions options = options_.planner;
  // Single-threaded plans drain on the materializer's own thread, batch by
  // batch — that per-batch pull is the preemption granularity, and the
  // shared pool stays free for foreground morsels.
  options.num_threads = 1;
  options.count_accesses = false;
  if (options_.autotune.batch_rows > 0) {
    options.batch_rows = options_.autotune.batch_rows;
  }
  // Not via OpenSession: internal sessions stay out of the session counters.
  std::unique_ptr<Session> session(new Session(
      this, options, next_session_id_.fetch_add(1, std::memory_order_relaxed)));
  session->internal_ = true;
  return session;
}

void RawEngine::NoteForegroundActivity() {
  last_activity_ns_.store(NowNs(), std::memory_order_release);
  if (materializer_ != nullptr) materializer_->Preempt();
}

void RawEngine::BeginQuery() {
  queries_inflight_.fetch_add(1, std::memory_order_acq_rel);
  NoteForegroundActivity();
}

void RawEngine::EndQuery() {
  queries_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  // The idle clock starts when the last query *finishes*, not when it
  // arrived — a long query followed by silence is still a full quiet period.
  last_activity_ns_.store(NowNs(), std::memory_order_release);
}

StatusOr<std::string> RawEngine::ResultCacheKey(const QuerySpec& spec) {
  std::string key = spec.Fingerprint();
  for (const std::string& table : spec.tables) {
    // Catalog::Get re-validates the file signature as a side effect, so a
    // changed file both purges matching entries and shifts this key.
    RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
    key += "|" + table + "@" + std::to_string(entry->version());
  }
  return key;
}

StatusOr<QuerySpec> RawEngine::ParseSql(const std::string& sql) {
  return default_session_->Parse(sql);
}

StatusOr<QueryResult> RawEngine::Query(const std::string& sql) {
  return default_session_->Query(sql);
}

StatusOr<QueryResult> RawEngine::Query(const std::string& sql,
                                       const PlannerOptions& options) {
  return default_session_->Query(sql, options);
}

StatusOr<QueryResult> RawEngine::Execute(const QuerySpec& spec,
                                         const PlannerOptions& options) {
  return default_session_->Execute(spec, options);
}

EngineStats RawEngine::Stats() const {
  EngineStats stats;
  stats.shred_cache = shreds_.Stats();
  stats.jit_cache = jit_.Stats();
  stats.ref_pool = catalog_.RefPoolStats();
  stats.tables = catalog_.Stats();
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.admission.admitted =
      admission_.admitted.load(std::memory_order_relaxed);
  stats.admission.executed =
      admission_.executed.load(std::memory_order_relaxed);
  stats.admission.shed = admission_.shed.load(std::memory_order_relaxed);
  stats.admission.deadline_expired =
      admission_.deadline_expired.load(std::memory_order_relaxed);
  stats.admission.queued = admission_.queued.load(std::memory_order_relaxed);
  stats.admission.running = admission_.running.load(std::memory_order_relaxed);
  stats.queries_parsed = queries_parsed_.load(std::memory_order_relaxed);
  stats.queries_planned = queries_planned_.load(std::memory_order_relaxed);
  stats.queries_executed = queries_executed_.load(std::memory_order_relaxed);
  stats.queries_inflight =
      queries_inflight_.load(std::memory_order_relaxed);
  if (result_cache_ != nullptr) stats.result_cache = result_cache_->Stats();
  if (materializer_ != nullptr) stats.materializer = materializer_->Stats();
  stats.plans_fused = planner_.plans_fused();
  stats.plans_interpreted = planner_.plans_interpreted();
  stats.rows_skipped = rows_skipped_.load(std::memory_order_relaxed);
  stats.rows_nulled = rows_nulled_.load(std::memory_order_relaxed);
  stats.io_faults = io_faults_.load(std::memory_order_relaxed);
  stats.faults_injected = FaultInjector::Global().fired();
  return stats;
}

StatusOr<std::shared_ptr<const PositionalMap>>
RawEngine::PositionalMapSnapshot(const std::string& table) {
  RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  return entry->pmap();
}

Status RawEngine::DropFilePageCache(const std::string& table) {
  RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  return entry->DropPageCache();
}

void RawEngine::ResetAdaptiveState() {
  shreds_.Clear();
  jit_.Clear();
  catalog_.ResetAdaptiveState();
  // Cached results are adaptive state too: they were computed from the
  // structures just dropped, so they invalidate with them.
  if (result_cache_ != nullptr) result_cache_->Clear(/*count_invalidated=*/true);
}

}  // namespace raw
