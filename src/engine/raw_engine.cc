#include "engine/raw_engine.h"

#include "csv/schema_inference.h"

namespace raw {

Status RawEngine::RegisterCsvInferred(const std::string& name,
                                      const std::string& path, CsvOptions csv,
                                      int pmap_stride) {
  // One CsvOptions drives both the sampling pass and every later scan, so
  // quoting/delimiter/header handling cannot diverge between them.
  StatusOr<Schema> schema = InferCsvSchema(path, csv);
  if (!schema.ok()) {
    return Status(schema.status().code(),
                  "schema inference for table '" + name + "' failed: " +
                      std::string(schema.status().message()));
  }
  return catalog_.RegisterCsv(name, path, std::move(schema).value(), csv,
                              pmap_stride);
}

RawEngine::RawEngine(RawEngineOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      jit_(options_.jit_compiler),
      shreds_(options_.shred_cache_bytes, options_.shred_cache_shards),
      planner_(&catalog_, &jit_, &shreds_) {
  default_session_ = OpenSession(options_.planner);
}

std::unique_ptr<Session> RawEngine::OpenSession() {
  return OpenSession(options_.planner);
}

std::unique_ptr<Session> RawEngine::OpenSession(
    const PlannerOptions& options) {
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(
      this, options, next_session_id_.fetch_add(1, std::memory_order_relaxed)));
}

StatusOr<QuerySpec> RawEngine::ParseSql(const std::string& sql) {
  return default_session_->Parse(sql);
}

StatusOr<QueryResult> RawEngine::Query(const std::string& sql) {
  return default_session_->Query(sql);
}

StatusOr<QueryResult> RawEngine::Query(const std::string& sql,
                                       const PlannerOptions& options) {
  return default_session_->Query(sql, options);
}

StatusOr<QueryResult> RawEngine::Execute(const QuerySpec& spec,
                                         const PlannerOptions& options) {
  return default_session_->Execute(spec, options);
}

EngineStats RawEngine::Stats() const {
  EngineStats stats;
  stats.shred_cache = shreds_.Stats();
  stats.jit_cache = jit_.Stats();
  stats.ref_pool = catalog_.RefPoolStats();
  stats.tables = catalog_.Stats();
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.admission.admitted =
      admission_.admitted.load(std::memory_order_relaxed);
  stats.admission.executed =
      admission_.executed.load(std::memory_order_relaxed);
  stats.admission.shed = admission_.shed.load(std::memory_order_relaxed);
  stats.admission.deadline_expired =
      admission_.deadline_expired.load(std::memory_order_relaxed);
  stats.queries_parsed = queries_parsed_.load(std::memory_order_relaxed);
  stats.queries_planned = queries_planned_.load(std::memory_order_relaxed);
  stats.queries_executed = queries_executed_.load(std::memory_order_relaxed);
  return stats;
}

StatusOr<std::shared_ptr<const PositionalMap>>
RawEngine::PositionalMapSnapshot(const std::string& table) {
  RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  return entry->pmap();
}

Status RawEngine::DropFilePageCache(const std::string& table) {
  RAW_ASSIGN_OR_RETURN(TableEntry * entry, catalog_.Get(table));
  return entry->DropPageCache();
}

void RawEngine::ResetAdaptiveState() {
  shreds_.Clear();
  jit_.Clear();
  catalog_.ResetAdaptiveState();
}

}  // namespace raw
