#ifndef RAW_ENGINE_PLANNER_H_
#define RAW_ENGINE_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/logical_plan.h"
#include "engine/physical_plan.h"
#include "engine/shred_cache.h"
#include "jit/template_cache.h"

namespace raw {

/// Converts logical queries into physical operator trees, making the
/// decisions §3 describes: which access path serves each field (parse raw /
/// positional-map jump / nearby position + incremental parse / cached
/// shred), where each scan operator sits in the plan (full columns vs column
/// shreds vs multi-column shreds; early/intermediate/late around joins), and
/// which kernels to JIT-compile.
class Planner {
 public:
  Planner(Catalog* catalog, JitTemplateCache* jit, ShredCache* shreds)
      : catalog_(catalog), jit_(jit), shreds_(shreds) {}

  StatusOr<PhysicalPlan> Plan(const QuerySpec& query,
                              const PlannerOptions& options);

  /// How many plans ran through a fused JIT pipeline vs. interpreted
  /// operators (observability; serialized by the STATS wire command).
  int64_t plans_fused() const {
    return plans_fused_.load(std::memory_order_relaxed);
  }
  int64_t plans_interpreted() const {
    return plans_interpreted_.load(std::memory_order_relaxed);
  }

 private:
  struct TableSide;  // planning state for one table (defined in planner.cc)

  Catalog* catalog_;
  JitTemplateCache* jit_;
  ShredCache* shreds_;
  std::atomic<int64_t> plans_fused_{0};
  std::atomic<int64_t> plans_interpreted_{0};
};

/// Internal field naming: every materialized column is qualified as
/// "<table>.<column>" so join outputs never collide and specs resolve
/// unambiguously at any plan level.
std::string QualifiedName(const std::string& table, const std::string& column);

}  // namespace raw

#endif  // RAW_ENGINE_PLANNER_H_
