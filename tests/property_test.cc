// Property-style parameterized sweeps over the engine's core invariant:
// every (access path, shred policy, positional-map stride, selectivity)
// combination must return identical answers on the same raw file.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "eventsim/ref_reader.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

struct SweepCase {
  AccessPathKind access;
  ShredPolicy policy;
  int pmap_stride;
  double selectivity;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = std::string(AccessPathKindToString(c.access)) + "_" +
                     std::string(ShredPolicyToString(c.policy)) + "_s" +
                     std::to_string(c.pmap_stride) + "_p" +
                     std::to_string(static_cast<int>(c.selectivity * 100));
  return name;
}

class ConsistencySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir(std::move(*TempDir::Create("raw_prop_")));
    spec_ = new TableSpec(TableSpec::UniformInt32("p", 10, 3000, 77));
    spec_->columns[6].type = DataType::kFloat64;
    csv_path_ = new std::string(dir_->FilePath("p.csv"));
    bin_path_ = new std::string(dir_->FilePath("p.bin"));
    ASSERT_OK(WriteCsvFile(*spec_, *csv_path_));
    ASSERT_OK(WriteBinaryFile(*spec_, *bin_path_));
    // Ground truth per selectivity, computed once.
    truth_ = new std::map<int64_t, std::pair<int64_t, int64_t>>();
  }

  static void TearDownTestSuite() {
    delete truth_;
    delete bin_path_;
    delete csv_path_;
    delete spec_;
    delete dir_;
    dir_ = nullptr;
  }

  // (count, max of col6-as-int) for predicate col1 < lit.
  static std::pair<int64_t, int64_t> Truth(int64_t lit) {
    auto it = truth_->find(lit);
    if (it != truth_->end()) return it->second;
    TableDataSource source(*spec_);
    int64_t count = 0;
    double best = -1e300;
    for (int64_t r = 0; r < spec_->rows; ++r) {
      if (*source.Value(r, 1).AsInt64() >= lit) continue;
      ++count;
      best = std::max(best, *source.Value(r, 6).AsDouble());
    }
    auto result = std::make_pair(count, static_cast<int64_t>(best));
    (*truth_)[lit] = result;
    return result;
  }

  static TempDir* dir_;
  static TableSpec* spec_;
  static std::string* csv_path_;
  static std::string* bin_path_;
  static std::map<int64_t, std::pair<int64_t, int64_t>>* truth_;
};

TempDir* ConsistencySweep::dir_ = nullptr;
TableSpec* ConsistencySweep::spec_ = nullptr;
std::string* ConsistencySweep::csv_path_ = nullptr;
std::string* ConsistencySweep::bin_path_ = nullptr;
std::map<int64_t, std::pair<int64_t, int64_t>>* ConsistencySweep::truth_ =
    nullptr;

TEST_P(ConsistencySweep, CsvQueriesMatchGroundTruth) {
  const SweepCase& c = GetParam();
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("p", *csv_path_, spec_->ToSchema(),
                               CsvOptions(), c.pmap_stride));
  PlannerOptions options;
  options.access_path = c.access;
  options.shred_policy = c.policy;
  if (c.access == AccessPathKind::kJit &&
      !engine.Stats().jit_compiler_available()) {
    GTEST_SKIP() << "no compiler";
  }
  int64_t lit = *spec_->SelectivityLiteral(1, c.selectivity).AsInt64();
  auto [expected_count, expected_max] = Truth(lit);

  // Query 1 (builds pmap + caches), then query 2 (uses them) — both checked.
  ASSERT_OK_AND_ASSIGN(
      QueryResult count_result,
      engine.Query("SELECT COUNT(*) FROM p WHERE col1 < " +
                       std::to_string(lit),
                   options));
  ASSERT_OK_AND_ASSIGN(Datum count, count_result.Scalar());
  EXPECT_EQ(count.int64_value(), expected_count);

  ASSERT_OK_AND_ASSIGN(
      QueryResult max_result,
      engine.Query("SELECT MAX(col6) FROM p WHERE col1 < " +
                       std::to_string(lit),
                   options));
  if (expected_count > 0) {
    ASSERT_OK_AND_ASSIGN(Datum max, max_result.Scalar());
    EXPECT_EQ(*max.AsInt64(), expected_max);
  }
}

TEST_P(ConsistencySweep, BinaryQueriesMatchGroundTruth) {
  const SweepCase& c = GetParam();
  if (c.access == AccessPathKind::kExternalTable) {
    GTEST_SKIP() << "external tables are CSV-only";
  }
  RawEngine engine;
  ASSERT_OK(engine.RegisterBinary("p", *bin_path_, spec_->ToSchema()));
  PlannerOptions options;
  options.access_path = c.access;
  options.shred_policy = c.policy;
  if (c.access == AccessPathKind::kJit &&
      !engine.Stats().jit_compiler_available()) {
    GTEST_SKIP() << "no compiler";
  }
  int64_t lit = *spec_->SelectivityLiteral(1, c.selectivity).AsInt64();
  auto [expected_count, expected_max] = Truth(lit);
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT COUNT(*) FROM p WHERE col1 < " +
                       std::to_string(lit),
                   options));
  ASSERT_OK_AND_ASSIGN(Datum count, result.Scalar());
  EXPECT_EQ(count.int64_value(), expected_count);
}

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  for (AccessPathKind access :
       {AccessPathKind::kInSitu, AccessPathKind::kJit,
        AccessPathKind::kLoaded, AccessPathKind::kExternalTable}) {
    for (ShredPolicy policy :
         {ShredPolicy::kFullColumns, ShredPolicy::kShreds,
          ShredPolicy::kMultiColumnShreds}) {
      for (int stride : {1, 4, 7}) {
        for (double sel : {0.0, 0.05, 0.5, 1.0}) {
          // Non-raw paths don't interact with stride; keep one stride each.
          if ((access == AccessPathKind::kLoaded ||
               access == AccessPathKind::kExternalTable) &&
              stride != 4) {
            continue;
          }
          cases.push_back(SweepCase{access, policy, stride, sel});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ConsistencySweep,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// --- positional-map stride invariant ------------------------------------------

class PmapStrideSweep : public ::testing::TestWithParam<int> {};

TEST_P(PmapStrideSweep, JumpPlusIncrementalParseEqualsFullTokenize) {
  int stride = GetParam();
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_pmap_"));
  TableSpec spec = TableSpec::UniformInt32("s", 12, 400, 55);
  std::string path = dir.FilePath("s.csv");
  ASSERT_OK(WriteCsvFile(spec, path));

  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("s", path, spec.ToSchema(), CsvOptions(),
                               stride));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  // Query 1 builds the map; query 2 navigates via it for a far column.
  ASSERT_OK(
      engine.Query("SELECT MAX(col0) FROM s WHERE col0 < 999999999", options)
          .status());
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT MAX(col11) FROM s WHERE col0 < 999999999",
                   options));
  TableDataSource source(spec);
  int64_t expected = INT64_MIN;
  for (int64_t r = 0; r < spec.rows; ++r) {
    expected = std::max(expected, *source.Value(r, 11).AsInt64());
  }
  ASSERT_OK_AND_ASSIGN(Datum max, result.Scalar());
  EXPECT_EQ(*max.AsInt64(), expected) << "stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, PmapStrideSweep,
                         ::testing::Values(1, 2, 3, 5, 7, 11, 12));

// --- CSV dialect invariant -------------------------------------------------------

class DelimiterSweep : public ::testing::TestWithParam<char> {};

TEST_P(DelimiterSweep, EngineAnswersIndependentOfDelimiter) {
  char delim = GetParam();
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_delim_"));
  // Write the same small table with the parameterized delimiter.
  TableSpec spec = TableSpec::UniformInt32("d", 6, 500, 31);
  TableDataSource source(spec);
  std::string content;
  for (int64_t r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < 6; ++c) {
      if (c > 0) content += delim;
      content += source.Value(r, c).ToString();
    }
    content += '\n';
  }
  std::string path = dir.FilePath("d.csv");
  ASSERT_OK(WriteStringToFile(path, content));

  CsvOptions options;
  options.delimiter = delim;
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("d", path, spec.ToSchema(), options, 2));
  PlannerOptions planner_options;
  planner_options.access_path = engine.Stats().jit_compiler_available()
                                    ? AccessPathKind::kJit
                                    : AccessPathKind::kInSitu;
  int64_t lit = *spec.SelectivityLiteral(0, 0.4).AsInt64();
  int64_t expected_count = 0;
  int64_t expected_max = INT64_MIN;
  for (int64_t r = 0; r < spec.rows; ++r) {
    if (*source.Value(r, 0).AsInt64() >= lit) continue;
    ++expected_count;
    expected_max = std::max(expected_max, *source.Value(r, 4).AsInt64());
  }
  // Two queries: sequential scan then positional-map navigation.
  ASSERT_OK_AND_ASSIGN(
      QueryResult count,
      engine.Query("SELECT COUNT(*) FROM d WHERE col0 < " +
                       std::to_string(lit),
                   planner_options));
  ASSERT_OK_AND_ASSIGN(Datum n, count.Scalar());
  EXPECT_EQ(n.int64_value(), expected_count);
  ASSERT_OK_AND_ASSIGN(
      QueryResult max,
      engine.Query("SELECT MAX(col4) FROM d WHERE col0 < " +
                       std::to_string(lit),
                   planner_options));
  ASSERT_OK_AND_ASSIGN(Datum m, max.Scalar());
  EXPECT_EQ(*m.AsInt64(), expected_max);
}

INSTANTIATE_TEST_SUITE_P(Delimiters, DelimiterSweep,
                         ::testing::Values(',', ';', '\t', '|'));

// --- morsel-parallel scan invariant -----------------------------------------------

// For randomly generated schemas (width, types, row counts — including empty
// and single-row tables), a morsel-parallel scan must return exactly the
// single-threaded reference answer: same rows, same aggregates, same
// group-by output, same order.
TEST(ParallelConsistencyProperty, RandomSchemasParallelEqualsSerial) {
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_parprop_"));
  std::mt19937_64 rng(20260731);
  for (int iter = 0; iter < 100; ++iter) {
    const int num_columns = 1 + static_cast<int>(rng() % 10);
    const int64_t rows = static_cast<int64_t>(rng() % 700);  // 0 happens
    TableSpec spec = TableSpec::UniformInt32(
        "r", num_columns, rows, /*seed=*/static_cast<uint64_t>(rng()));
    for (int c = 0; c < num_columns; ++c) {
      switch (rng() % 4) {
        case 0:
          spec.columns[static_cast<size_t>(c)].type = DataType::kFloat64;
          break;
        case 1:
          spec.columns[static_cast<size_t>(c)].type = DataType::kInt64;
          break;
        default:
          break;  // keep int32
      }
    }
    std::string path = dir.FilePath("r" + std::to_string(iter) + ".csv");
    ASSERT_OK(WriteCsvFile(spec, path));

    const int agg_col = static_cast<int>(rng() % num_columns);
    const int group_col = static_cast<int>(rng() % num_columns);
    std::vector<std::string> queries = {
        "SELECT COUNT(*) FROM r",
        "SELECT MAX(col" + std::to_string(agg_col) + "), SUM(col" +
            std::to_string(agg_col) + ") FROM r",
        "SELECT col" + std::to_string(group_col) + ", COUNT(*) FROM r" +
            " GROUP BY col" + std::to_string(group_col),
    };
    const int threads = 2 + static_cast<int>(rng() % 7);  // 2..8
    for (const std::string& sql : queries) {
      auto run = [&](int t) -> StatusOr<QueryResult> {
        RawEngine engine;
        RAW_RETURN_NOT_OK(engine.RegisterCsv(
            "r", path, spec.ToSchema(), CsvOptions(), /*pmap_stride=*/3));
        PlannerOptions options;
        options.access_path = AccessPathKind::kInSitu;
        options.num_threads = t;
        return engine.Query(sql, options);
      };
      ASSERT_OK_AND_ASSIGN(QueryResult serial, run(1));
      ASSERT_OK_AND_ASSIGN(QueryResult parallel, run(threads));
      ASSERT_EQ(serial.num_rows(), parallel.num_rows())
          << "iter " << iter << ": " << sql;
      ASSERT_EQ(serial.num_columns(), parallel.num_columns());
      for (int64_t r = 0; r < serial.num_rows(); ++r) {
        for (int c = 0; c < serial.num_columns(); ++c) {
          ASSERT_OK_AND_ASSIGN(Datum e, serial.ValueAt(r, c));
          ASSERT_OK_AND_ASSIGN(Datum a, parallel.ValueAt(r, c));
          ASSERT_EQ(e.ToString(), a.ToString())
              << "iter " << iter << " threads " << threads << ": " << sql
              << " at (" << r << "," << c << ")";
        }
      }
    }
  }
}

// --- pipeline-fusion invariant ----------------------------------------------------

// For randomly generated schemas and single-table aggregate/projection
// queries, the fused JIT pipeline must return exactly the interpreted
// operator pipeline's answer — same rows, same aggregates, same order, at
// any thread count. Ineligible shapes silently fall back, so every query in
// this sweep is valid under both settings.
TEST(FusionConsistencyProperty, RandomQueriesFusedEqualsInterpreted) {
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_fuseprop_"));
  {
    RawEngine probe;
    if (!probe.Stats().jit_compiler_available()) GTEST_SKIP() << "no compiler";
  }
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 12; ++iter) {
    const int num_columns = 2 + static_cast<int>(rng() % 7);
    const int64_t rows = static_cast<int64_t>(rng() % 900);  // 0 happens
    TableSpec spec = TableSpec::UniformInt32(
        "q", num_columns, rows, /*seed=*/static_cast<uint64_t>(rng()));
    // col0 stays int32 so predicates always have a literal the SQL layer and
    // the fusion canonicalizer agree on; the rest mix types.
    for (int c = 1; c < num_columns; ++c) {
      switch (rng() % 4) {
        case 0:
          spec.columns[static_cast<size_t>(c)].type = DataType::kFloat64;
          break;
        case 1:
          spec.columns[static_cast<size_t>(c)].type = DataType::kInt64;
          break;
        default:
          break;  // keep int32
      }
    }
    const bool use_csv = rng() % 2 == 0;
    std::string path = dir.FilePath("q" + std::to_string(iter) +
                                    (use_csv ? ".csv" : ".bin"));
    ASSERT_OK(use_csv ? WriteCsvFile(spec, path)
                      : WriteBinaryFile(spec, path));

    RawEngine engine;
    ASSERT_OK(use_csv ? engine.RegisterCsv("q", path, spec.ToSchema(),
                                           CsvOptions(), /*pmap_stride=*/3)
                      : engine.RegisterBinary("q", path, spec.ToSchema()));
    const int agg_col = static_cast<int>(rng() % num_columns);
    const std::string agg = "col" + std::to_string(agg_col);
    const int64_t lit =
        *spec.SelectivityLiteral(0, 0.1 + 0.8 * ((rng() % 100) / 100.0))
             .AsInt64();
    const std::string where = " FROM q WHERE col0 < " + std::to_string(lit);
    std::vector<std::string> queries = {
        "SELECT COUNT(*)" + where,
        "SELECT MAX(" + agg + "), MIN(" + agg + "), SUM(" + agg + ")" + where,
        "SELECT AVG(" + agg + ")" + where,
        "SELECT " + agg + where,
    };
    const int threads = 1 + static_cast<int>(rng() % 4);
    // Warm-up publishes the positional map the fused CSV plug-in needs.
    PlannerOptions interp;
    interp.jit_fusion = JitFusion::kOff;
    interp.num_threads = threads;
    ASSERT_TRUE(engine.Query(queries[0], interp).ok());
    PlannerOptions fused = interp;
    fused.jit_fusion = JitFusion::kOn;
    for (const std::string& sql : queries) {
      ASSERT_OK_AND_ASSIGN(QueryResult f, engine.Query(sql, fused));
      ASSERT_OK_AND_ASSIGN(QueryResult i, engine.Query(sql, interp));
      ASSERT_EQ(f.num_rows(), i.num_rows()) << "iter " << iter << ": " << sql;
      ASSERT_EQ(f.num_columns(), i.num_columns());
      for (int64_t r = 0; r < f.num_rows(); ++r) {
        for (int c = 0; c < f.num_columns(); ++c) {
          ASSERT_OK_AND_ASSIGN(Datum fv, f.ValueAt(r, c));
          ASSERT_OK_AND_ASSIGN(Datum iv, i.ValueAt(r, c));
          ASSERT_EQ(fv.ToString(), iv.ToString())
              << "iter " << iter << " threads " << threads << ": " << sql
              << " at (" << r << "," << c << ")";
        }
      }
    }
  }
}

// --- REF cluster-size invariant ---------------------------------------------------

struct RefSweepCase {
  int cluster_events;
  int64_t pool_bytes;
};

class RefClusterSweep : public ::testing::TestWithParam<RefSweepCase> {};

TEST_P(RefClusterSweep, RoundTripAcrossClusterAndPoolSizes) {
  const RefSweepCase& c = GetParam();
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_refsweep_"));
  EventGenOptions options;
  options.num_events = 137;  // deliberately not a multiple of cluster size
  options.seed = 77;
  std::string path = dir.FilePath("e.ref");
  ASSERT_OK(WriteRefFile(path, options, c.cluster_events));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<RefReader> reader,
                       RefReader::Open(path, c.pool_bytes));
  ASSERT_EQ(reader->num_events(), options.num_events);

  // Every event must match a fresh generator stream, regardless of how the
  // data was clustered or how small the buffer pool is.
  EventGenerator gen(options);
  Event actual;
  for (int64_t i = 0; i < options.num_events; ++i) {
    Event expected = gen.Next();
    ASSERT_OK(reader->GetEntry(i, &actual));
    ASSERT_EQ(actual.event_id, expected.event_id) << i;
    ASSERT_EQ(actual.run_number, expected.run_number) << i;
    ASSERT_EQ(actual.muons.size(), expected.muons.size()) << i;
    ASSERT_EQ(actual.jets.size(), expected.jets.size()) << i;
    for (size_t m = 0; m < actual.muons.size(); ++m) {
      ASSERT_FLOAT_EQ(actual.muons[m].pt, expected.muons[m].pt);
      ASSERT_FLOAT_EQ(actual.muons[m].eta, expected.muons[m].eta);
    }
  }
  // Bulk range reads agree with per-event access.
  int id_branch = reader->BranchIndex(ref_branches::kEventId);
  std::vector<int64_t> ids(static_cast<size_t>(options.num_events));
  ASSERT_OK(reader->ReadRange(id_branch, 0, options.num_events, ids.data()));
  for (int64_t i = 0; i < options.num_events; ++i) {
    EXPECT_EQ(ids[static_cast<size_t>(i)], i);
  }
}

std::vector<RefSweepCase> RefCases() {
  std::vector<RefSweepCase> cases;
  for (int cluster : {1, 3, 16, 137, 1000}) {
    for (int64_t pool : {int64_t{1}, int64_t{4096}, int64_t{64ll << 20}}) {
      cases.push_back(RefSweepCase{cluster, pool});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ClustersAndPools, RefClusterSweep,
                         ::testing::ValuesIn(RefCases()));

}  // namespace
}  // namespace raw
