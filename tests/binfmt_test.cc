#include <gtest/gtest.h>

#include "binfmt/binary_layout.h"
#include "binfmt/binary_reader.h"
#include "binfmt/binary_writer.h"
#include "tests/test_util.h"

namespace raw {
namespace {

Schema TestSchema() {
  return Schema{{"a", DataType::kInt32},
                {"b", DataType::kInt64},
                {"c", DataType::kFloat32},
                {"d", DataType::kFloat64},
                {"e", DataType::kBool}};
}

TEST(BinaryLayoutTest, OffsetsAndWidth) {
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout, BinaryLayout::Create(TestSchema()));
  EXPECT_EQ(layout.row_width(), 4 + 8 + 4 + 8 + 1);
  EXPECT_EQ(layout.ColumnOffset(0), 0);
  EXPECT_EQ(layout.ColumnOffset(1), 4);
  EXPECT_EQ(layout.ColumnOffset(3), 16);
  EXPECT_EQ(layout.Offset(2, 1), 2 * 25 + 4);
  EXPECT_EQ(layout.NumRows(100), 4);
}

TEST(BinaryLayoutTest, RejectsStrings) {
  Schema s{{"x", DataType::kString}};
  EXPECT_FALSE(BinaryLayout::Create(s).ok());
}

using BinaryIoTest = testing::TempDirTest;

TEST_F(BinaryIoTest, WriteReadRoundTrip) {
  std::string path = Path("t.bin");
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout, BinaryLayout::Create(TestSchema()));
  {
    BinaryWriter writer(path, layout);
    ASSERT_OK(writer.Open());
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(writer.AppendDatumRow(
          {Datum::Int32(i), Datum::Int64(i * 1000000007ll),
           Datum::Float32(i * 0.5f), Datum::Float64(i * 0.25),
           Datum::Bool(i % 2 == 0)}));
    }
    ASSERT_OK(writer.Close());
    EXPECT_EQ(writer.rows_written(), 100);
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<BinaryReader> reader,
                       BinaryReader::Open(path, layout));
  EXPECT_EQ(reader->num_rows(), 100);
  EXPECT_EQ(reader->Value<int32_t>(7, 0), 7);
  EXPECT_EQ(reader->Value<int64_t>(99, 1), 99 * 1000000007ll);
  EXPECT_FLOAT_EQ(reader->Value<float>(3, 2), 1.5f);
  EXPECT_DOUBLE_EQ(reader->Value<double>(4, 3), 1.0);
  EXPECT_EQ(reader->Value<char>(4, 4), 1);
  EXPECT_EQ(reader->Value<char>(5, 4), 0);
}

TEST_F(BinaryIoTest, TypeMismatchRejected) {
  std::string path = Path("t2.bin");
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout, BinaryLayout::Create(TestSchema()));
  BinaryWriter writer(path, layout);
  ASSERT_OK(writer.Open());
  EXPECT_FALSE(writer.AppendDatumRow({Datum::Int64(1), Datum::Int64(2),
                                      Datum::Float32(0), Datum::Float64(0),
                                      Datum::Bool(false)})
                   .ok());
  EXPECT_FALSE(writer.AppendDatumRow({Datum::Int32(1)}).ok());
}

TEST_F(BinaryIoTest, TruncatedFileRejected) {
  std::string path = Path("bad.bin");
  ASSERT_OK(WriteStringToFile(path, std::string(27, 'x')));  // not % 25
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout, BinaryLayout::Create(TestSchema()));
  EXPECT_FALSE(BinaryReader::Open(path, layout).ok());
}

TEST_F(BinaryIoTest, EmptyFileHasZeroRows) {
  std::string path = Path("empty.bin");
  ASSERT_OK(WriteStringToFile(path, ""));
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout, BinaryLayout::Create(TestSchema()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<BinaryReader> reader,
                       BinaryReader::Open(path, layout));
  EXPECT_EQ(reader->num_rows(), 0);
}

}  // namespace
}  // namespace raw
