// Property suite for the kernel core (common/kernels.h + the columnar
// eval/aggregate kernels): every dispatch tier must produce bit-for-bit the
// results of the scalar reference implementation, over randomized inputs —
// unaligned buffers, needle positions straddling word/vector boundaries,
// quoted fields, all numeric types x compare ops x selectivities, and
// engine-level thread-count determinism on every tier.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <vector>

#include "columnar/aggregate.h"
#include "columnar/eval_kernels.h"
#include "columnar/expression.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "csv/csv_tokenizer.h"
#include "engine/raw_engine.h"
#include "tests/test_util.h"

namespace raw {
namespace {

const KernelTier kAllTiers[] = {KernelTier::kScalar, KernelTier::kSwar,
                                KernelTier::kSse2, KernelTier::kAvx2};

/// Restores the environment-default tier when a test that sweeps tiers ends.
struct TierGuard {
  ~TierGuard() { ResetKernelTierFromEnv(); }
};

std::vector<KernelTier> SupportedTiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier tier : kAllTiers) {
    if (ScanForEitherImpl(tier) != nullptr) tiers.push_back(tier);
  }
  return tiers;
}

// --- byte scanners -----------------------------------------------------------

TEST(KernelScanTest, RandomBuffersMatchScalar) {
  Rng rng(2024);
  ScanTwoFn scalar_two = ScanForEitherImpl(KernelTier::kScalar);
  ScanOneFn scalar_one = ScanForImpl(KernelTier::kScalar);
  for (int round = 0; round < 200; ++round) {
    const int size = static_cast<int>(rng.NextInt32(0, 300));
    std::vector<char> buf(static_cast<size_t>(size) + 8);
    // Full byte range, including 0x80..0xFF (SWAR false-positive territory)
    // and plenty of needle bytes.
    for (int i = 0; i < size; ++i) {
      uint64_t roll = rng.NextBelow(10);
      buf[static_cast<size_t>(i)] =
          roll < 2 ? ','
                   : (roll < 4 ? '\n' : static_cast<char>(rng.NextBelow(256)));
    }
    // Unaligned starts: every offset into the buffer.
    for (int off = 0; off <= size; ++off) {
      const char* p = buf.data() + off;
      const char* end = buf.data() + size;
      const char* expect_two = scalar_two(p, end, ',', '\n');
      const char* expect_one = scalar_one(p, end, '\n');
      for (KernelTier tier : SupportedTiers()) {
        EXPECT_EQ(ScanForEitherImpl(tier)(p, end, ',', '\n'), expect_two)
            << "tier=" << KernelTierName(tier) << " off=" << off;
        EXPECT_EQ(ScanForImpl(tier)(p, end, '\n'), expect_one)
            << "tier=" << KernelTierName(tier) << " off=" << off;
      }
    }
  }
}

TEST(KernelScanTest, NeedleAtEveryPositionAndBoundary) {
  // One needle in a sea of 'x': must be found at every position, for every
  // start offset 0..7 (straddles the 8/16/32-byte steps of every tier).
  const int kSize = 100;
  for (int pos = 0; pos < kSize; ++pos) {
    std::string buf(kSize, 'x');
    buf[static_cast<size_t>(pos)] = ';';
    for (int off = 0; off < 8; ++off) {
      const char* p = buf.data() + off;
      const char* end = buf.data() + buf.size();
      for (KernelTier tier : SupportedTiers()) {
        const char* hit_two = ScanForEitherImpl(tier)(p, end, ';', '\n');
        const char* hit_one = ScanForImpl(tier)(p, end, ';');
        const char* expect =
            pos >= off ? buf.data() + pos : end;  // needle before start: miss
        EXPECT_EQ(hit_two, expect) << KernelTierName(tier) << " pos=" << pos
                                   << " off=" << off;
        EXPECT_EQ(hit_one, expect) << KernelTierName(tier) << " pos=" << pos
                                   << " off=" << off;
      }
    }
  }
}

TEST(KernelScanTest, EmptyAndNoHitBuffers) {
  std::string buf(257, 'a');
  for (KernelTier tier : SupportedTiers()) {
    const char* end = buf.data() + buf.size();
    EXPECT_EQ(ScanForEitherImpl(tier)(buf.data(), buf.data(), ',', '\n'),
              buf.data());
    EXPECT_EQ(ScanForEitherImpl(tier)(buf.data(), end, ',', '\n'), end);
    EXPECT_EQ(ScanForImpl(tier)(buf.data(), end, ','), end);
  }
}

TEST(KernelScanTest, QuotedRowTokenizationUnchangedAcrossTiers) {
  // The quote-aware path sits above the dispatched scanners; rows with
  // quoted fields (embedded delimiters/newlines, "" escapes) must tokenize
  // identically on every tier.
  TierGuard guard;
  Rng rng(7);
  std::string buf;
  for (int r = 0; r < 50; ++r) {
    for (int f = 0; f < 4; ++f) {
      if (f > 0) buf.push_back(',');
      if (rng.NextBool()) {
        buf.push_back('"');
        for (int k = 0; k < 6; ++k) {
          switch (rng.NextBelow(5)) {
            case 0:
              buf += "\"\"";
              break;
            case 1:
              buf.push_back(',');
              break;
            case 2:
              buf.push_back('\n');
              break;
            default:
              buf.push_back(static_cast<char>('a' + rng.NextBelow(26)));
          }
        }
        buf.push_back('"');
      } else {
        buf += std::to_string(rng.NextInt64(0, 999999));
      }
    }
    buf.push_back('\n');
  }
  std::vector<std::vector<std::string>> reference;
  for (KernelTier tier : SupportedTiers()) {
    SetKernelTier(tier);
    std::vector<std::vector<std::string>> rows;
    CsvRowCursor cursor(buf.data(), buf.data() + buf.size(), CsvOptions());
    std::vector<FieldRef> fields;
    while (!cursor.AtEnd()) {
      ASSERT_OK(cursor.NextRow(&fields));
      std::vector<std::string> row;
      for (const FieldRef& f : fields) row.emplace_back(f.view());
      rows.push_back(std::move(row));
    }
    if (reference.empty()) {
      reference = std::move(rows);
      ASSERT_EQ(reference.size(), 50u);
    } else {
      EXPECT_EQ(rows, reference) << KernelTierName(tier);
    }
  }
}

// --- compare kernels ---------------------------------------------------------

template <typename T>
void CompareKernelProperty(Rng* rng, T lo, T hi) {
  TierGuard guard;
  const CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                            CompareOp::kGe, CompareOp::kEq, CompareOp::kNe};
  for (int round = 0; round < 20; ++round) {
    const int64_t n = rng->NextInt64(0, 600);
    std::vector<T> values(static_cast<size_t>(n));
    for (auto& v : values) {
      if constexpr (std::is_integral_v<T>) {
        v = static_cast<T>(rng->NextInt64(static_cast<int64_t>(lo),
                                          static_cast<int64_t>(hi)));
      } else {
        v = static_cast<T>(rng->NextDouble(static_cast<double>(lo),
                                           static_cast<double>(hi)));
      }
    }
    // Selectivity sweep comes from constants at the range edges and middle.
    for (T constant : {lo, static_cast<T>((lo + hi) / 2), hi}) {
      // Random sub-selection (sorted, unique) for the gather variant.
      SelectionVector sel;
      for (int64_t i = 0; i < n; ++i) {
        if (rng->NextBool()) sel.Append(static_cast<int32_t>(i));
      }
      for (CompareOp op : kOps) {
        SelectionVector expect_dense, expect_sel;
        expect_dense.Append(-7);  // non-empty: appends must preserve prefixes
        expect_sel.Append(-7);
        SelectCompareConstScalar<T>(op, values.data(), n, constant, nullptr,
                                    &expect_dense);
        SelectCompareConstScalar<T>(op, values.data(), sel.size(), constant,
                                    &sel, &expect_sel);
        for (KernelTier tier : SupportedTiers()) {
          SetKernelTier(tier);
          SelectionVector got_dense, got_sel;
          got_dense.Append(-7);
          got_sel.Append(-7);
          SelectCompareConst<T>(op, values.data(), n, constant, nullptr,
                                &got_dense);
          SelectCompareConst<T>(op, values.data(), sel.size(), constant, &sel,
                                &got_sel);
          EXPECT_EQ(got_dense.indices(), expect_dense.indices())
              << KernelTierName(tier) << " op=" << CompareOpToString(op);
          EXPECT_EQ(got_sel.indices(), expect_sel.indices())
              << KernelTierName(tier) << " op=" << CompareOpToString(op);
        }
      }
    }
  }
}

TEST(KernelCompareTest, Int32MatchesReference) {
  Rng rng(1);
  CompareKernelProperty<int32_t>(&rng, -50, 50);
}

TEST(KernelCompareTest, Int64MatchesReference) {
  Rng rng(2);
  CompareKernelProperty<int64_t>(&rng, -1000000000000LL, 1000000000000LL);
}

TEST(KernelCompareTest, Float32MatchesReference) {
  Rng rng(3);
  CompareKernelProperty<float>(&rng, -10.0f, 10.0f);
}

TEST(KernelCompareTest, Float64MatchesReference) {
  Rng rng(4);
  CompareKernelProperty<double>(&rng, -1e6, 1e6);
}

// --- expression-level: AND short-circuit & arithmetic ------------------------

ColumnBatch RandomNumericBatch(Rng* rng, int64_t n) {
  Schema schema{{"a", DataType::kInt32},
                {"b", DataType::kFloat64},
                {"c", DataType::kInt64},
                {"d", DataType::kFloat32}};
  ColumnBatch batch(schema);
  auto a = std::make_shared<Column>(DataType::kInt32);
  auto b = std::make_shared<Column>(DataType::kFloat64);
  auto c = std::make_shared<Column>(DataType::kInt64);
  auto d = std::make_shared<Column>(DataType::kFloat32);
  for (int64_t i = 0; i < n; ++i) {
    a->Append<int32_t>(rng->NextInt32(-100, 100));
    b->Append<double>(rng->NextDouble(-100, 100));
    c->Append<int64_t>(rng->NextInt64(-1000, 1000));
    d->Append<float>(static_cast<float>(rng->NextDouble(1, 100)));
  }
  batch.AddColumn(a);
  batch.AddColumn(b);
  batch.AddColumn(c);
  batch.AddColumn(d);
  batch.SetNumRows(n);
  return batch;
}

TEST(KernelExpressionTest, AndShortCircuitMatchesBoolMaterialization) {
  TierGuard guard;
  Rng rng(11);
  for (int round = 0; round < 30; ++round) {
    ColumnBatch batch = RandomNumericBatch(&rng, rng.NextInt64(0, 500));
    // 2-4 term conjunction over random columns/constants/ops.
    const int terms = static_cast<int>(rng.NextInt32(2, 4));
    ExprPtr expr;
    for (int t = 0; t < terms; ++t) {
      int col = static_cast<int>(rng.NextInt32(0, 3));
      // The float32-column literal is snapped to an exactly-representable
      // float: the selection fast path compares in float while Evaluate
      // widens to double (seed behavior), and the two agree for all inputs
      // only when the literal has no float rounding gap.
      Datum lit = col == 0   ? Datum::Int32(rng.NextInt32(-100, 100))
                  : col == 1 ? Datum::Float64(rng.NextDouble(-100, 100))
                  : col == 2 ? Datum::Int64(rng.NextInt64(-1000, 1000))
                             : Datum::Float64(static_cast<double>(
                                   static_cast<float>(rng.NextDouble(1, 100))));
      CompareOp op = static_cast<CompareOp>(rng.NextInt32(0, 5));
      ExprPtr term = Cmp(op, Col(col), Lit(lit));
      expr = expr == nullptr ? term : And(std::move(expr), std::move(term));
    }
    // Reference: materialized bool column of the whole conjunction.
    ASSERT_OK_AND_ASSIGN(Column bools, expr->Evaluate(batch));
    SelectionVector expect;
    for (int64_t i = 0; i < bools.length(); ++i) {
      if (bools.Value<bool>(i)) expect.Append(static_cast<int32_t>(i));
    }
    for (KernelTier tier : SupportedTiers()) {
      SetKernelTier(tier);
      SelectionVector got;
      ASSERT_OK(expr->EvaluateSelection(batch, &got));
      EXPECT_EQ(got.indices(), expect.indices()) << KernelTierName(tier);
    }
  }
}

TEST(KernelExpressionTest, ArithKernelsBitIdenticalToScalar) {
  TierGuard guard;
  Rng rng(12);
  const ArithOp kOps[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul,
                          ArithOp::kDiv};
  for (int round = 0; round < 10; ++round) {
    ColumnBatch batch = RandomNumericBatch(&rng, rng.NextInt64(0, 300));
    for (int lhs = 0; lhs < 4; ++lhs) {
      for (int rhs = 0; rhs < 4; ++rhs) {
        for (ArithOp op : kOps) {
          ExprPtr expr = Arith(op, Col(lhs), Col(rhs));
          SetKernelTier(KernelTier::kScalar);
          ASSERT_OK_AND_ASSIGN(Column expect, expr->Evaluate(batch));
          for (KernelTier tier : SupportedTiers()) {
            SetKernelTier(tier);
            ASSERT_OK_AND_ASSIGN(Column got, expr->Evaluate(batch));
            ASSERT_EQ(got.type(), expect.type());
            ASSERT_EQ(got.length(), expect.length());
            EXPECT_EQ(std::memcmp(got.raw_data(), expect.raw_data(),
                                  static_cast<size_t>(got.MemoryBytes())),
                      0)
                << KernelTierName(tier) << " lhs=" << lhs << " rhs=" << rhs;
          }
        }
      }
    }
  }
}

// --- aggregate kernels -------------------------------------------------------

TEST(KernelAggregateTest, BulkAccumulationBitIdenticalToScalar) {
  TierGuard guard;
  Rng rng(13);
  const AggKind kKinds[] = {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                            AggKind::kMin, AggKind::kMax};
  const DataType kTypes[] = {DataType::kInt32, DataType::kInt64,
                             DataType::kFloat32, DataType::kFloat64};
  for (int round = 0; round < 30; ++round) {
    const int64_t n = rng.NextInt64(0, 500);
    for (DataType type : kTypes) {
      Column col(type);
      for (int64_t i = 0; i < n; ++i) {
        switch (type) {
          case DataType::kInt32:
            col.Append<int32_t>(rng.NextInt32(-1000, 1000));
            break;
          case DataType::kInt64:
            col.Append<int64_t>(rng.NextInt64(-100000, 100000));
            break;
          case DataType::kFloat32:
            col.Append<float>(static_cast<float>(rng.NextDouble(-100, 100)));
            break;
          default:
            col.Append<double>(rng.NextDouble(-100, 100));
            break;
        }
      }
      SelectionVector sel;
      for (int64_t i = 0; i < n; ++i) {
        if (rng.NextBool()) sel.Append(static_cast<int32_t>(i));
      }
      for (AggKind kind : kKinds) {
        SetKernelTier(KernelTier::kScalar);
        AggAccumulator ref_dense(kind, type);
        AggAccumulator ref_sel(kind, type);
        ASSERT_OK(ref_dense.UpdateBatch(col, nullptr, n));
        ASSERT_OK(ref_sel.UpdateBatch(col, sel.data(), sel.size()));
        for (KernelTier tier : SupportedTiers()) {
          SetKernelTier(tier);
          AggAccumulator got_dense(kind, type);
          AggAccumulator got_sel(kind, type);
          ASSERT_OK(got_dense.UpdateBatch(col, nullptr, n));
          ASSERT_OK(got_sel.UpdateBatch(col, sel.data(), sel.size()));
          EXPECT_EQ(got_dense.count(), ref_dense.count());
          EXPECT_TRUE(got_dense.Finalize() == ref_dense.Finalize())
              << KernelTierName(tier) << " kind=" << AggKindToString(kind)
              << " type=" << DataTypeToString(type);
          EXPECT_TRUE(got_sel.Finalize() == ref_sel.Finalize())
              << KernelTierName(tier) << " kind=" << AggKindToString(kind)
              << " (selection)";
          // Merge must also agree after bulk accumulation.
          AggAccumulator merged(kind, type);
          merged.Merge(got_dense);
          merged.Merge(got_sel);
          AggAccumulator ref_merged(kind, type);
          ref_merged.Merge(ref_dense);
          ref_merged.Merge(ref_sel);
          EXPECT_TRUE(merged.Finalize() == ref_merged.Finalize())
              << KernelTierName(tier) << " merge";
        }
      }
    }
  }
}

// --- engine-level determinism ------------------------------------------------

class KernelEngineTest : public testing::TempDirTest {};

TEST_F(KernelEngineTest, QueriesIdenticalAcrossTiersAndThreadCounts) {
  TierGuard guard;
  Rng rng(99);
  const std::string path = Path("t.csv");
  {
    std::ofstream out(path);
    for (int r = 0; r < 2000; ++r) {
      out << rng.NextInt32(0, 1000) << "," << rng.NextInt64(0, 100000) << ","
          << rng.NextDouble(0, 100) << "," << rng.NextInt32(0, 5) << "\n";
    }
  }
  Schema schema{{"c0", DataType::kInt32},
                {"c1", DataType::kInt64},
                {"c2", DataType::kFloat64},
                {"c3", DataType::kInt32}};
  const std::vector<std::string> queries = {
      "SELECT MAX(c1) FROM t WHERE c0 < 500",
      "SELECT COUNT(*), SUM(c2), MIN(c0) FROM t WHERE c2 < 75.0",
      "SELECT c3, SUM(c1), AVG(c2) FROM t WHERE c0 < 800 GROUP BY c3",
  };
  // Reference: scalar tier, serial.
  std::vector<std::string> expect;
  {
    SetKernelTier(KernelTier::kScalar);
    RawEngine engine;
    ASSERT_OK(engine.RegisterCsv("t", path, schema, CsvOptions(), 1));
    PlannerOptions options;
    options.num_threads = 1;
    for (const std::string& sql : queries) {
      ASSERT_OK_AND_ASSIGN(QueryResult result, engine.Query(sql, options));
      EXPECT_NE(result.plan_description.find("[kernels=scalar]"),
                std::string::npos)
          << result.plan_description;
      expect.push_back(result.table.ToString(1 << 20));
    }
  }
  for (KernelTier tier : SupportedTiers()) {
    for (int threads : {1, 2, 4}) {
      SetKernelTier(tier);
      RawEngine engine;
      ASSERT_OK(engine.RegisterCsv("t", path, schema, CsvOptions(), 1));
      PlannerOptions options;
      options.num_threads = threads;
      for (size_t q = 0; q < queries.size(); ++q) {
        // Cold + warm (second run uses the positional map / shred cache).
        for (int run = 0; run < 2; ++run) {
          ASSERT_OK_AND_ASSIGN(QueryResult result,
                               engine.Query(queries[q], options));
          EXPECT_NE(result.plan_description.find(
                        "[kernels=" + std::string(KernelTierName(tier)) + "]"),
                    std::string::npos)
              << result.plan_description;
          EXPECT_EQ(result.table.ToString(1 << 20), expect[q])
              << KernelTierName(tier) << " threads=" << threads << " run "
              << run;
        }
      }
    }
  }
}

}  // namespace
}  // namespace raw
