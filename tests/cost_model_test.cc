#include <gtest/gtest.h>

#include "engine/cost_model.h"
#include "engine/raw_engine.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

ShredDecisionInput CsvInput(double selectivity, int skip = 0) {
  ShredDecisionInput in;
  in.format = FileFormat::kCsv;
  in.table_rows = 1000000;
  in.selectivity = selectivity;
  in.skip_distance = skip;
  return in;
}

TEST(CostModelTest, FullColumnCostScalesWithRows) {
  CostModel model;
  ShredDecisionInput small = CsvInput(1.0);
  small.table_rows = 1000;
  ShredDecisionInput big = CsvInput(1.0);
  big.table_rows = 2000;
  EXPECT_DOUBLE_EQ(model.FullColumnCost(big),
                   2 * model.FullColumnCost(small));
}

TEST(CostModelTest, ShredCostScalesWithSelectivity) {
  CostModel model;
  EXPECT_LT(model.ShredCost(CsvInput(0.1)), model.ShredCost(CsvInput(0.5)));
  EXPECT_DOUBLE_EQ(model.ShredCost(CsvInput(0.0)), 0.0);
}

TEST(CostModelTest, ShredsWinAtLowSelectivityOnly) {
  CostModel model;
  EXPECT_EQ(model.ChoosePolicy(CsvInput(0.01)), ShredPolicy::kShreds);
  // A jump + parse costs more per value than sequential parse, so at 100%
  // selectivity full columns must win.
  EXPECT_EQ(model.ChoosePolicy(CsvInput(1.0)), ShredPolicy::kFullColumns);
}

TEST(CostModelTest, CrossoverIsMonotoneInSkipDistance) {
  CostModel model;
  // The further the incremental parse, the earlier shreds stop paying off.
  double near = model.ShredCrossover(CsvInput(0.5, /*skip=*/0));
  double far = model.ShredCrossover(CsvInput(0.5, /*skip=*/8));
  EXPECT_GT(near, far);
  EXPECT_GT(near, 0.0);
  EXPECT_LE(near, 1.0);
}

TEST(CostModelTest, CrossoverConsistentWithChoice) {
  CostModel model;
  for (int skip : {0, 2, 5}) {
    double crossover = model.ShredCrossover(CsvInput(0.5, skip));
    EXPECT_EQ(model.ChoosePolicy(CsvInput(crossover * 0.9, skip)),
              ShredPolicy::kShreds)
        << skip;
    if (crossover < 1.0) {
      EXPECT_EQ(model.ChoosePolicy(CsvInput(
                    std::min(1.0, crossover * 1.1 + 0.01), skip)),
                ShredPolicy::kFullColumns)
          << skip;
    }
  }
}

TEST(CostModelTest, MultiColumnWinsWithColocatedColumns) {
  CostModel model;
  ShredDecisionInput in = CsvInput(0.6, /*skip=*/4);
  in.colocated_columns = 3;
  // One pass for three adjacent columns beats three jump+skip chains.
  EXPECT_LT(model.MultiColumnShredCost(in), 3 * model.ShredCost(in));
  ShredPolicy choice = model.ChoosePolicy(in);
  EXPECT_NE(choice, ShredPolicy::kShreds);
}

TEST(CostModelTest, RandomOrderPenalizesShreds) {
  CostModel model;
  ShredDecisionInput seq = CsvInput(0.6);
  ShredDecisionInput random = CsvInput(0.6);
  random.random_order = true;
  EXPECT_GT(model.ShredCost(random), model.ShredCost(seq));
}

TEST(CostModelTest, BinaryShredsCheapNoConversion) {
  CostModel model;
  ShredDecisionInput in;
  in.format = FileFormat::kBinary;
  in.table_rows = 1000000;
  in.selectivity = 0.5;
  EXPECT_LT(model.ShredCost(in), model.FullColumnCost(in));
}

// --- engine integration --------------------------------------------------------

class AdaptivePolicyTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    spec_ = TableSpec::UniformInt32("t", 12, 4000, 123);
    ASSERT_OK(WriteCsvFile(spec_, Path("t.csv")));
  }

  TableSpec spec_;
};

TEST_F(AdaptivePolicyTest, ResolvesToShredsAtLowSelectivity) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("t", Path("t.csv"), spec_.ToSchema(),
                               CsvOptions(), 4));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kAdaptive;
  // Query 1 caches col0 and discovers the row count.
  ASSERT_OK(
      engine.Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999", options)
          .status());
  // Low-selectivity second query: the cached col0 yields an exact estimate
  // and the model must push the col7 fetch above the filter.
  Datum lo = spec_.SelectivityLiteral(0, 0.02);
  ASSERT_OK_AND_ASSIGN(
      QueryResult low,
      engine.Query("SELECT MAX(col7) FROM t WHERE col0 < " + lo.ToString(),
                   options));
  EXPECT_NE(low.plan_description.find("-> shreds"), std::string::npos)
      << low.plan_description;
  EXPECT_NE(low.plan_description.find("cache-estimated"), std::string::npos);
}

TEST_F(AdaptivePolicyTest, ResolvesToFullColumnsAtHighSelectivity) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("t", Path("t.csv"), spec_.ToSchema(),
                               CsvOptions(), 4));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kAdaptive;
  ASSERT_OK(
      engine.Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999", options)
          .status());
  ASSERT_OK_AND_ASSIGN(
      QueryResult high,
      engine.Query("SELECT MAX(col7) FROM t WHERE col0 < 999999999", options));
  EXPECT_NE(high.plan_description.find("-> full_columns"), std::string::npos)
      << high.plan_description;
}

TEST_F(AdaptivePolicyTest, AdaptiveAnswersMatchFixedPolicies) {
  TableDataSource source(spec_);
  for (double sel : {0.05, 0.5, 0.95}) {
    Datum lit = spec_.SelectivityLiteral(0, sel);
    std::string sql =
        "SELECT MAX(col7) FROM t WHERE col0 < " + lit.ToString();
    std::optional<Datum> reference;
    for (ShredPolicy policy :
         {ShredPolicy::kFullColumns, ShredPolicy::kShreds,
          ShredPolicy::kAdaptive}) {
      RawEngine engine;
      ASSERT_OK(engine.RegisterCsv("t", Path("t.csv"), spec_.ToSchema(),
                                   CsvOptions(), 4));
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.shred_policy = policy;
      ASSERT_OK(engine
                    .Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999",
                           options)
                    .status());
      ASSERT_OK_AND_ASSIGN(QueryResult result, engine.Query(sql, options));
      ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
      if (!reference.has_value()) {
        reference = got;
      } else {
        EXPECT_EQ(got, *reference) << ShredPolicyToString(policy) << " " << sel;
      }
    }
  }
}

TEST_F(AdaptivePolicyTest, FirstQueryDefaultsToShreds) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("t", Path("t.csv"), spec_.ToSchema(),
                               CsvOptions(), 4));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kAdaptive;
  ASSERT_OK_AND_ASSIGN(
      QueryResult first,
      engine.Query("SELECT MAX(col7) FROM t WHERE col0 < 500000000",
                   options));
  EXPECT_NE(first.plan_description.find("no stats -> shreds"),
            std::string::npos)
      << first.plan_description;
}

}  // namespace
}  // namespace raw
