// Hostile-input hardening suite: the deterministic I/O fault-injection
// harness, the fault matrix (fault kind × format driver × thread count —
// every injected fault must surface as a typed Status, never a crash or a
// silent wrong answer), malformed-row policies (skip / null-fill) checked
// against ground truth at 1 and 4 threads, staleness regressions
// (truncate-under-warm-pmap, mutate-under-claim), and the serving tier's
// typed-error / retry-reconnect behaviour.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/mmap_file.h"
#include "common/scan_health.h"
#include "csv/positional_map.h"
#include "engine/catalog.h"
#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "scan/insitu_csv_scan.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stats_json.h"
#include "serve/wire.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector: spec grammar and firing semantics
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ParseSpecAcceptsTheDocumentedGrammar) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultInjector::ParseSpec("eio", &spec, &error)) << error;
  EXPECT_EQ(FaultKind::kEio, spec.kind);
  EXPECT_TRUE(spec.path_substr.empty());

  ASSERT_TRUE(FaultInjector::ParseSpec(
      "truncate:path=lineitem.csv,offset=4096,nth=2,max=3", &spec, &error))
      << error;
  EXPECT_EQ(FaultKind::kTruncate, spec.kind);
  EXPECT_EQ("lineitem.csv", spec.path_substr);
  EXPECT_EQ(4096, spec.offset);
  EXPECT_EQ(2, spec.nth);
  EXPECT_EQ(3, spec.max_fires);

  ASSERT_TRUE(
      FaultInjector::ParseSpec("bitflip:sample=0.25,seed=7", &spec, &error))
      << error;
  EXPECT_EQ(FaultKind::kBitFlip, spec.kind);
  EXPECT_DOUBLE_EQ(0.25, spec.sample);
  EXPECT_EQ(7u, spec.seed);

  ASSERT_TRUE(FaultInjector::ParseSpec("short", &spec, &error)) << error;
  EXPECT_EQ(FaultKind::kShortRead, spec.kind);
}

TEST(FaultInjectorTest, ParseSpecRejectsMalformedInput) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(FaultInjector::ParseSpec("gremlins", &spec, &error));
  EXPECT_FALSE(FaultInjector::ParseSpec("eio:bogus=1", &spec, &error));
  EXPECT_FALSE(FaultInjector::ParseSpec("eio:nth", &spec, &error));
  EXPECT_FALSE(FaultInjector::ParseSpec("eio:nth=0", &spec, &error));
  EXPECT_FALSE(FaultInjector::ParseSpec("eio:offset=-4", &spec, &error));
  EXPECT_FALSE(FaultInjector::ParseSpec("truncate:sample=2", &spec, &error));
  EXPECT_FALSE(FaultInjector::ParseSpec("truncate:sample=x", &spec, &error));
}

TEST(FaultInjectorTest, CheckMatchesPathCountsNthAndCapsFires) {
  auto& injector = FaultInjector::Global();
  const int64_t fired_before = injector.fired();
  FaultSpec spec;
  spec.kind = FaultKind::kEio;
  spec.path_substr = "alpha";
  spec.nth = 2;
  spec.max_fires = 1;
  injector.Arm(spec);
  int64_t off = 0;
  EXPECT_EQ(FaultKind::kNone, injector.Check("beta.csv", 100, &off));
  EXPECT_EQ(FaultKind::kNone, injector.Check("alpha.csv", 100, &off));
  EXPECT_EQ(FaultKind::kEio, injector.Check("alpha.csv", 100, &off));
  // max=1: eligible again but the fire budget is spent.
  EXPECT_EQ(FaultKind::kNone, injector.Check("alpha.csv", 100, &off));
  EXPECT_EQ(fired_before + 1, injector.fired());
  injector.Disarm();
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(FaultKind::kNone, injector.Check("alpha.csv", 100, &off));
}

TEST(FaultInjectorTest, OffsetDefaultsToMidpointAndClampsToSize) {
  auto& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.kind = FaultKind::kTruncate;
  injector.Arm(spec);
  int64_t off = -1;
  EXPECT_EQ(FaultKind::kTruncate, injector.Check("f", 100, &off));
  EXPECT_EQ(50, off);
  spec.offset = 5000;
  injector.Arm(spec);
  EXPECT_EQ(FaultKind::kTruncate, injector.Check("f", 100, &off));
  EXPECT_EQ(99, off);
  injector.Disarm();
}

TEST(FaultInjectorTest, ZeroSampleNeverFires) {
  auto& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.sample = 0.0;
  spec.seed = 1;
  injector.Arm(spec);
  int64_t off = 0;
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(FaultKind::kNone, injector.Check("f", 100, &off));
  }
  injector.Disarm();
}

// ---------------------------------------------------------------------------
// Fault matrix: every fault kind on every format driver is a typed error
// ---------------------------------------------------------------------------

class FaultMatrixTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    FaultInjector::Global().Disarm();
    spec_ = TableSpec::UniformInt32("mx", 6, 400, /*seed=*/5);
    ASSERT_OK(WriteCsvFile(spec_, Path("mx.csv")));
    ASSERT_OK(WriteBinaryFile(spec_, Path("mx.bin")));
    ASSERT_OK(WriteJsonlFile(spec_, Path("mx.jsonl")));
    ASSERT_OK(WriteCsvGzTable(spec_, Path("mgz.csv.gz"), /*block_bytes=*/2048));
    EventGenOptions ev;
    ev.num_events = 120;
    ASSERT_OK(WriteRefFile(Path("mx.ref"), ev, /*cluster_rows=*/32));
  }

  void TearDown() override { FaultInjector::Global().Disarm(); }

  /// Byte offset of the first digit at/after `anchor` in `path`'s contents
  /// (targets the fault at a byte a scan is guaranteed to interpret).
  int64_t DigitOffsetAfter(const std::string& path, const std::string& anchor,
                           int skip_commas = 0) {
    auto contents = ReadFileToString(path);
    EXPECT_OK(contents.status());
    size_t pos = contents->find(anchor);
    EXPECT_NE(std::string::npos, pos) << anchor << " not in " << path;
    pos += anchor.size();
    for (int c = 0; c < skip_commas; ++c) {
      pos = contents->find(',', pos);
      EXPECT_NE(std::string::npos, pos);
      ++pos;
    }
    while (pos < contents->size() && !std::isdigit((*contents)[pos])) ++pos;
    return static_cast<int64_t>(pos);
  }

  /// Offset `back` bytes before EOF (targets a gzip member's CRC trailer).
  int64_t TailOffset(const std::string& path, int64_t back) {
    auto size = FileSize(path);
    EXPECT_OK(size.status());
    return static_cast<int64_t>(*size) - back;
  }

  /// Offset cutting a file a few bytes into its second row/line.
  int64_t MidSecondRowOffset(const std::string& path, int64_t extra) {
    auto contents = ReadFileToString(path);
    EXPECT_OK(contents.status());
    size_t nl = contents->find('\n');
    EXPECT_NE(std::string::npos, nl);
    return static_cast<int64_t>(nl) + extra;
  }

  TableSpec spec_;
};

TEST_F(FaultMatrixTest, EveryFaultKindOnEveryDriverYieldsATypedError) {
  struct Case {
    const char* label;
    FaultKind kind;
    const char* file;      // path substring the fault matches
    int64_t offset;        // -1 = injector default
    bool fails_at_register;  // REF opens its file at registration
  };
  const std::string csv = Path("mx.csv");
  const std::string bin = Path("mx.bin");
  const std::string jsonl = Path("mx.jsonl");
  const std::string gz = Path("mgz.csv.gz");
  const std::string ref = Path("mx.ref");
  const std::vector<Case> cases = {
      {"csv/eio", FaultKind::kEio, "mx.csv", -1, false},
      {"bin/eio", FaultKind::kEio, "mx.bin", -1, false},
      {"jsonl/eio", FaultKind::kEio, "mx.jsonl", -1, false},
      {"gz/eio", FaultKind::kEio, "mgz.csv.gz", -1, false},
      {"ref/eio", FaultKind::kEio, "mx.ref", -1, true},
      // Truncation offsets are aimed mid-row / mid-record so the cut is
      // structurally visible (a cut exactly on a row boundary is a valid
      // shorter file — CSV cannot distinguish that from intent).
      {"csv/truncate", FaultKind::kTruncate, "mx.csv",
       MidSecondRowOffset(csv, 3), false},
      {"bin/truncate", FaultKind::kTruncate, "mx.bin", 13, false},
      {"jsonl/truncate", FaultKind::kTruncate, "mx.jsonl",
       MidSecondRowOffset(jsonl, 5), false},
      {"gz/truncate", FaultKind::kTruncate, "mgz.csv.gz", TailOffset(gz, 7),
       false},
      {"ref/truncate", FaultKind::kTruncate, "mx.ref", -1, true},
      // Bit flips target a byte the query interprets: a digit of a scanned
      // column (XOR 0x40 turns digits into letters), the compressed stream
      // (CRC/inflate failure), the REF magic. Fixed-width binary data has no
      // redundancy to detect a flipped payload bit — excluded by design.
      {"csv/bitflip", FaultKind::kBitFlip, "mx.csv",
       DigitOffsetAfter(csv, "", /*skip_commas=*/5), false},
      {"jsonl/bitflip", FaultKind::kBitFlip, "mx.jsonl",
       DigitOffsetAfter(jsonl, "\"col5\":"), false},
      {"gz/bitflip", FaultKind::kBitFlip, "mgz.csv.gz", -1, false},
      {"ref/bitflip", FaultKind::kBitFlip, "mx.ref", 0, true},
  };

  auto& injector = FaultInjector::Global();
  for (const Case& c : cases) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(c.label) + " x" + std::to_string(threads));
      FaultSpec spec;
      spec.kind = c.kind;
      spec.path_substr = c.file;
      spec.offset = c.offset;
      injector.Arm(spec);
      const int64_t fired_before = injector.fired();

      RawEngine engine;
      Status failure;
      std::string sql = "SELECT MAX(col5) FROM t WHERE col1 < 900000000";
      if (std::strstr(c.file, ".ref") != nullptr) {
        failure = engine.RegisterRef("ev", Path("mx.ref"));
        sql = "SELECT COUNT(*) FROM ev_events";
      } else if (std::strstr(c.file, ".bin") != nullptr) {
        ASSERT_OK(engine.RegisterBinary("t", bin, spec_.ToSchema()));
      } else if (std::strstr(c.file, ".jsonl") != nullptr) {
        ASSERT_OK(engine.RegisterJsonl("t", jsonl, spec_.ToSchema()));
      } else if (std::strstr(c.file, ".csv.gz") != nullptr) {
        ASSERT_OK(engine.RegisterCsvGz("t", gz, spec_.ToSchema()));
      } else {
        ASSERT_OK(engine.RegisterCsv("t", csv, spec_.ToSchema()));
      }

      if (failure.ok()) {
        PlannerOptions options;
        options.access_path = AccessPathKind::kInSitu;
        options.num_threads = threads;
        auto result = engine.Query(sql, options);
        failure = result.status();
      } else {
        EXPECT_TRUE(c.fails_at_register);
      }
      injector.Disarm();

      ASSERT_FALSE(failure.ok()) << "fault was swallowed";
      EXPECT_TRUE(failure.code() == StatusCode::kIOError ||
                  failure.code() == StatusCode::kParseError ||
                  failure.code() == StatusCode::kDataCorruption)
          << failure.ToString();
      EXPECT_GT(injector.fired(), fired_before) << "fault never fired";
      EXPECT_GT(engine.Stats().faults_injected, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Malformed-row policies: deterministic, thread-count-invariant
// ---------------------------------------------------------------------------

class MalformedRowTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    FaultInjector::Global().Disarm();
  }

  static int64_t Scalar(RawEngine& engine, const std::string& sql,
                        const PlannerOptions& options) {
    auto result = engine.Query(sql, options);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    if (!result.ok()) return INT64_MIN;
    auto datum = result->Scalar();
    EXPECT_TRUE(datum.ok()) << sql;
    return datum.ok() ? *datum->AsInt64() : INT64_MIN;
  }
};

TEST_F(MalformedRowTest, CsvSkipAndNullFillMatchGroundTruthAtAnyThreadCount) {
  // 240 rows of 3 int columns; every 40th row carries a non-numeric col2.
  std::string text;
  int64_t good_sum = 0;
  int64_t bad_rows = 0;
  for (int i = 0; i < 240; ++i) {
    const bool bad = i % 40 == 20;
    text += std::to_string(i) + "," + std::to_string(i % 7) + ",";
    if (bad) {
      text += "oops\n";
      ++bad_rows;
    } else {
      text += std::to_string(3 * i) + "\n";
      good_sum += 3 * i;
    }
  }
  ASSERT_OK(WriteStringToFile(Path("m.csv"), text));
  const Schema schema{{"col0", DataType::kInt32},
                      {"col1", DataType::kInt32},
                      {"col2", DataType::kInt32}};

  // Strict default: the malformed value is a typed parse error.
  {
    RawEngine engine;
    ASSERT_OK(engine.RegisterCsv("t", Path("m.csv"), schema));
    PlannerOptions strict;
    strict.access_path = AccessPathKind::kInSitu;
    auto result =
        engine.Query("SELECT SUM(col2) FROM t WHERE col1 < 7", strict);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(StatusCode::kParseError, result.status().code());
  }

  for (auto policy :
       {MalformedRowPolicy::kSkip, MalformedRowPolicy::kNullFill}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(MalformedRowPolicyToString(policy)) + " x" +
                   std::to_string(threads));
      RawEngine engine;
      ASSERT_OK(engine.RegisterCsv("t", Path("m.csv"), schema));
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.num_threads = threads;
      options.malformed_row_policy = policy;

      // Both policies exclude the damaged values from the sum (skip drops
      // the rows; null-fill zeroes them).
      EXPECT_EQ(good_sum,
                Scalar(engine, "SELECT SUM(col2) FROM t WHERE col1 < 7",
                       options));
      // Skip drops the rows from COUNT; null-fill keeps them (col2 = 0
      // still satisfies the predicate).
      const int64_t expected_count =
          policy == MalformedRowPolicy::kSkip ? 240 - bad_rows : 240;
      EXPECT_EQ(expected_count,
                Scalar(engine,
                       "SELECT COUNT(*) FROM t WHERE col2 < 1000000000",
                       options));

      ASSERT_OK_AND_ASSIGN(
          QueryResult result,
          engine.Query("SELECT SUM(col2) FROM t WHERE col1 < 7", options));
      if (policy == MalformedRowPolicy::kSkip) {
        EXPECT_EQ(bad_rows, result.rows_skipped);
        EXPECT_EQ(0, result.rows_nulled);
        EXPECT_GT(engine.Stats().rows_skipped, 0);
      } else {
        EXPECT_EQ(bad_rows, result.rows_nulled);
        EXPECT_EQ(0, result.rows_skipped);
        EXPECT_GT(engine.Stats().rows_nulled, 0);
      }
      // Tolerant plans announce themselves and never run fused/JIT paths.
      EXPECT_NE(std::string::npos,
                result.plan_description.find("[malformed-rows="))
          << result.plan_description;
      EXPECT_EQ(0, engine.Stats().plans_fused);
    }
  }
}

TEST_F(MalformedRowTest, JsonlSkipAndNullFillSurviveStructuralDamage) {
  // 100 lines; every 20th is not JSON at all, plus one type-mismatched
  // value (valid JSON, non-numeric string in an int column).
  std::string text;
  int64_t good_sum = 0;
  int64_t bad_lines = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 20 == 10) {
      text += "{oops not json\n";
      ++bad_lines;
    } else if (i == 55) {
      text += "{\"a\": 55, \"b\": \"zap\"}\n";
      ++bad_lines;
    } else {
      text += "{\"a\": " + std::to_string(i) + ", \"b\": " +
              std::to_string(2 * i) + "}\n";
      good_sum += 2 * i;
    }
  }
  ASSERT_OK(WriteStringToFile(Path("m.jsonl"), text));
  const Schema schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}};

  {
    RawEngine engine;
    ASSERT_OK(engine.RegisterJsonl("t", Path("m.jsonl"), schema));
    PlannerOptions strict;
    strict.access_path = AccessPathKind::kInSitu;
    auto result = engine.Query("SELECT SUM(b) FROM t WHERE a < 1000", strict);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(StatusCode::kParseError, result.status().code());
  }

  for (auto policy :
       {MalformedRowPolicy::kSkip, MalformedRowPolicy::kNullFill}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(MalformedRowPolicyToString(policy)) + " x" +
                   std::to_string(threads));
      RawEngine engine;
      ASSERT_OK(engine.RegisterJsonl("t", Path("m.jsonl"), schema));
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.num_threads = threads;
      options.malformed_row_policy = policy;

      EXPECT_EQ(good_sum,
                Scalar(engine, "SELECT SUM(b) FROM t WHERE a < 1000",
                       options));
      const int64_t expected_count =
          policy == MalformedRowPolicy::kSkip ? 100 - bad_lines : 100;
      EXPECT_EQ(expected_count,
                Scalar(engine, "SELECT COUNT(*) FROM t WHERE b < 1000",
                       options));

      ASSERT_OK_AND_ASSIGN(
          QueryResult result,
          engine.Query("SELECT SUM(b) FROM t WHERE a < 1000", options));
      if (policy == MalformedRowPolicy::kSkip) {
        EXPECT_EQ(bad_lines, result.rows_skipped);
      } else {
        EXPECT_EQ(bad_lines, result.rows_nulled);
      }
    }
  }
}

TEST_F(MalformedRowTest, EngineStatsJsonCarriesTheRobustnessCounters) {
  std::string text = "1,2\n3,x\n5,6\n";
  ASSERT_OK(WriteStringToFile(Path("j.csv"), text));
  const Schema schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}};
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("t", Path("j.csv"), schema));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.malformed_row_policy = MalformedRowPolicy::kSkip;
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       engine.Query("SELECT SUM(b) FROM t WHERE b < 100",
                                    options));
  EXPECT_EQ(1, result.rows_skipped);
  const std::string json = serve::EngineStatsJson(engine.Stats());
  EXPECT_NE(std::string::npos, json.find("\"robustness\"")) << json;
  EXPECT_NE(std::string::npos, json.find("\"rows_skipped\":1")) << json;
}

TEST_F(MalformedRowTest, LimitOverflowIsATypedParseError) {
  ASSERT_OK(WriteStringToFile(Path("l.csv"), "1\n2\n3\n"));
  RawEngine engine;
  ASSERT_OK(
      engine.RegisterCsv("t", Path("l.csv"), Schema{{"a", DataType::kInt32}}));
  auto spec =
      engine.ParseSql("SELECT COUNT(*) FROM t LIMIT 99999999999999999999");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(StatusCode::kParseError, spec.status().code());
  EXPECT_NE(std::string::npos, spec.status().message().find("LIMIT"))
      << spec.status().ToString();
  ASSERT_OK_AND_ASSIGN(QueryResult ok,
                       engine.Query("SELECT COUNT(*) FROM t LIMIT 2"));
  (void)ok;
}

// ---------------------------------------------------------------------------
// Staleness regressions: maps must never outlive the bytes they index
// ---------------------------------------------------------------------------

class StalenessTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    FaultInjector::Global().Disarm();
  }
};

TEST_F(StalenessTest, PositionalMapBeyondEofIsATypedCorruptionError) {
  // A scan driven by a map whose offsets outlive the file must fail typed,
  // not read out of bounds (the exact state a mid-query truncation leaves).
  const std::string data = "11,22\n33,44\n";
  PositionalMap pmap = PositionalMap::TrackingColumns(2, {0});
  uint64_t pos0 = 0;
  pmap.AppendRow(0, &pos0);
  uint64_t pos1 = 6;
  pmap.AppendRow(6, &pos1);
  uint64_t beyond = 999;  // beyond the 12-byte file
  pmap.AppendRow(999, &beyond);

  ScanHealth health;
  CsvScanSpec spec;
  spec.file_schema = Schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}};
  spec.outputs = {0, 1};
  spec.use_pmap = &pmap;
  spec.anchor_column = 0;
  spec.health = &health;
  InsituCsvScanOperator op(data.data(), data.size(), spec);
  ASSERT_OK(op.Open());
  auto batch = op.Next();
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(StatusCode::kDataCorruption, batch.status().code());
  EXPECT_EQ(1, health.io_faults.load());
}

TEST_F(StalenessTest, TruncationUnderAWarmPmapIsDetectedNotCrashed) {
  TableSpec spec = TableSpec::UniformInt32("w", 6, 200, /*seed=*/9);
  const std::string path = Path("w.csv");
  ASSERT_OK(WriteCsvFile(spec, path));
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("t", path, spec.ToSchema()));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;

  const std::string sql = "SELECT MAX(col5) FROM t WHERE col1 < 900000000";
  ASSERT_OK(engine.Query(sql, options).status());
  ASSERT_OK_AND_ASSIGN(auto pmap, engine.PositionalMapSnapshot("t"));
  ASSERT_NE(nullptr, pmap) << "warm-up query did not publish a map";

  // Cut the file mid-row: the stale map is dropped (version bump) and the
  // rebuilding scan hits the ragged tail — a typed error either way.
  ASSERT_OK_AND_ASSIGN(std::string contents, ReadFileToString(path));
  const size_t cut = contents.find('\n', contents.size() / 2) + 3;
  ASSERT_EQ(0, ::truncate(path.c_str(), static_cast<off_t>(cut)));

  auto result = engine.Query(sql, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == StatusCode::kParseError ||
              result.status().code() == StatusCode::kDataCorruption)
      << result.status().ToString();
  ASSERT_OK_AND_ASSIGN(auto stale, engine.PositionalMapSnapshot("t"));
  EXPECT_EQ(nullptr, stale) << "stale map survived the truncation";
}

TEST_F(StalenessTest, PmapBuiltUnderAMutatedClaimIsDropped) {
  const std::string path = Path("c.csv");
  ASSERT_OK(WriteStringToFile(path, "1,2\n3,4\n"));
  const Schema schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}};
  Catalog catalog;
  ASSERT_OK(catalog.RegisterCsv("t", path, schema));
  ASSERT_OK_AND_ASSIGN(TableEntry * entry, catalog.Get("t"));
  ASSERT_OK(entry->EnsureOpen());

  // A scan claims the build, the file changes mid-claim, the scan finishes:
  // the publication must be refused — the map indexes the old bytes.
  ASSERT_TRUE(entry->TryClaimPmapBuild());
  ASSERT_OK(WriteStringToFile(path, "1,2\n3,4\n5,6\n7,8\n"));
  ASSERT_TRUE(entry->CheckStale());
  const uint64_t positions[2] = {0, 2};
  auto stale_map =
      std::make_shared<PositionalMap>(PositionalMap::WithStride(2, 10));
  stale_map->AppendRow(0, positions);
  entry->PublishPmap(stale_map);
  EXPECT_EQ(nullptr, entry->pmap()) << "stale-built map was published";

  // A claim over the current bytes publishes normally.
  ASSERT_OK(entry->EnsureOpen());
  ASSERT_TRUE(entry->TryClaimPmapBuild());
  auto fresh_map =
      std::make_shared<PositionalMap>(PositionalMap::WithStride(2, 10));
  fresh_map->AppendRow(0, positions);
  entry->PublishPmap(fresh_map);
  EXPECT_NE(nullptr, entry->pmap());
}

// ---------------------------------------------------------------------------
// Serving tier: typed errors over the wire, client retry/reconnect
// ---------------------------------------------------------------------------

TEST(WireRobustnessTest, AssemblerReportsAPartialFrame) {
  serve::PayloadWriter w;
  w.PutString("partial");
  std::vector<uint8_t> encoded = serve::EncodeFrame(
      serve::MessageType::kQuery, w.bytes());
  serve::FrameAssembler assembler;
  EXPECT_FALSE(assembler.has_partial_frame());
  ASSERT_OK(assembler.Feed(encoded.data(), encoded.size() - 3));
  EXPECT_TRUE(assembler.has_partial_frame());
  ASSERT_OK(assembler.Feed(encoded.data() + encoded.size() - 3, 3));
  serve::Frame frame;
  ASSERT_TRUE(assembler.Pop(&frame));
  EXPECT_FALSE(assembler.has_partial_frame());
}

class ServeFaultTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    FaultInjector::Global().Disarm();
    const std::string path = Path("srv.csv");
    std::string text;
    for (int i = 0; i < 500; ++i) {
      text += std::to_string(i) + "," + std::to_string(i % 13) + "\n";
    }
    ASSERT_OK(WriteStringToFile(path, text));
    const Schema schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}};
    ASSERT_OK(engine_.RegisterCsv("srv", path, schema));
    server_ = std::make_unique<serve::RawServer>(&engine_,
                                                 serve::ServerOptions());
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    FaultInjector::Global().Disarm();
    if (server_ != nullptr) server_->Shutdown();
  }

  RawEngine engine_;
  std::unique_ptr<serve::RawServer> server_;
};

TEST_F(ServeFaultTest, ScanFaultsBecomeTypedErrorFramesNotDrops) {
  // An injected open fault fails the query with a typed error frame; the
  // connection survives and the next query (fault disarmed) succeeds.
  FaultSpec spec;
  spec.kind = FaultKind::kEio;
  spec.path_substr = "srv.csv";
  FaultInjector::Global().Arm(spec);

  ASSERT_OK_AND_ASSIGN(auto client,
                       serve::RawClient::Connect("127.0.0.1",
                                                 server_->port()));
  ASSERT_OK(client->Hello());
  ASSERT_OK_AND_ASSIGN(serve::QueryResponse resp,
                       client->Query("SELECT SUM(b) FROM srv WHERE a < 400"));
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(StatusCode::kIOError, resp.status.code()) << resp.status.ToString();

  FaultInjector::Global().Disarm();
  ASSERT_OK_AND_ASSIGN(serve::QueryResponse again,
                       client->Query("SELECT COUNT(*) FROM srv WHERE a < 400"));
  ASSERT_OK(again.status);
  ASSERT_OK(client->Goodbye());
}

TEST_F(ServeFaultTest, QueryRetriesTransparentlyAcrossAKilledConnection) {
  serve::RawClientOptions options;
  options.max_retries = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 4;
  ASSERT_OK_AND_ASSIGN(
      auto client,
      serve::RawClient::Connect("127.0.0.1", server_->port(), options));
  ASSERT_OK(client->Hello());
  ASSERT_OK_AND_ASSIGN(serve::QueryResponse first,
                       client->Query("SELECT COUNT(*) FROM srv WHERE a < 100"));
  ASSERT_OK(first.status);

  // Kill the transport under the client; the next Query must reconnect
  // (replaying Hello) and answer as if nothing happened.
  client->Close();
  ASSERT_OK_AND_ASSIGN(serve::QueryResponse second,
                       client->Query("SELECT COUNT(*) FROM srv WHERE a < 100"));
  ASSERT_OK(second.status);
  EXPECT_EQ(1, client->reconnects());
  EXPECT_EQ(1, client->retries());
  ASSERT_OK(client->Goodbye());
}

TEST_F(ServeFaultTest, CorruptFrameGetsATypedProtocolErrorBeforeTheClose) {
  // Hand-rolled socket: Hello, then a frame header promising an absurd
  // payload. The server must answer with a typed PROTOCOL_ERROR frame
  // before dropping the connection (not just vanish).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)));

  serve::PayloadWriter hello;
  hello.PutU8(0);  // interactive
  std::vector<uint8_t> bytes =
      serve::EncodeFrame(serve::MessageType::kHello, hello.bytes());
  ASSERT_EQ(static_cast<ssize_t>(bytes.size()),
            ::send(fd, bytes.data(), bytes.size(), 0));

  // type byte + little-endian u32 length far beyond kMaxPayloadBytes.
  const uint8_t corrupt[5] = {2, 0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(static_cast<ssize_t>(sizeof(corrupt)),
            ::send(fd, corrupt, sizeof(corrupt), 0));

  serve::FrameAssembler assembler;
  bool got_error = false;
  bool closed = false;
  uint8_t buf[512];
  for (int i = 0; i < 200 && !closed; ++i) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    ASSERT_OK(assembler.Feed(buf, static_cast<size_t>(n)));
    serve::Frame frame;
    while (assembler.Pop(&frame)) {
      if (frame.type == serve::MessageType::kHelloOk) continue;
      ASSERT_EQ(serve::MessageType::kError, frame.type);
      serve::PayloadReader reader(frame.payload);
      ASSERT_OK(reader.U64().status());  // request id (0: no request)
      ASSERT_OK_AND_ASSIGN(uint32_t code, reader.U32());
      EXPECT_EQ(static_cast<uint32_t>(StatusCode::kProtocolError), code);
      got_error = true;
    }
  }
  EXPECT_TRUE(got_error) << "connection dropped without a typed error";
  EXPECT_TRUE(closed) << "server kept a corrupt-frame peer alive";
  ::close(fd);
}

}  // namespace
}  // namespace raw
