// The headline proof of the session-oriented API: one shared RawEngine
// serving many concurrent sessions — mixed cold/warm CSV, binary and JIT
// queries — with every per-query result identical to serial execution, warm
// cache hits shared across sessions, ResetAdaptiveState() safe against
// in-flight sessions, and prepared statements skipping re-parse/re-bind.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

class ConcurrentSessionsTest : public testing::TempDirTest {
 protected:
  static constexpr int kNumSessions = 4;
  static constexpr int64_t kRows = 3000;

  void SetUp() override {
    testing::TempDirTest::SetUp();
    spec_ = TableSpec::UniformInt32("t", 12, kRows, /*seed=*/77);
    spec_.columns[7].type = DataType::kFloat64;
    spec_.columns[11].max_value = 16;  // group-by friendly cardinality
    ASSERT_OK(WriteCsvFile(spec_, Path("t.csv")));
    ASSERT_OK(WriteBinaryFile(spec_, Path("t.bin")));
  }

  std::unique_ptr<RawEngine> NewEngine() {
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterCsv("t_csv", Path("t.csv"), spec_.ToSchema(),
                                  CsvOptions(), /*pmap_stride=*/4));
    EXPECT_OK(engine->RegisterBinary("t_bin", Path("t.bin"), spec_.ToSchema()));
    return engine;
  }

  /// The per-session workload: distinct queries per session id, spanning
  /// CSV + binary tables, selections, multi-aggregates and a group-by.
  std::vector<std::string> SessionQueries(int session) const {
    int agg = session % 6;           // col0..col5
    int64_t lit = 150000000ll * (session + 2);
    std::vector<std::string> queries;
    queries.push_back("SELECT MAX(col" + std::to_string(agg) +
                      ") FROM t_csv WHERE col1 < " + std::to_string(lit));
    queries.push_back("SELECT COUNT(*) FROM t_bin WHERE col2 < " +
                      std::to_string(lit));
    queries.push_back("SELECT MIN(col" + std::to_string(agg + 2) +
                      "), MAX(col7) FROM t_csv WHERE col3 < " +
                      std::to_string(lit));
    queries.push_back("SELECT col11, COUNT(*) FROM t_csv WHERE col0 < " +
                      std::to_string(lit) + " GROUP BY col11");
    return queries;
  }

  /// Serial ground truth: a fresh engine runs every query twice (cold, then
  /// warm) on one thread; keyed by query text.
  std::map<std::string, std::string> SerialResults(
      const PlannerOptions& options) {
    auto engine = NewEngine();
    auto session = engine->OpenSession(options);
    std::map<std::string, std::string> results;
    for (int s = 0; s < kNumSessions; ++s) {
      for (const std::string& sql : SessionQueries(s)) {
        for (int round = 0; round < 2; ++round) {
          auto result = session->Query(sql);
          EXPECT_TRUE(result.ok()) << sql << ": "
                                   << result.status().ToString();
          if (!result.ok()) continue;
          std::string table = result->table.ToString(10000);
          auto [it, inserted] = results.emplace(sql, table);
          EXPECT_EQ(it->second, table) << "cold/warm mismatch for " << sql;
        }
      }
    }
    return results;
  }

  /// Runs the whole workload concurrently against one shared engine (every
  /// session on its own thread, cold + warm rounds) and checks each result
  /// against the serial reference.
  void RunConcurrent(RawEngine* engine, const PlannerOptions& options,
                     const std::map<std::string, std::string>& expected) {
    struct Outcome {
      std::string sql;
      std::string error;   // empty = ok
      std::string table;
    };
    std::vector<std::vector<Outcome>> outcomes(kNumSessions);
    std::vector<std::thread> threads;
    for (int s = 0; s < kNumSessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = engine->OpenSession(options);
        for (int round = 0; round < 2; ++round) {
          for (const std::string& sql : SessionQueries(s)) {
            Outcome outcome;
            outcome.sql = sql;
            auto result = session->Query(sql);
            if (!result.ok()) {
              outcome.error = result.status().ToString();
            } else {
              outcome.table = result->table.ToString(10000);
            }
            outcomes[static_cast<size_t>(s)].push_back(std::move(outcome));
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const auto& session_outcomes : outcomes) {
      for (const Outcome& outcome : session_outcomes) {
        ASSERT_EQ(outcome.error, "") << outcome.sql;
        auto it = expected.find(outcome.sql);
        ASSERT_NE(it, expected.end()) << outcome.sql;
        EXPECT_EQ(outcome.table, it->second)
            << "concurrent result diverged from serial for " << outcome.sql;
      }
    }
  }

  TableSpec spec_;
};

TEST_F(ConcurrentSessionsTest, InSituSessionsMatchSerial) {
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  std::map<std::string, std::string> expected = SerialResults(options);
  auto engine = NewEngine();
  RunConcurrent(engine.get(), options, expected);
  // Warm adaptive state is shared: the map is published once and the shred
  // pool took hits from the warm rounds across sessions.
  EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.table("t_csv")->pmap_rows, kRows);
  EXPECT_GT(stats.shred_cache.hits, 0);
  EXPECT_GE(stats.sessions_opened, kNumSessions);
}

TEST_F(ConcurrentSessionsTest, JitSessionsMatchSerial) {
  {
    RawEngine probe;
    if (!probe.Stats().jit_compiler_available()) {
      GTEST_SKIP() << "no external compiler";
    }
  }
  PlannerOptions options;
  options.access_path = AccessPathKind::kJit;
  std::map<std::string, std::string> expected = SerialResults(options);
  auto engine = NewEngine();
  RunConcurrent(engine.get(), options, expected);
  // Concurrent sessions shared one template cache: distinct access paths
  // compiled once each, repeats were hits.
  EngineStats stats = engine->Stats();
  EXPECT_GT(stats.jit_cache.hits, 0);
}

TEST_F(ConcurrentSessionsTest, ResetAdaptiveStateDuringInflightSessions) {
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  std::map<std::string, std::string> expected = SerialResults(options);
  auto engine = NewEngine();

  std::vector<std::vector<std::string>> errors(kNumSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kNumSessions; ++s) {
    threads.emplace_back([&, s] {
      auto session = engine->OpenSession(options);
      std::vector<std::string> queries = SessionQueries(s);
      for (int round = 0; round < 6; ++round) {
        for (const std::string& sql : queries) {
          auto result = session->Query(sql);
          if (!result.ok()) {
            errors[static_cast<size_t>(s)].push_back(
                sql + ": " + result.status().ToString());
            continue;
          }
          std::string table = result->table.ToString(10000);
          if (table != expected.at(sql)) {
            errors[static_cast<size_t>(s)].push_back("result diverged: " +
                                                     sql);
          }
        }
      }
    });
  }
  // Keep yanking the adaptive state away while queries are in flight:
  // running plans hold immutable snapshots, so nothing breaks.
  for (int i = 0; i < 20; ++i) {
    engine->ResetAdaptiveState();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& t : threads) t.join();
  for (const auto& session_errors : errors) {
    EXPECT_EQ(session_errors, std::vector<std::string>());
  }
  // The engine still works and rebuilds its adaptive state afterwards.
  auto session = engine->OpenSession(options);
  ASSERT_OK(session->Query("SELECT COUNT(*) FROM t_csv WHERE col0 >= 0")
                .status());
}

// REF was the last access path barred from concurrent sessions (the old
// buffer pool mutated LRU state un-locked). With the sharded, pinning pool
// any number of sessions may hammer the same REF file — cold and warm, event
// and particle tables — and every result must match serial execution.
class ConcurrentRefSessionsTest : public ConcurrentSessionsTest {
 protected:
  void SetUp() override {
    ConcurrentSessionsTest::SetUp();
    EventGenOptions options;
    options.num_events = 2000;
    ASSERT_OK(WriteRefFile(Path("e.ref"), options, /*cluster_events=*/128));
  }

  std::unique_ptr<RawEngine> NewRefEngine() {
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterRef("a", Path("e.ref")));
    return engine;
  }

  /// Distinct per-session REF workload: event + particle tables, filters,
  /// aggregates, group-by, and the derived-eventID path.
  std::vector<std::string> RefSessionQueries(int session) const {
    double pt_cut = 4.0 + 2.0 * session;
    std::vector<std::string> queries;
    queries.push_back("SELECT COUNT(*) FROM a_events WHERE runNumber > " +
                      std::to_string(2005 + session));
    queries.push_back("SELECT MAX(pt), MIN(eta) FROM a_muons WHERE pt > " +
                      std::to_string(pt_cut));
    queries.push_back("SELECT COUNT(*) FROM a_jets WHERE eta < " +
                      std::to_string(1.0 + session));
    queries.push_back("SELECT MAX(eventID) FROM a_electrons WHERE pt > " +
                      std::to_string(pt_cut));
    queries.push_back("SELECT runNumber, COUNT(*) FROM a_events GROUP BY "
                      "runNumber");
    return queries;
  }

  std::map<std::string, std::string> RefSerialResults(
      const PlannerOptions& options) {
    auto engine = NewRefEngine();
    auto session = engine->OpenSession(options);
    std::map<std::string, std::string> results;
    for (int s = 0; s < kNumSessions; ++s) {
      for (const std::string& sql : RefSessionQueries(s)) {
        for (int round = 0; round < 2; ++round) {
          auto result = session->Query(sql);
          EXPECT_TRUE(result.ok()) << sql << ": "
                                   << result.status().ToString();
          if (!result.ok()) continue;
          std::string table = result->table.ToString(10000);
          auto [it, inserted] = results.emplace(sql, table);
          EXPECT_EQ(it->second, table) << "cold/warm mismatch for " << sql;
        }
      }
    }
    return results;
  }
};

TEST_F(ConcurrentRefSessionsTest, RefSessionsMatchSerial) {
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  std::map<std::string, std::string> expected = RefSerialResults(options);
  auto engine = NewRefEngine();

  std::vector<std::vector<std::string>> errors(kNumSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kNumSessions; ++s) {
    threads.emplace_back([&, s] {
      auto session = engine->OpenSession(options);
      for (int round = 0; round < 2; ++round) {
        for (const std::string& sql : RefSessionQueries(s)) {
          auto result = session->Query(sql);
          if (!result.ok()) {
            errors[static_cast<size_t>(s)].push_back(
                sql + ": " + result.status().ToString());
            continue;
          }
          std::string table = result->table.ToString(10000);
          if (table != expected.at(sql)) {
            errors[static_cast<size_t>(s)].push_back("result diverged: " +
                                                     sql);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& session_errors : errors) {
    EXPECT_EQ(session_errors, std::vector<std::string>());
  }
  // The sessions shared one cluster pool: the warm rounds took hits.
  EngineStats stats = engine->Stats();
  EXPECT_GT(stats.ref_pool.hits, 0);
  EXPECT_GT(stats.ref_pool.bytes, 0);
}

TEST_F(ConcurrentRefSessionsTest, ResetAdaptiveStateDuringInflightRefSessions) {
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  std::map<std::string, std::string> expected = RefSerialResults(options);
  auto engine = NewRefEngine();

  std::vector<std::vector<std::string>> errors(kNumSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kNumSessions; ++s) {
    threads.emplace_back([&, s] {
      auto session = engine->OpenSession(options);
      std::vector<std::string> queries = RefSessionQueries(s);
      for (int round = 0; round < 4; ++round) {
        for (const std::string& sql : queries) {
          auto result = session->Query(sql);
          if (!result.ok()) {
            errors[static_cast<size_t>(s)].push_back(
                sql + ": " + result.status().ToString());
            continue;
          }
          std::string table = result->table.ToString(10000);
          if (table != expected.at(sql)) {
            errors[static_cast<size_t>(s)].push_back("result diverged: " +
                                                     sql);
          }
        }
      }
    });
  }
  // Keep dropping the cluster cache (and every other adaptive cache) while
  // REF queries are mid-read: pinned cluster handles keep in-flight reads
  // valid, and re-decodes repopulate the pool.
  for (int i = 0; i < 20; ++i) {
    engine->ResetAdaptiveState();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& t : threads) t.join();
  for (const auto& session_errors : errors) {
    EXPECT_EQ(session_errors, std::vector<std::string>());
  }
  auto session = engine->OpenSession(options);
  ASSERT_OK(
      session->Query("SELECT COUNT(*) FROM a_events WHERE runNumber > 0")
          .status());
}

TEST_F(ConcurrentSessionsTest, PreparedQuerySkipsReparseAndRebind) {
  auto engine = NewEngine();
  auto session = engine->OpenSession();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  session->set_planner_options(options);

  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      session->Prepare("SELECT COUNT(*) FROM t_csv WHERE col1 < ?"));
  EXPECT_EQ(prepared.num_params(), 1);

  const int64_t parsed_before = engine->Stats().queries_parsed;
  const int64_t planned_before = engine->Stats().queries_planned;
  std::vector<int64_t> literals = {100000000, 400000000, 800000000};
  for (int64_t lit : literals) {
    // Reference via a one-shot SQL round trip (parses again each time).
    ASSERT_OK_AND_ASSIGN(
        QueryResult direct,
        session->Query("SELECT COUNT(*) FROM t_csv WHERE col1 < " +
                       std::to_string(lit)));
    ASSERT_OK_AND_ASSIGN(QueryResult via_param,
                         prepared.Execute({Datum::Int64(lit)}));
    ASSERT_OK_AND_ASSIGN(Datum a, direct.Scalar());
    ASSERT_OK_AND_ASSIGN(Datum b, via_param.Scalar());
    EXPECT_EQ(a, b) << lit;
  }
  EngineStats stats = engine->Stats();
  // The three prepared executions did not re-parse/re-bind (only the three
  // one-shot reference queries did), but every execution still planned.
  EXPECT_EQ(stats.queries_parsed,
            parsed_before + static_cast<int64_t>(literals.size()));
  EXPECT_EQ(stats.queries_planned,
            planned_before + 2 * static_cast<int64_t>(literals.size()));

  // Parameter count and type errors surface cleanly.
  EXPECT_FALSE(prepared.Execute({}).ok());
  EXPECT_FALSE(
      prepared.Execute({Datum::String("nope"), Datum::Int64(1)}).ok());
}

TEST_F(ConcurrentSessionsTest, StreamingCursorMatchesMaterialized) {
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.batch_rows = 256;  // force several batches
  const std::string sql =
      "SELECT col0, col7 FROM t_csv WHERE col1 < 700000000";

  // Materialized reference on its own engine.
  auto reference_engine = NewEngine();
  ASSERT_OK_AND_ASSIGN(QueryResult materialized,
                       reference_engine->OpenSession(options)->Query(sql));

  // Cold stream on a fresh engine: batches arrive incrementally.
  auto engine = NewEngine();
  auto session = engine->OpenSession(options);
  ASSERT_OK_AND_ASSIGN(Cursor cursor, session->Stream(sql));
  EXPECT_EQ(cursor.schema().num_fields(), 2);
  int64_t streamed_rows = 0;
  int batches = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch batch, cursor.Next());
    if (batch.empty()) break;
    streamed_rows += batch.num_rows();
    ++batches;
  }
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(streamed_rows, materialized.num_rows());
  EXPECT_GT(batches, 1) << "expected incremental delivery";

  // Consume() materializes a whole stream (warm this time) and must equal
  // the one-shot result exactly.
  ASSERT_OK_AND_ASSIGN(Cursor full, session->Stream(sql));
  ASSERT_OK_AND_ASSIGN(QueryResult consumed, full.Consume());
  EXPECT_EQ(consumed.table.ToString(10000),
            materialized.table.ToString(10000));
}

TEST_F(ConcurrentSessionsTest, AbandonedCursorReleasesPmapBuildClaim) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.batch_rows = 128;
  auto session = engine->OpenSession(options);

  {
    // Pull one batch of a cold scan, then drop the cursor mid-stream: the
    // half-built positional map must be discarded, not published.
    ASSERT_OK_AND_ASSIGN(
        Cursor cursor,
        session->Stream("SELECT col0 FROM t_csv WHERE col0 >= 0"));
    ASSERT_OK_AND_ASSIGN(ColumnBatch first, cursor.Next());
    EXPECT_GT(first.num_rows(), 0);
  }
  EXPECT_EQ(engine->Stats().table("t_csv")->pmap_rows, 0);

  // The claim was released, so the next full query builds + publishes.
  ASSERT_OK(
      session->Query("SELECT COUNT(*) FROM t_csv WHERE col0 >= 0").status());
  EXPECT_EQ(engine->Stats().table("t_csv")->pmap_rows, kRows);
}

TEST_F(ConcurrentSessionsTest, CursorStreamsAcrossReset) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.batch_rows = 128;
  auto session = engine->OpenSession(options);
  const std::string sql = "SELECT col0, col5 FROM t_csv WHERE col1 < 900000000";

  // Warm up so the streaming plan below runs off published adaptive state.
  ASSERT_OK_AND_ASSIGN(QueryResult reference, session->Query(sql));

  ASSERT_OK_AND_ASSIGN(Cursor cursor, session->Stream(sql));
  ASSERT_OK_AND_ASSIGN(ColumnBatch first, cursor.Next());
  EXPECT_GT(first.num_rows(), 0);
  // Reset mid-stream: the cursor holds snapshots of everything its plan
  // references and keeps streaming the correct rows.
  engine->ResetAdaptiveState();
  int64_t rows = first.num_rows();
  while (true) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch batch, cursor.Next());
    if (batch.empty()) break;
    rows += batch.num_rows();
  }
  EXPECT_EQ(rows, reference.num_rows());
}

}  // namespace
}  // namespace raw
