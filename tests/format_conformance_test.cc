// Format-driver conformance suite: every registrable backend (csv, bin,
// jsonl, csv.gz, ref) must produce identical results cold and warm, serial
// and morsel-parallel, through sequential scans, shredded late scans, and
// cross-format joins. This is the acceptance harness for the pluggable
// FormatDriver interface — a new driver that passes here composes with the
// whole engine.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/mmap_file.h"
#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"
#include "zcsv/gzip_block.h"

namespace raw {
namespace {

/// MAX(agg_col) over rows with col(pred_col) < lit, straight from the
/// deterministic data source (ground truth independent of the engine).
int64_t ExpectedMax(const TableSpec& spec, int agg_col, int pred_col,
                    int64_t lit) {
  TableDataSource source(spec);
  int64_t best = INT64_MIN;
  for (int64_t r = 0; r < spec.rows; ++r) {
    if (*source.Value(r, pred_col).AsInt64() >= lit) continue;
    best = std::max(best, *source.Value(r, agg_col).AsInt64());
  }
  return best;
}

/// COUNT(*) of facts ⋈ dim on col0 with dim.col1 < lit.
int64_t ExpectedJoinCount(const TableSpec& facts, const TableSpec& dim,
                          int64_t lit) {
  TableDataSource dsrc(dim);
  std::unordered_map<int64_t, int64_t> matches;
  for (int64_t r = 0; r < dim.rows; ++r) {
    if (*dsrc.Value(r, 1).AsInt64() < lit) ++matches[*dsrc.Value(r, 0).AsInt64()];
  }
  TableDataSource fsrc(facts);
  int64_t count = 0;
  for (int64_t r = 0; r < facts.rows; ++r) {
    auto it = matches.find(*fsrc.Value(r, 0).AsInt64());
    if (it != matches.end()) count += it->second;
  }
  return count;
}

class FormatConformanceTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    facts_ = TableSpec::UniformInt32("f", 6, 1200, /*seed=*/31);
    facts_.columns[0].max_value = 60;  // join key domain
    dim_ = TableSpec::UniformInt32("d", 2, 80, /*seed=*/77);
    dim_.columns[0].max_value = 60;
    dim_.columns[1].max_value = 100;
    for (const TableSpec* spec : {&facts_, &dim_}) {
      const std::string base = Path(spec->name);
      ASSERT_OK(WriteCsvFile(*spec, base + ".csv"));
      ASSERT_OK(WriteBinaryFile(*spec, base + ".bin"));
      ASSERT_OK(WriteJsonlFile(*spec, base + ".jsonl"));
      // Small blocks so the compressed file splits into many gzip members.
      ASSERT_OK(WriteCsvGzTable(*spec, base + ".csv.gz",
                                /*block_bytes=*/4096));
    }
  }

  /// Registers one table per (spec, format) pair: f_csv, f_bin, f_jsonl,
  /// f_gz, d_csv, ...
  std::unique_ptr<RawEngine> NewEngine() {
    auto engine = std::make_unique<RawEngine>();
    for (const TableSpec* spec : {&facts_, &dim_}) {
      const std::string base = Path(spec->name);
      EXPECT_OK(engine->RegisterCsv(spec->name + "_csv", base + ".csv",
                                    spec->ToSchema()));
      EXPECT_OK(engine->RegisterBinary(spec->name + "_bin", base + ".bin",
                                       spec->ToSchema()));
      EXPECT_OK(engine->RegisterJsonl(spec->name + "_jsonl", base + ".jsonl",
                                      spec->ToSchema()));
      EXPECT_OK(engine->RegisterCsvGz(spec->name + "_gz", base + ".csv.gz",
                                      spec->ToSchema()));
    }
    return engine;
  }

  static int64_t Scalar(RawEngine& engine, const std::string& sql,
                        const PlannerOptions& options) {
    auto result = engine.Query(sql, options);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    if (!result.ok()) return INT64_MIN;
    auto datum = result->Scalar();
    EXPECT_TRUE(datum.ok()) << sql;
    return datum.ok() ? *datum->AsInt64() : INT64_MIN;
  }

  TableSpec facts_;
  TableSpec dim_;
};

const char* const kFactsTables[] = {"f_csv", "f_bin", "f_jsonl", "f_gz"};

TEST_F(FormatConformanceTest, ColdWarmSerialParallelAgreeOnEveryFormat) {
  const int64_t lit = 450000000;
  const int64_t expected = ExpectedMax(facts_, 3, 1, lit);
  for (const char* table : kFactsTables) {
    const std::string sql = std::string("SELECT MAX(col3) FROM ") + table +
                            " WHERE col1 < " + std::to_string(lit);
    for (int threads : {1, 4}) {
      auto engine = NewEngine();
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.num_threads = threads;
      // Cold: builds the positional map / field-offset map / block index.
      EXPECT_EQ(Scalar(*engine, sql, options), expected)
          << table << " cold x" << threads;
      // Warm: same engine, adaptive state now published.
      EXPECT_EQ(Scalar(*engine, sql, options), expected)
          << table << " warm x" << threads;
    }
  }
}

TEST_F(FormatConformanceTest, LateScanShredFetchAgreesOnEveryFormat) {
  // kShreds forces the aggregate column through a late scan, exercising
  // every driver's BuildFetcher (positional CSV, field-offset JSONL,
  // block-indexed compressed CSV) cold and warm, serial and parallel.
  const int64_t lit = 300000000;
  const int64_t expected = ExpectedMax(facts_, 5, 1, lit);
  for (const char* table : kFactsTables) {
    const std::string sql = std::string("SELECT MAX(col5) FROM ") + table +
                            " WHERE col1 < " + std::to_string(lit);
    for (int threads : {1, 4}) {
      auto engine = NewEngine();
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.shred_policy = ShredPolicy::kShreds;
      options.num_threads = threads;
      EXPECT_EQ(Scalar(*engine, sql, options), expected)
          << table << " cold x" << threads;
      EXPECT_EQ(Scalar(*engine, sql, options), expected)
          << table << " warm x" << threads;
    }
  }
}

TEST_F(FormatConformanceTest, PlanDescriptionsNameEveryFormat) {
  const std::pair<const char*, const char*> tables[] = {
      {"f_csv", "csv"}, {"f_bin", "bin"}, {"f_jsonl", "jsonl"},
      {"f_gz", "csv.gz"},
  };
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.num_threads = 4;
  // Keep the scan in the plan on warm runs: no shred-cache shortcuts.
  options.use_shred_cache = false;
  options.populate_shred_cache = false;
  for (const auto& [table, format] : tables) {
    const std::string sql =
        std::string("SELECT MAX(col2) FROM ") + table + " WHERE col1 < 9999";
    ASSERT_OK_AND_ASSIGN(QueryResult cold, engine->Query(sql, options));
    EXPECT_NE(cold.plan_description.find(std::string("[format=") + format +
                                         "]"),
              std::string::npos)
        << table << ": " << cold.plan_description;
    ASSERT_OK_AND_ASSIGN(QueryResult warm, engine->Query(sql, options));
    EXPECT_NE(warm.plan_description.find(std::string("[format=") + format +
                                         "]"),
              std::string::npos)
        << table << ": " << warm.plan_description;
    if (std::string(format) == "csv.gz") {
      // Cold compressed scans are serial; warm ones go block-parallel
      // through the index built on the first pass — and say so.
      EXPECT_NE(cold.plan_description.find("cold"), std::string::npos)
          << cold.plan_description;
      EXPECT_NE(warm.plan_description.find("blocks="), std::string::npos)
          << warm.plan_description;
      EXPECT_NE(warm.plan_description.find("[parallel"), std::string::npos)
          << warm.plan_description;
    }
  }
}

TEST_F(FormatConformanceTest, CrossFormatJoinsAgree) {
  // Fig. 11-style heterogenous queries: every join below reads its two
  // sides through different format drivers (or the two new ones).
  const int64_t lit = 50;
  const int64_t expected = ExpectedJoinCount(facts_, dim_, lit);
  const std::pair<const char*, const char*> pairs[] = {
      {"f_csv", "d_bin"},   {"f_bin", "d_jsonl"}, {"f_jsonl", "d_gz"},
      {"f_gz", "d_csv"},    {"f_jsonl", "d_jsonl"}, {"f_gz", "d_gz"},
  };
  auto engine = NewEngine();
  for (const auto& [f, d] : pairs) {
    const std::string sql = std::string("SELECT COUNT(*) FROM ") + f +
                            " JOIN " + d + " ON " + f + ".col0 = " + d +
                            ".col0 WHERE " + d + ".col1 < " +
                            std::to_string(lit);
    for (int threads : {1, 4}) {
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.num_threads = threads;
      EXPECT_EQ(Scalar(*engine, sql, options), expected)
          << f << " x " << d << " threads=" << threads;
    }
  }
}

TEST_F(FormatConformanceTest, QuotedEdgeRowsSurviveCompression) {
  // Rows whose quoted strings embed delimiters and newlines: member cuts,
  // row counting, and block indexing must all be quote-aware.
  std::string text;
  for (int i = 0; i < 150; ++i) {
    text += std::to_string(i) + ",\"v,\n" + std::to_string(i) + "\"\n";
  }
  ASSERT_OK(WriteStringToFile(Path("q.csv"), text));
  ASSERT_OK(WriteCsvGzFile(Path("q.csv.gz"), text, /*block_bytes=*/256));
  const Schema schema{{"id", DataType::kInt32}, {"s", DataType::kString}};
  for (int threads : {1, 4}) {
    RawEngine engine;
    ASSERT_OK(engine.RegisterCsv("q_csv", Path("q.csv"), schema));
    ASSERT_OK(engine.RegisterCsvGz("q_gz", Path("q.csv.gz"), schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    for (const char* table : {"q_csv", "q_gz"}) {
      const std::string from = std::string(" FROM ") + table;
      EXPECT_EQ(Scalar(engine, "SELECT COUNT(*)" + from, options), 150)
          << table << " cold";
      EXPECT_EQ(Scalar(engine,
                       "SELECT MAX(id)" + from + " WHERE id < 100", options),
                99)
          << table << " warm";
    }
  }
}

TEST_F(FormatConformanceTest, EmptyFilesScanToZeroRows) {
  ASSERT_OK(WriteStringToFile(Path("e.csv"), ""));
  ASSERT_OK(WriteStringToFile(Path("e.jsonl"), ""));
  ASSERT_OK(WriteCsvGzFile(Path("e.csv.gz"), ""));
  const Schema schema{{"a", DataType::kInt32}};
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("e_csv", Path("e.csv"), schema));
  ASSERT_OK(engine.RegisterJsonl("e_jsonl", Path("e.jsonl"), schema));
  ASSERT_OK(engine.RegisterCsvGz("e_gz", Path("e.csv.gz"), schema));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  for (const char* table : {"e_csv", "e_jsonl", "e_gz"}) {
    EXPECT_EQ(Scalar(engine, std::string("SELECT COUNT(*) FROM ") + table,
                     options),
              0)
        << table;
  }
}

TEST_F(FormatConformanceTest, RefScansAreConsistentAcrossRunsAndThreads) {
  EventGenOptions ev;
  ev.num_events = 240;
  ASSERT_OK(WriteRefFile(Path("e.ref"), ev, /*cluster_rows=*/32));
  for (int threads : {1, 4}) {
    RawEngine engine;
    ASSERT_OK(engine.RegisterRef("ev", Path("e.ref")));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    EXPECT_EQ(Scalar(engine, "SELECT COUNT(*) FROM ev_events", options), 240)
        << "cold x" << threads;
    EXPECT_EQ(Scalar(engine, "SELECT COUNT(*) FROM ev_events", options), 240)
        << "warm x" << threads;
  }
}

TEST_F(FormatConformanceTest, LegacyOneShotShimMatchesSessions) {
  const int64_t lit = 350000000;
  const int64_t expected = ExpectedMax(facts_, 2, 1, lit);
  const std::string sql =
      "SELECT MAX(col2) FROM f_jsonl WHERE col1 < " + std::to_string(lit);
  auto engine = NewEngine();
  // Legacy surface (engine-owned default session).
  ASSERT_OK_AND_ASSIGN(QueryResult legacy, engine->Query(sql));
  ASSERT_OK_AND_ASSIGN(Datum legacy_value, legacy.Scalar());
  EXPECT_EQ(*legacy_value.AsInt64(), expected);
  // Explicit session surface.
  auto session = engine->OpenSession();
  ASSERT_OK_AND_ASSIGN(QueryResult modern, session->Query(sql));
  ASSERT_OK_AND_ASSIGN(Datum modern_value, modern.Scalar());
  EXPECT_EQ(*modern_value.AsInt64(), expected);
  EXPECT_GE(engine->Stats().queries_executed, 2);
}

}  // namespace
}  // namespace raw
