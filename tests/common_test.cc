#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>

#include "common/datum.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/mmap_file.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/types.h"
#include "tests/test_util.h"

namespace raw {
namespace {

// --- Status / StatusOr -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arg");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::IOError("disk gone");
  Status copy = st;
  EXPECT_EQ(copy, st);
  Status moved = std::move(st);
  EXPECT_EQ(moved.code(), StatusCode::kIOError);
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

// --- DataType ----------------------------------------------------------------

TEST(TypesTest, FixedWidths) {
  EXPECT_EQ(FixedWidth(DataType::kInt32), 4);
  EXPECT_EQ(FixedWidth(DataType::kInt64), 8);
  EXPECT_EQ(FixedWidth(DataType::kFloat32), 4);
  EXPECT_EQ(FixedWidth(DataType::kFloat64), 8);
  EXPECT_EQ(FixedWidth(DataType::kBool), 1);
  EXPECT_EQ(FixedWidth(DataType::kString), 0);
}

TEST(TypesTest, RoundTripNames) {
  for (DataType t : {DataType::kBool, DataType::kInt32, DataType::kInt64,
                     DataType::kFloat32, DataType::kFloat64, DataType::kString}) {
    auto parsed = DataTypeFromString(DataTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(TypesTest, ParseAliases) {
  EXPECT_EQ(*DataTypeFromString("int"), DataType::kInt32);
  EXPECT_EQ(*DataTypeFromString("double"), DataType::kFloat64);
  EXPECT_EQ(*DataTypeFromString("text"), DataType::kString);
  EXPECT_FALSE(DataTypeFromString("decimal").ok());
}

// --- Schema ------------------------------------------------------------------

TEST(SchemaTest, FieldLookup) {
  Schema s{{"a", DataType::kInt32}, {"b", DataType::kFloat64}};
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("z"), -1);
  ASSERT_TRUE(s.FieldByName("a").ok());
  EXPECT_FALSE(s.FieldByName("z").ok());
}

TEST(SchemaTest, ValidateRejectsDuplicates) {
  Schema s{{"a", DataType::kInt32}, {"a", DataType::kInt64}};
  EXPECT_FALSE(s.Validate().ok());
  Schema empty_name{{"", DataType::kInt32}};
  EXPECT_FALSE(empty_name.Validate().ok());
}

TEST(SchemaTest, StringRoundTrip) {
  Schema s{{"a", DataType::kInt32},
           {"b", DataType::kFloat64},
           {"c", DataType::kString}};
  auto parsed = Schema::FromString(s.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, s);
}

TEST(SchemaTest, Select) {
  Schema s{{"a", DataType::kInt32},
           {"b", DataType::kFloat64},
           {"c", DataType::kString}};
  Schema sub = s.Select({2, 0});
  EXPECT_EQ(sub.num_fields(), 2);
  EXPECT_EQ(sub.field(0).name, "c");
  EXPECT_EQ(sub.field(1).name, "a");
}

// --- Datum ---------------------------------------------------------------------

TEST(DatumTest, TypedAccessors) {
  EXPECT_EQ(Datum::Int32(-5).int32_value(), -5);
  EXPECT_EQ(Datum::Int64(1ll << 40).int64_value(), 1ll << 40);
  EXPECT_FLOAT_EQ(Datum::Float32(1.5f).float32_value(), 1.5f);
  EXPECT_DOUBLE_EQ(Datum::Float64(2.25).float64_value(), 2.25);
  EXPECT_TRUE(Datum::Bool(true).bool_value());
  EXPECT_EQ(Datum::String("hi").string_value(), "hi");
}

TEST(DatumTest, AsDoubleAndInt64) {
  EXPECT_DOUBLE_EQ(*Datum::Int32(7).AsDouble(), 7.0);
  EXPECT_EQ(*Datum::Float64(7.9).AsInt64(), 7);
  EXPECT_FALSE(Datum::String("x").AsDouble().ok());
}

TEST(DatumTest, CastNumeric) {
  ASSERT_OK_AND_ASSIGN(Datum d, Datum::Int32(42).CastTo(DataType::kFloat64));
  EXPECT_DOUBLE_EQ(d.float64_value(), 42.0);
  ASSERT_OK_AND_ASSIGN(Datum i, Datum::Float64(3.7).CastTo(DataType::kInt32));
  EXPECT_EQ(i.int32_value(), 3);
}

TEST(DatumTest, CastFromString) {
  ASSERT_OK_AND_ASSIGN(Datum i, Datum::String("-12").CastTo(DataType::kInt32));
  EXPECT_EQ(i.int32_value(), -12);
  ASSERT_OK_AND_ASSIGN(Datum f,
                       Datum::String("2.5").CastTo(DataType::kFloat64));
  EXPECT_DOUBLE_EQ(f.float64_value(), 2.5);
  EXPECT_FALSE(Datum::String("abc").CastTo(DataType::kInt32).ok());
}

TEST(DatumTest, ToStringRoundTripsDoubles) {
  double v = 0.1 + 0.2;
  Datum d = Datum::Float64(v);
  Datum parsed = *Datum::String(d.ToString()).CastTo(DataType::kFloat64);
  EXPECT_DOUBLE_EQ(parsed.float64_value(), v);
}

// --- string_util ---------------------------------------------------------------

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_EQ(ToLower("ABcd"), "abcd");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
}

// --- hash ------------------------------------------------------------------------

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
}

TEST(HashTest, HexFormat) {
  EXPECT_EQ(HashToHex(0).size(), 16u);
  EXPECT_EQ(HashToHex(0xdeadbeefULL), "00000000deadbeef");
}

// --- rng -------------------------------------------------------------------------

TEST(RngTest, DeterministicStreams) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  // Different seeds diverge (overwhelmingly likely).
  bool diverged = false;
  Rng a2(1);
  for (int i = 0; i < 10; ++i) diverged |= (a2.Next() != c.Next());
  EXPECT_TRUE(diverged);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, CoversRange) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextInt64(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

// --- mmap / files -----------------------------------------------------------------

using MmapTest = testing::TempDirTest;

TEST_F(MmapTest, RoundTripFile) {
  std::string path = Path("f.txt");
  ASSERT_OK(WriteStringToFile(path, "hello world"));
  ASSERT_OK_AND_ASSIGN(std::string read, ReadFileToString(path));
  EXPECT_EQ(read, "hello world");
  ASSERT_OK_AND_ASSIGN(uint64_t size, FileSize(path));
  EXPECT_EQ(size, 11u);
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(Path("missing")));
}

TEST_F(MmapTest, MapsContents) {
  std::string path = Path("m.bin");
  ASSERT_OK(WriteStringToFile(path, "abcdef"));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  ASSERT_EQ(file->size(), 6u);
  EXPECT_EQ(std::string(file->data(), file->size()), "abcdef");
  file->AdviseSequential();
  file->AdviseRandom();
  EXPECT_OK(file->DropPageCache());
}

TEST_F(MmapTest, EmptyFile) {
  std::string path = Path("empty");
  ASSERT_OK(WriteStringToFile(path, ""));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  EXPECT_EQ(file->size(), 0u);
}

TEST_F(MmapTest, MissingFileFails) {
  EXPECT_FALSE(MmapFile::Open(Path("nope")).ok());
}

TEST(TempDirTest2, CreatesAndRemoves) {
  std::string kept;
  {
    auto dir = TempDir::Create();
    ASSERT_TRUE(dir.ok());
    kept = dir->path();
    ASSERT_OK(WriteStringToFile(dir->FilePath("x"), "1"));
    EXPECT_TRUE(FileExists(dir->FilePath("x")));
  }
  EXPECT_FALSE(FileExists(kept + "/x"));
}


// --- strict environment parsing ---------------------------------------------

TEST(EnvTest, ParseInt64StrictAcceptsExactIntegers) {
  EXPECT_EQ(ParseInt64Strict("42", 0, 100), 42);
  EXPECT_EQ(ParseInt64Strict("+7", 0, 100), 7);
  EXPECT_EQ(ParseInt64Strict("-3", -10, 10), -3);
  EXPECT_EQ(ParseInt64Strict("0", 0, 0), 0);
}

TEST(EnvTest, ParseInt64StrictRejectsGarbage) {
  // atoi would read "4abc" as 4; the strict parser must not.
  EXPECT_FALSE(ParseInt64Strict("4abc", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict("", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict(" 4", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict("4 ", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict("0x10", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict("4.5", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict("--4", -10, 100).has_value());
}

TEST(EnvTest, ParseInt64StrictEnforcesRange) {
  EXPECT_FALSE(ParseInt64Strict("101", 0, 100).has_value());
  EXPECT_FALSE(ParseInt64Strict("-1", 0, 100).has_value());
  // Overflow past int64 must be rejected, not wrapped.
  EXPECT_FALSE(
      ParseInt64Strict("99999999999999999999999", 0, INT64_MAX).has_value());
}

TEST(EnvTest, GetEnvInt64FallsBackOnMalformedValues) {
  ::setenv("RAW_TEST_ENV_KNOB", "17", 1);
  EXPECT_EQ(GetEnvInt64("RAW_TEST_ENV_KNOB", 5, 1, 100), 17);
  ::setenv("RAW_TEST_ENV_KNOB", "17banana", 1);
  EXPECT_EQ(GetEnvInt64("RAW_TEST_ENV_KNOB", 5, 1, 100), 5);
  ::setenv("RAW_TEST_ENV_KNOB", "5000", 1);  // out of range
  EXPECT_EQ(GetEnvInt64("RAW_TEST_ENV_KNOB", 5, 1, 100), 5);
  ::unsetenv("RAW_TEST_ENV_KNOB");
  EXPECT_EQ(GetEnvInt64("RAW_TEST_ENV_KNOB", 5, 1, 100), 5);
}

}  // namespace
}  // namespace raw
