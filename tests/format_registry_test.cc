#include <gtest/gtest.h>

#include "engine/formats/builtin.h"
#include "engine/formats/drivers.h"
#include "format/format.h"
#include "format/format_driver.h"
#include "tests/test_util.h"

namespace raw {
namespace {

class FormatRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { EnsureBuiltinFormatDriversRegistered(); }
};

TEST_F(FormatRegistryTest, BuiltinsCoverEveryFormat) {
  FormatRegistry& registry = FormatRegistry::Global();
  const struct {
    FileFormat format;
    const char* name;
  } expected[] = {
      {FileFormat::kCsv, "csv"},       {FileFormat::kBinary, "bin"},
      {FileFormat::kRef, "ref"},       {FileFormat::kJsonl, "jsonl"},
      {FileFormat::kCsvGz, "csv.gz"},
  };
  for (const auto& e : expected) {
    const FormatDriver* driver = registry.Find(e.format);
    ASSERT_NE(driver, nullptr) << e.name;
    EXPECT_EQ(driver->name(), e.name);
    EXPECT_EQ(driver->format(), e.format);
    EXPECT_EQ(registry.FindByName(e.name), driver);
  }
  EXPECT_GE(registry.Drivers().size(), 5u);
}

TEST_F(FormatRegistryTest, RequireAnnotatesUnknownFormats) {
  auto missing = FormatRegistry::Global().Require(static_cast<FileFormat>(99));
  ASSERT_FALSE(missing.ok());
  // The error lists what *is* registered so misconfiguration is debuggable.
  EXPECT_NE(missing.status().ToString().find("csv"), std::string::npos);
}

TEST_F(FormatRegistryTest, DuplicateRegistrationFailsAtRegisterTime) {
  FormatRegistry& registry = FormatRegistry::Global();
  Status dup_format = registry.Register(MakeCsvFormatDriver());
  EXPECT_FALSE(dup_format.ok());
  EXPECT_NE(dup_format.ToString().find("already registered"),
            std::string::npos);
  EXPECT_FALSE(registry.Register(nullptr).ok());
}

TEST_F(FormatRegistryTest, FormatNamesRoundTripThroughRegistry) {
  for (const char* name : {"csv", "bin", "ref", "jsonl", "csv.gz"}) {
    ASSERT_OK_AND_ASSIGN(FileFormat format, ParseFileFormat(name));
    EXPECT_EQ(FileFormatToString(format), name);
  }
  EXPECT_EQ(FileFormatToString(static_cast<FileFormat>(42)), "unregistered");
  auto unknown = ParseFileFormat("parquet");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("registered:"),
            std::string::npos);
}

TEST_F(FormatRegistryTest, JitEmissionDefaultsToNotImplemented) {
  // Formats without a JIT plug-in (jsonl, csv.gz) report a typed error the
  // planner treats as "take the interpreted path", not a crash.
  const FormatDriver* jsonl =
      FormatRegistry::Global().Find(FileFormat::kJsonl);
  ASSERT_NE(jsonl, nullptr);
  AccessPathSpec spec;
  spec.format = FileFormat::kJsonl;
  auto src = jsonl->EmitJitSource(spec);
  ASSERT_FALSE(src.ok());
  EXPECT_NE(src.status().ToString().find("jsonl"), std::string::npos);
}

}  // namespace
}  // namespace raw
