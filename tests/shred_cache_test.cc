#include <gtest/gtest.h>

#include "engine/shred_cache.h"
#include "tests/test_util.h"

namespace raw {
namespace {

Column IntColumn(std::vector<int32_t> values) {
  Column col(DataType::kInt32);
  for (int32_t v : values) col.Append<int32_t>(v);
  return col;
}

TEST(ShredCacheTest, FullColumnInsertAndLookup) {
  ShredCache cache;
  ASSERT_OK(cache.Insert("t", 0, nullptr, IntColumn({10, 20, 30, 40})));
  ASSERT_OK_AND_ASSIGN(ColumnPtr full, cache.LookupFull("t", 0));
  EXPECT_EQ(full->length(), 4);
  ASSERT_OK_AND_ASSIGN(ColumnPtr some, cache.Lookup("t", 0, {3, 1}));
  EXPECT_EQ(some->Value<int32_t>(0), 40);
  EXPECT_EQ(some->Value<int32_t>(1), 20);
  // Out-of-range rows are a miss.
  EXPECT_FALSE(cache.Lookup("t", 0, {4}).ok());
}

TEST(ShredCacheTest, ShredSubsumption) {
  ShredCache cache;
  std::vector<int64_t> rows = {2, 5, 9};
  ASSERT_OK(cache.Insert("t", 1, rows.data(), IntColumn({200, 500, 900})));
  EXPECT_TRUE(cache.Covers("t", 1, {5}));
  EXPECT_TRUE(cache.Covers("t", 1, {2, 9}));
  EXPECT_FALSE(cache.Covers("t", 1, {2, 3}));
  ASSERT_OK_AND_ASSIGN(ColumnPtr vals, cache.Lookup("t", 1, {9, 2}));
  EXPECT_EQ(vals->Value<int32_t>(0), 900);
  EXPECT_EQ(vals->Value<int32_t>(1), 200);
  EXPECT_FALSE(cache.Lookup("t", 1, {3}).ok());
  EXPECT_FALSE(cache.LookupFull("t", 1).ok());  // shred, not full
}

TEST(ShredCacheTest, BiggerEntryReplacesSmaller) {
  ShredCache cache;
  std::vector<int64_t> small_rows = {1, 2};
  ASSERT_OK(cache.Insert("t", 0, small_rows.data(), IntColumn({1, 2})));
  std::vector<int64_t> big_rows = {0, 1, 2, 3};
  ASSERT_OK(cache.Insert("t", 0, big_rows.data(), IntColumn({0, 1, 2, 3})));
  EXPECT_TRUE(cache.Covers("t", 0, {0, 3}));
  // Smaller (or equal) inserts keep the existing entry.
  std::vector<int64_t> tiny = {7};
  ASSERT_OK(cache.Insert("t", 0, tiny.data(), IntColumn({70})));
  EXPECT_TRUE(cache.Covers("t", 0, {0, 3}));
  EXPECT_FALSE(cache.Covers("t", 0, {7}));
}

TEST(ShredCacheTest, FullColumnNeverDowngraded) {
  ShredCache cache;
  ASSERT_OK(cache.Insert("t", 0, nullptr, IntColumn({1, 2, 3})));
  std::vector<int64_t> rows = {0, 1, 2, 3, 4};
  ASSERT_OK(cache.Insert("t", 0, rows.data(), IntColumn({9, 9, 9, 9, 9})));
  ASSERT_OK_AND_ASSIGN(ColumnPtr full, cache.LookupFull("t", 0));
  EXPECT_EQ(full->Value<int32_t>(0), 1);  // original kept
}

TEST(ShredCacheTest, RejectsUnsortedRowIds) {
  ShredCache cache;
  std::vector<int64_t> rows = {5, 3};
  EXPECT_FALSE(cache.Insert("t", 0, rows.data(), IntColumn({1, 2})).ok());
  std::vector<int64_t> dup = {3, 3};
  EXPECT_FALSE(cache.Insert("t", 0, dup.data(), IntColumn({1, 2})).ok());
}

TEST(ShredCacheTest, LruEvictionUnderPressure) {
  // One shard pins the classic single-LRU semantics (the sharded default
  // spreads keys across independent LRU lists).
  ShredCache cache(/*capacity_bytes=*/1000, /*num_shards=*/1);
  // Each full column of 100 int32 = 400 bytes.
  ASSERT_OK(cache.Insert("t", 0, nullptr,
                         IntColumn(std::vector<int32_t>(100, 1))));
  ASSERT_OK(cache.Insert("t", 1, nullptr,
                         IntColumn(std::vector<int32_t>(100, 2))));
  // Touch column 0 so column 1 is LRU.
  EXPECT_TRUE(cache.LookupFull("t", 0).ok());
  ASSERT_OK(cache.Insert("t", 2, nullptr,
                         IntColumn(std::vector<int32_t>(100, 3))));
  EXPECT_GE(cache.evictions(), 1);
  EXPECT_FALSE(cache.LookupFull("t", 1).ok());  // evicted
  EXPECT_TRUE(cache.LookupFull("t", 0).ok());
  EXPECT_TRUE(cache.LookupFull("t", 2).ok());
}

TEST(ShredCacheTest, PerTableNamespacing) {
  ShredCache cache;
  ASSERT_OK(cache.Insert("a", 0, nullptr, IntColumn({1})));
  ASSERT_OK(cache.Insert("b", 0, nullptr, IntColumn({2})));
  ASSERT_OK_AND_ASSIGN(ColumnPtr a, cache.LookupFull("a", 0));
  ASSERT_OK_AND_ASSIGN(ColumnPtr b, cache.LookupFull("b", 0));
  EXPECT_EQ(a->Value<int32_t>(0), 1);
  EXPECT_EQ(b->Value<int32_t>(0), 2);
  EXPECT_EQ(cache.num_entries(), 2);
}

TEST(ShredCacheTest, ClearResets) {
  ShredCache cache;
  ASSERT_OK(cache.Insert("t", 0, nullptr, IntColumn({1, 2})));
  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0);
  EXPECT_EQ(cache.bytes_cached(), 0);
  EXPECT_FALSE(cache.LookupFull("t", 0).ok());
}

TEST(ShredCacheTest, StatsCount) {
  ShredCache cache;
  ASSERT_OK(cache.Insert("t", 0, nullptr, IntColumn({1, 2, 3})));
  EXPECT_TRUE(cache.Lookup("t", 0, {1}).ok());
  EXPECT_FALSE(cache.Lookup("t", 9, {1}).ok());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ShredCacheTest, ContainsFullHasNoSideEffects) {
  ShredCache cache;
  ASSERT_OK(cache.Insert("t", 0, nullptr, IntColumn({1, 2})));
  EXPECT_TRUE(cache.ContainsFull("t", 0));
  EXPECT_FALSE(cache.ContainsFull("t", 1));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(ShredCacheTest, ShardedCapacityStaysBounded) {
  // Many distinct columns under a small budget: the byte budget is global,
  // each over-budget insert sheds its own shard's LRU tail, so total bytes
  // stay near capacity (every shard may keep one surviving entry — the
  // same oversized-entry guard the single-LRU always had).
  const int64_t capacity = 4000;
  ShredCache cache(capacity);
  const int64_t entry_bytes =
      IntColumn(std::vector<int32_t>(100, 1)).MemoryBytes();
  for (int c = 0; c < 64; ++c) {
    ASSERT_OK(cache.Insert("t", c, nullptr,
                           IntColumn(std::vector<int32_t>(100, c))));
  }
  CacheStats stats = cache.Stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(stats.bytes,
            capacity + ShredCache::kDefaultNumShards * entry_bytes);
  // Surviving entries still serve exact lookups.
  int64_t served = 0;
  for (int c = 0; c < 64; ++c) {
    auto hit = cache.LookupFull("t", c);
    if (hit.ok()) {
      ++served;
      EXPECT_EQ((*hit)->Value<int32_t>(0), c);
    }
  }
  EXPECT_EQ(served, stats.entries);
}

TEST(ShredCacheTest, NoEvictionWhileGlobalBudgetHasHeadroom) {
  // Key skew must not evict: even if several entries hash to one shard,
  // nothing is dropped while the cache-wide total is under capacity.
  ShredCache cache(/*capacity_bytes=*/1 << 20);
  for (int c = 0; c < 64; ++c) {
    ASSERT_OK(cache.Insert("t", c, nullptr,
                           IntColumn(std::vector<int32_t>(100, c))));
  }
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 64);
}

}  // namespace
}  // namespace raw
