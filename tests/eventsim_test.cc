#include <gtest/gtest.h>

#include <cmath>

#include "common/mmap_file.h"
#include "eventsim/buffer_pool.h"
#include "eventsim/event_generator.h"
#include "eventsim/ref_format.h"
#include "eventsim/ref_reader.h"
#include "eventsim/ref_writer.h"
#include "eventsim/rle_codec.h"
#include "tests/test_util.h"

namespace raw {
namespace {

// --- RLE codec ----------------------------------------------------------------

TEST(RleCodecTest, RoundTripRuns) {
  std::vector<int32_t> values = {5, 5, 5, 7, 7, 1, 1, 1, 1, 1};
  const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
  size_t size = values.size() * 4;
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> encoded, RleEncode(bytes, size, 4));
  EXPECT_LT(encoded.size(), size);  // runs compress
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> decoded,
                       RleDecode(encoded.data(), encoded.size(), 4, size));
  EXPECT_EQ(memcmp(decoded.data(), bytes, size), 0);
}

TEST(RleCodecTest, RoundTripNoRuns8Byte) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 100; ++i) values.push_back(i);
  const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
  size_t size = values.size() * 8;
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> encoded, RleEncode(bytes, size, 8));
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> decoded,
                       RleDecode(encoded.data(), encoded.size(), 8, size));
  EXPECT_EQ(memcmp(decoded.data(), bytes, size), 0);
}

TEST(RleCodecTest, RejectsBadInput) {
  uint8_t data[7] = {0};
  EXPECT_FALSE(RleEncode(data, 7, 4).ok());     // not multiple of width
  EXPECT_FALSE(RleEncode(data, 4, 3).ok());     // bad width
  EXPECT_FALSE(RleDecode(data, 7, 4, 100).ok());  // truncated stream
}

TEST(RleCodecTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> encoded, RleEncode(nullptr, 0, 4));
  EXPECT_TRUE(encoded.empty());
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> decoded,
                       RleDecode(encoded.data(), 0, 4, 0));
  EXPECT_TRUE(decoded.empty());
}

// --- header / directory ---------------------------------------------------------

TEST(RefFormatTest, HeaderRoundTrip) {
  RefHeader header;
  header.directory_offset = 1234;
  header.num_events = 99;
  header.cluster_events = 256;
  header.num_branches = 14;
  std::string bytes;
  header.SerializeTo(&bytes);
  EXPECT_EQ(bytes.size(), RefHeader::kSerializedSize);
  ASSERT_OK_AND_ASSIGN(
      RefHeader parsed,
      RefHeader::Deserialize(reinterpret_cast<const uint8_t*>(bytes.data()),
                             bytes.size()));
  EXPECT_EQ(parsed.directory_offset, 1234);
  EXPECT_EQ(parsed.num_events, 99);
  EXPECT_EQ(parsed.num_branches, 14);
}

TEST(RefFormatTest, BadMagicRejected) {
  std::string bytes(RefHeader::kSerializedSize, '\0');
  EXPECT_FALSE(RefHeader::Deserialize(
                   reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size())
                   .ok());
}

TEST(RefFormatTest, ClusterLookup) {
  RefBranch branch;
  branch.clusters = {{0, 0, 0, 100}, {0, 0, 100, 50}, {0, 0, 150, 25}};
  EXPECT_EQ(branch.num_values(), 175);
  EXPECT_EQ(branch.ClusterFor(0), 0);
  EXPECT_EQ(branch.ClusterFor(99), 0);
  EXPECT_EQ(branch.ClusterFor(100), 1);
  EXPECT_EQ(branch.ClusterFor(174), 2);
  EXPECT_EQ(branch.ClusterFor(175), -1);
  EXPECT_EQ(branch.ClusterFor(-1), -1);
}

// --- buffer pool -----------------------------------------------------------------

TEST(BufferPoolTest, HitMissAccounting) {
  ClusterBufferPool pool(1 << 20);
  uint64_t key = ClusterBufferPool::MakeKey(3, 7);
  EXPECT_EQ(pool.Get(key), nullptr);
  EXPECT_EQ(pool.misses(), 1);
  pool.Put(key, std::vector<uint8_t>(100, 1));
  ClusterDataPtr hit = pool.Get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  EXPECT_EQ(pool.hits(), 1);
}

TEST(BufferPoolTest, EvictsLruOverCapacity) {
  // One shard: the classic single-LRU eviction order is observable.
  ClusterBufferPool pool(250, /*num_shards=*/1);
  pool.Put(1, std::vector<uint8_t>(100));
  pool.Put(2, std::vector<uint8_t>(100));
  EXPECT_NE(pool.Get(1), nullptr);  // refresh 1; 2 is now LRU
  pool.Put(3, std::vector<uint8_t>(100));
  EXPECT_EQ(pool.Get(2), nullptr);  // evicted
  EXPECT_NE(pool.Get(1), nullptr);
  EXPECT_NE(pool.Get(3), nullptr);
  EXPECT_GE(pool.evictions(), 1);
}

TEST(BufferPoolTest, EvictedHandleStaysReadable) {
  // The pinning rule: a handle taken before eviction keeps the bytes alive.
  ClusterBufferPool pool(150, /*num_shards=*/1);
  ClusterDataPtr pinned = pool.Put(1, std::vector<uint8_t>(100, 7));
  pool.Put(2, std::vector<uint8_t>(100, 9));  // evicts key 1
  EXPECT_EQ(pool.Get(1), nullptr);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->at(42), 7);  // still valid through the pin
}

TEST(BufferPoolTest, ZeroCapacityShortCircuits) {
  ClusterBufferPool pool(0);
  ClusterDataPtr direct = pool.Put(1, std::vector<uint8_t>(64, 3));
  ASSERT_NE(direct, nullptr);  // caller still gets its decoded bytes
  EXPECT_EQ(direct->size(), 64u);
  EXPECT_EQ(pool.Get(1), nullptr);  // nothing was cached
  EXPECT_EQ(pool.bytes_cached(), 0);
  EXPECT_EQ(pool.Stats().entries, 0);
}

TEST(BufferPoolTest, DuplicatePutSharesFirstCopy) {
  ClusterBufferPool pool(1 << 20);
  ClusterDataPtr first = pool.Put(5, std::vector<uint8_t>(10, 1));
  ClusterDataPtr second = pool.Put(5, std::vector<uint8_t>(10, 2));
  EXPECT_EQ(first.get(), second.get());  // racing decoders share one buffer
  EXPECT_EQ(pool.bytes_cached(), 10);
}

TEST(BufferPoolTest, ClearDropsEverything) {
  ClusterBufferPool pool(1 << 20);
  pool.Put(1, std::vector<uint8_t>(10));
  pool.Clear();
  EXPECT_EQ(pool.Get(1), nullptr);
  EXPECT_EQ(pool.bytes_cached(), 0);
}

// --- writer / reader round trip ---------------------------------------------------

using RefIoTest = testing::TempDirTest;

Event MakeEvent(int64_t id, int32_t run, int n_mu, int n_el, int n_jet) {
  Event e;
  e.event_id = id;
  e.run_number = run;
  for (int i = 0; i < n_mu; ++i) {
    e.muons.push_back(Particle{10.0f + static_cast<float>(i), 0.5f, 0.1f});
  }
  for (int i = 0; i < n_el; ++i) {
    e.electrons.push_back(Particle{20.0f + static_cast<float>(i), -1.0f, 0.2f});
  }
  for (int i = 0; i < n_jet; ++i) {
    e.jets.push_back(Particle{30.0f + static_cast<float>(i), 2.0f, 0.3f});
  }
  return e;
}

TEST_F(RefIoTest, RoundTripEvents) {
  std::string path = Path("events.ref");
  std::vector<Event> events;
  for (int64_t i = 0; i < 300; ++i) {
    events.push_back(MakeEvent(i, 2000 + static_cast<int32_t>(i % 5),
                               static_cast<int>(i % 4), static_cast<int>(i % 3),
                               static_cast<int>(i % 6)));
  }
  {
    RefWriter writer(path, /*cluster_events=*/64);
    ASSERT_OK(writer.Open());
    for (const Event& e : events) ASSERT_OK(writer.AppendEvent(e));
    ASSERT_OK(writer.Close());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<RefReader> reader,
                       RefReader::Open(path));
  ASSERT_EQ(reader->num_events(), 300);
  Event e;
  for (int64_t i : {int64_t{0}, int64_t{63}, int64_t{64}, int64_t{299}}) {
    ASSERT_OK(reader->GetEntry(i, &e));
    EXPECT_EQ(e.event_id, events[static_cast<size_t>(i)].event_id);
    EXPECT_EQ(e.run_number, events[static_cast<size_t>(i)].run_number);
    ASSERT_EQ(e.muons.size(), events[static_cast<size_t>(i)].muons.size());
    for (size_t m = 0; m < e.muons.size(); ++m) {
      EXPECT_FLOAT_EQ(e.muons[m].pt,
                      events[static_cast<size_t>(i)].muons[m].pt);
      EXPECT_FLOAT_EQ(e.muons[m].eta,
                      events[static_cast<size_t>(i)].muons[m].eta);
    }
    EXPECT_EQ(e.jets.size(), events[static_cast<size_t>(i)].jets.size());
  }
}

TEST_F(RefIoTest, IdBasedFieldAccess) {
  std::string path = Path("id.ref");
  {
    RefWriter writer(path, 16);
    ASSERT_OK(writer.Open());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_OK(writer.AppendEvent(MakeEvent(i * 7, 1, 2, 1, 1)));
    }
    ASSERT_OK(writer.Close());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<RefReader> reader,
                       RefReader::Open(path));
  int id_branch = reader->BranchIndex(ref_branches::kEventId);
  ASSERT_GE(id_branch, 0);
  ASSERT_OK_AND_ASSIGN(int64_t id42, reader->ReadInt64(id_branch, 42));
  EXPECT_EQ(id42, 42 * 7);
  // Flat particle access: every event has 2 muons; muon 2k belongs to event k.
  int pt_branch = reader->BranchIndex("muon/pt");
  ASSERT_OK_AND_ASSIGN(float pt, reader->ReadFloat(pt_branch, 85));
  EXPECT_FLOAT_EQ(pt, 85 % 2 == 0 ? 10.0f : 11.0f);
  EXPECT_EQ(reader->EventOfFlatIndex(kMuon, 85), 42);
  int64_t begin, count;
  reader->GroupRange(kMuon, 42, &begin, &count);
  EXPECT_EQ(begin, 84);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(reader->GroupTotal(kMuon), 200);
}

TEST_F(RefIoTest, ReadRangeSpansClusters) {
  std::string path = Path("span.ref");
  {
    RefWriter writer(path, 10);
    ASSERT_OK(writer.Open());
    for (int64_t i = 0; i < 55; ++i) {
      ASSERT_OK(writer.AppendEvent(MakeEvent(i, 1, 0, 0, 0)));
    }
    ASSERT_OK(writer.Close());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<RefReader> reader,
                       RefReader::Open(path));
  int id_branch = reader->BranchIndex(ref_branches::kEventId);
  std::vector<int64_t> ids(55);
  ASSERT_OK(reader->ReadRange(id_branch, 0, 55, ids.data()));
  for (int64_t i = 0; i < 55; ++i) EXPECT_EQ(ids[static_cast<size_t>(i)], i);
  // Out-of-range rejected.
  int64_t v;
  EXPECT_FALSE(reader->ReadRange(id_branch, 50, 10, &v).ok());
  EXPECT_FALSE(reader->ReadRange(id_branch, -1, 1, &v).ok());
}

TEST_F(RefIoTest, BufferPoolWarmsAcrossReads) {
  std::string path = Path("pool.ref");
  {
    RefWriter writer(path, 8);
    ASSERT_OK(writer.Open());
    for (int64_t i = 0; i < 64; ++i) {
      ASSERT_OK(writer.AppendEvent(MakeEvent(i, 1, 1, 1, 1)));
    }
    ASSERT_OK(writer.Close());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<RefReader> reader,
                       RefReader::Open(path));
  Event e;
  ASSERT_OK(reader->GetEntry(5, &e));
  int64_t misses_cold = reader->pool()->misses();
  ASSERT_OK(reader->GetEntry(5, &e));
  EXPECT_EQ(reader->pool()->misses(), misses_cold);  // fully cached
  EXPECT_GT(reader->pool()->hits(), 0);
  reader->ClearCache();
  ASSERT_OK(reader->GetEntry(5, &e));
  EXPECT_GT(reader->pool()->misses(), misses_cold);
}

// --- generator -------------------------------------------------------------------

TEST(EventGeneratorTest, DeterministicForSeed) {
  EventGenOptions options;
  options.num_events = 50;
  EventGenerator a(options), b(options);
  for (int i = 0; i < 50; ++i) {
    Event ea = a.Next();
    Event eb = b.Next();
    EXPECT_EQ(ea.event_id, eb.event_id);
    EXPECT_EQ(ea.run_number, eb.run_number);
    ASSERT_EQ(ea.muons.size(), eb.muons.size());
    for (size_t m = 0; m < ea.muons.size(); ++m) {
      EXPECT_FLOAT_EQ(ea.muons[m].pt, eb.muons[m].pt);
    }
  }
}

TEST(EventGeneratorTest, PhysicalShape) {
  EventGenOptions options;
  options.num_events = 2000;
  EventGenerator gen(options);
  int64_t total_muons = 0;
  for (int i = 0; i < 2000; ++i) {
    Event e = gen.Next();
    total_muons += static_cast<int64_t>(e.muons.size());
    for (const Particle& p : e.muons) {
      EXPECT_GT(p.pt, 0);
      EXPECT_LE(std::fabs(p.eta), options.eta_max);
      EXPECT_LE(std::fabs(p.phi), static_cast<float>(M_PI) + 1e-4f);
    }
    EXPECT_GE(e.run_number, options.first_run);
    EXPECT_LT(e.run_number, options.first_run + options.num_runs);
  }
  EXPECT_GT(total_muons, 1000);  // mean multiplicity is real
}

TEST(EventGeneratorTest, GoodRunsSubset) {
  EventGenOptions options;
  std::vector<int32_t> good = EventGenerator::GoodRuns(options);
  EXPECT_FALSE(good.empty());
  EXPECT_LE(static_cast<int>(good.size()), options.num_runs);
  for (int32_t r : good) {
    EXPECT_GE(r, options.first_run);
    EXPECT_LT(r, options.first_run + options.num_runs);
  }
  // Deterministic.
  EXPECT_EQ(good, EventGenerator::GoodRuns(options));
}

using GeneratorIoTest = testing::TempDirTest;

TEST_F(GeneratorIoTest, WriteRefFileAndGoodRuns) {
  EventGenOptions options;
  options.num_events = 200;
  std::string ref_path = Path("gen.ref");
  ASSERT_OK(WriteRefFile(ref_path, options, 32));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<RefReader> reader,
                       RefReader::Open(ref_path));
  EXPECT_EQ(reader->num_events(), 200);
  // File contents match a fresh generator stream.
  EventGenerator gen(options);
  Event expected = gen.Next();
  Event actual;
  ASSERT_OK(reader->GetEntry(0, &actual));
  EXPECT_EQ(actual.event_id, expected.event_id);
  ASSERT_EQ(actual.muons.size(), expected.muons.size());

  std::string runs_path = Path("runs.csv");
  ASSERT_OK(WriteGoodRunsCsv(runs_path, options));
  ASSERT_OK_AND_ASSIGN(std::string text, ReadFileToString(runs_path));
  EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace raw
