// ThreadPool semantics the parallel scan layer leans on: every submitted
// task runs exactly once, exceptions surface through futures, errors in
// ParallelFor propagate, nested submission cannot deadlock (waiters help
// drain the queue), and a many-tiny-tasks stress run completes. The stress
// cases double as the TSan targets of the `concurrency` ctest label.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/deadline.h"
#include "common/file_lock.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"

namespace raw {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&runs] { ++runs; }));
  }
  for (auto& fut : futures) fut.get();
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&runs] { ++runs; });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(runs.load(), 50);
}

TEST(ThreadPoolTest, TaskExceptionSurfacesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  const int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ASSERT_OK(pool.ParallelFor(n, 4, [&hits](int64_t i) {
    ++hits[static_cast<size_t>(i)];
    return Status::OK();
  }));
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskError) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(100, 4, [](int64_t i) {
    if (i == 37) return Status::Internal("failed at 37");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("failed at 37"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForFromInsidePoolTaskDoesNotDeadlock) {
  // Nested submission: every outer task fans out again on the same pool.
  // The outer tasks participate in their inner loops (and waiters drain the
  // queue), so this completes even though outer tasks occupy every worker.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  ASSERT_OK(pool.ParallelFor(8, 8, [&pool, &total](int64_t) {
    return pool.ParallelFor(16, 4, [&total](int64_t) {
      ++total;
      return Status::OK();
    });
  }));
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedSubmitWithHelpWaitCompletes) {
  ThreadPool pool(1);  // a single worker forces the outer task to help
  std::atomic<int> inner_runs{0};
  std::future<void> outer = pool.Submit([&pool, &inner_runs] {
    std::vector<std::future<void>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back(pool.Submit([&inner_runs] { ++inner_runs; }));
    }
    for (auto& fut : inner) pool.HelpWait(fut);
  });
  pool.HelpWait(outer);
  outer.get();
  EXPECT_EQ(inner_runs.load(), 8);
}

TEST(ThreadPoolStressTest, ManyTinyTasks) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  const int64_t n = 20000;
  ASSERT_OK(pool.ParallelFor(n, 8, [&sum](int64_t i) {
    sum += i;
    return Status::OK();
  }));
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolStressTest, ConcurrentSubmittersAndHelpers) {
  ThreadPool pool(4);
  std::atomic<int64_t> runs{0};
  // Several outer tasks submit bursts of tiny tasks and help drain them.
  ASSERT_OK(pool.ParallelFor(16, 8, [&pool, &runs](int64_t) {
    std::vector<std::future<void>> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(pool.Submit([&runs] { ++runs; }));
    }
    for (auto& fut : batch) pool.HelpWait(fut);
    return Status::OK();
  }));
  EXPECT_EQ(runs.load(), 16 * 64);
}

TEST(ThreadPoolTest, SharedPoolIsStableAndWideEnoughForTests) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 8);
}

// --- FileLock (the cross-process dataset guard) ------------------------------

TEST(FileLockTest, ExclusionBetweenHandles) {
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_lock_"));
  std::string path = dir.FilePath("x.lock");
  ASSERT_OK_AND_ASSIGN(FileLock held, FileLock::Acquire(path));
  // flock exclusion is per open file description; a second acquisition from
  // this process still contends because TryAcquire opens the file anew.
  auto second = FileLock::TryAcquire(path);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  held.Release();
  ASSERT_OK_AND_ASSIGN(FileLock reacquired, FileLock::TryAcquire(path));
  reacquired.Release();
}

TEST(FileLockTest, ManyThreadsContendWithoutDeadlock) {
  // flock is a cross-process primitive; TSan cannot see a happens-before
  // edge through it, so the critical sections only touch an atomic. What
  // this exercises: 8 threads × blocking Acquire on one lock file, every
  // acquisition succeeds, nothing deadlocks or leaks an fd.
  ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Create("raw_lock_"));
  std::string path = dir.FilePath("c.lock");
  ThreadPool pool(8);
  std::atomic<int64_t> acquisitions{0};
  ASSERT_OK(pool.ParallelFor(64, 8, [&](int64_t) {
    RAW_ASSIGN_OR_RETURN(FileLock lock, FileLock::Acquire(path));
    ++acquisitions;
    return Status::OK();
  }));
  EXPECT_EQ(acquisitions.load(), 64);
}


TEST(ThreadPoolTest, DeadlineParallelForCompletesBeforeExpiry) {
  ThreadPool pool(4);
  std::atomic<int64_t> hits{0};
  ASSERT_OK(pool.ParallelFor(64, 4, Deadline::AfterMillis(60 * 1000),
                             [&hits](int64_t) {
                               hits.fetch_add(1);
                               return Status::OK();
                             }));
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolTest, DeadlineParallelForInfiniteDeadlineRunsAll) {
  ThreadPool pool(4);
  std::atomic<int64_t> hits{0};
  ASSERT_OK(pool.ParallelFor(32, 4, Deadline(), [&hits](int64_t) {
    hits.fetch_add(1);
    return Status::OK();
  }));
  EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPoolTest, DeadlineParallelForAbandonsExpiredWork) {
  ThreadPool pool(4);
  std::atomic<int64_t> hits{0};
  Status st = pool.ParallelFor(1000, 4, Deadline::Expired(),
                               [&hits](int64_t) {
                                 hits.fetch_add(1);
                                 return Status::OK();
                               });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(hits.load(), 0);
}

}  // namespace
}  // namespace raw
