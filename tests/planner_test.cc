// Planner- and executor-level behaviours: plan shape (EXPLAIN descriptions),
// cache side effects, adaptive state reset, error paths, and REF JIT plans.

#include <gtest/gtest.h>

#include "csv/csv_writer.h"
#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

class PlannerTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    spec_ = TableSpec::UniformInt32("t", 8, 1500, 9);
    ASSERT_OK(WriteCsvFile(spec_, Path("t.csv")));
    ASSERT_OK(WriteBinaryFile(spec_, Path("t.bin")));
  }

  std::unique_ptr<RawEngine> NewEngine(int stride = 3) {
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterCsv("t", Path("t.csv"), spec_.ToSchema(),
                                  CsvOptions(), stride));
    EXPECT_OK(engine->RegisterBinary("tb", Path("t.bin"), spec_.ToSchema()));
    return engine;
  }

  TableSpec spec_;
};

TEST_F(PlannerTest, FirstQueryPlanIsSequentialScan) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col2) FROM t WHERE col0 < 500000000",
                    options));
  EXPECT_NE(result.plan_description.find("[seq-scan t]"), std::string::npos)
      << result.plan_description;
  EXPECT_NE(result.plan_description.find("[filter"), std::string::npos);
  EXPECT_NE(result.plan_description.find("[aggregate]"), std::string::npos);
}

TEST_F(PlannerTest, SecondQueryPlanUsesMapAndCache) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kShreds;
  ASSERT_OK(engine->Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999",
                          options)
                .status());
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col5) FROM t WHERE col0 < 100000000",
                    options));
  // Predicate column served from the shred cache, col5 fetched late.
  EXPECT_NE(result.plan_description.find("[cache-scan t]"), std::string::npos)
      << result.plan_description;
  EXPECT_NE(result.plan_description.find("[late-scan t:5,]"),
            std::string::npos)
      << result.plan_description;
}

TEST_F(PlannerTest, FullColumnsPlanHasNoLateScan) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kFullColumns;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col5) FROM t WHERE col0 < 100000000",
                    options));
  EXPECT_EQ(result.plan_description.find("[late-scan"), std::string::npos)
      << result.plan_description;
}

TEST_F(PlannerTest, MultiColumnShredsFetchTogether) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kMultiColumnShreds;
  ASSERT_OK(engine->Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999",
                          options)
                .status());
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col5) FROM t WHERE col0 < 500000000 AND "
                    "col4 < 500000000",
                    options));
  // col4 (second predicate) and col5 (aggregate input) in one late scan.
  EXPECT_NE(result.plan_description.find("[late-scan t:4,5,]"),
            std::string::npos)
      << result.plan_description;
}

TEST_F(PlannerTest, ShredsFetchSeparately) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kShreds;
  ASSERT_OK(engine->Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999",
                          options)
                .status());
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col5) FROM t WHERE col0 < 500000000 AND "
                    "col4 < 500000000",
                    options));
  EXPECT_NE(result.plan_description.find("[late-scan t:4,]"),
            std::string::npos)
      << result.plan_description;
  EXPECT_NE(result.plan_description.find("[late-scan t:5,]"),
            std::string::npos)
      << result.plan_description;
}

TEST_F(PlannerTest, RowCountDiscoveredOnFullScan) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK(engine->Query("SELECT COUNT(*) FROM t WHERE col0 >= 0", options)
                .status());
  EXPECT_EQ(engine->Stats().table("t")->row_count, spec_.rows);
}

TEST_F(PlannerTest, CachePopulationCanBeDisabled) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.populate_shred_cache = false;
  options.build_positional_map = false;
  ASSERT_OK(engine->Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999",
                          options)
                .status());
  EXPECT_EQ(engine->Stats().shred_cache.entries, 0);
  EXPECT_EQ(engine->Stats().table("t")->pmap_rows, 0);
}

TEST_F(PlannerTest, ResetAdaptiveStateForgetsEverything) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK(engine->Query("SELECT MAX(col0) FROM t WHERE col0 < 999999999",
                          options)
                .status());
  EXPECT_GT(engine->Stats().shred_cache.entries, 0);
  EXPECT_GT(engine->Stats().table("t")->pmap_rows, 0);
  engine->ResetAdaptiveState();
  EXPECT_EQ(engine->Stats().shred_cache.entries, 0);
  EXPECT_EQ(engine->Stats().table("t")->pmap_rows, 0);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const PositionalMap> pmap,
                       engine->PositionalMapSnapshot("t"));
  EXPECT_EQ(pmap, nullptr);
  // Still queryable afterwards.
  ASSERT_OK(engine->Query("SELECT COUNT(*) FROM t WHERE col0 >= 0", options)
                .status());
}

TEST_F(PlannerTest, ErrorsSurfaceCleanly) {
  auto engine = NewEngine();
  // Unknown column.
  EXPECT_FALSE(engine->Query("SELECT MAX(nope) FROM t").ok());
  // Unknown table.
  EXPECT_FALSE(engine->Query("SELECT COUNT(*) FROM nope").ok());
  // String literal against numeric column.
  EXPECT_FALSE(engine->Query("SELECT COUNT(*) FROM t WHERE col0 < 'x'").ok());
  // Aggregate over a join of a table with itself (ambiguous column).
  EXPECT_FALSE(
      engine->Query("SELECT MAX(col1) FROM t JOIN tb ON col0 = col0").ok());
}

TEST_F(PlannerTest, CountOverEmptyResult) {
  auto engine = NewEngine();
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT COUNT(*) FROM t WHERE col0 < -1"));
  ASSERT_OK_AND_ASSIGN(Datum count, result.Scalar());
  EXPECT_EQ(count.int64_value(), 0);
}

TEST_F(PlannerTest, QueryResultAccessors) {
  auto engine = NewEngine();
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       engine->Query("SELECT col0, col1 FROM t LIMIT 4"));
  EXPECT_EQ(result.num_rows(), 4);
  EXPECT_EQ(result.num_columns(), 2);
  EXPECT_TRUE(result.ValueAt(0, 0).ok());
  EXPECT_FALSE(result.ValueAt(4, 0).ok());
  EXPECT_FALSE(result.ValueAt(0, 2).ok());
  EXPECT_FALSE(result.Scalar().ok());  // not 1x1
  EXPECT_GE(result.total_seconds(), 0);
}

TEST_F(PlannerTest, BatchRowsOptionRespected) {
  for (int64_t batch_rows : {1, 7, 100, 100000}) {
    auto engine = NewEngine();
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.batch_rows = batch_rows;
    ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        engine->Query("SELECT COUNT(*) FROM t WHERE col0 >= 0", options));
    ASSERT_OK_AND_ASSIGN(Datum count, result.Scalar());
    EXPECT_EQ(count.int64_value(), spec_.rows) << batch_rows;
  }
}

TEST_F(PlannerTest, StringColumnsFallBackFromJit) {
  // A CSV with a string column: the JIT path must route string-bearing scans
  // through the interpreted access path and still answer correctly.
  Schema schema{{"id", DataType::kInt32},
                {"name", DataType::kString},
                {"score", DataType::kFloat64}};
  {
    CsvWriter writer(Path("s.csv"));
    ASSERT_OK(writer.Open());
    const char* names[] = {"ada", "grace", "edsger", "barbara"};
    for (int i = 0; i < 40; ++i) {
      writer.AppendInt32(i);
      writer.AppendString(names[i % 4]);
      writer.AppendFloat64(i * 0.5);
      writer.EndRow();
    }
    ASSERT_OK(writer.Close());
  }
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv("s", Path("s.csv"), schema));
  if (!engine.Stats().jit_compiler_available()) GTEST_SKIP();
  PlannerOptions options;
  options.access_path = AccessPathKind::kJit;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT name, score FROM s WHERE id < 2", options));
  ASSERT_EQ(result.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(Datum name0, result.ValueAt(0, 0));
  EXPECT_EQ(name0.string_value(), "ada");
  ASSERT_OK_AND_ASSIGN(Datum name1, result.ValueAt(1, 0));
  EXPECT_EQ(name1.string_value(), "grace");
  // Equality predicate on the string column.
  ASSERT_OK_AND_ASSIGN(
      QueryResult grace,
      engine.Query("SELECT COUNT(*) FROM s WHERE name = 'grace'", options));
  ASSERT_OK_AND_ASSIGN(Datum count, grace.Scalar());
  EXPECT_EQ(count.int64_value(), 10);
}

// --- REF JIT plan ----------------------------------------------------------------

class RefPlannerTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    EventGenOptions options;
    options.num_events = 250;
    ASSERT_OK(WriteRefFile(Path("e.ref"), options, 50));
  }
};

TEST_F(RefPlannerTest, JitAndInsituAgreeOnRefTables) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("a", Path("e.ref")));
  if (!engine.Stats().jit_compiler_available()) {
    GTEST_SKIP() << "no compiler";
  }
  for (const char* sql :
       {"SELECT COUNT(*) FROM a_events WHERE runNumber > 2010",
        "SELECT MAX(pt) FROM a_muons WHERE eta < 1.0",
        "SELECT COUNT(*) FROM a_jets WHERE pt > 40.0"}) {
    PlannerOptions jit;
    jit.access_path = AccessPathKind::kJit;
    PlannerOptions insitu;
    insitu.access_path = AccessPathKind::kInSitu;
    RawEngine engine_jit;
    ASSERT_OK(engine_jit.RegisterRef("a", Path("e.ref")));
    RawEngine engine_insitu;
    ASSERT_OK(engine_insitu.RegisterRef("a", Path("e.ref")));
    ASSERT_OK_AND_ASSIGN(QueryResult rj, engine_jit.Query(sql, jit));
    ASSERT_OK_AND_ASSIGN(QueryResult ri, engine_insitu.Query(sql, insitu));
    ASSERT_OK_AND_ASSIGN(Datum vj, rj.Scalar());
    ASSERT_OK_AND_ASSIGN(Datum vi, ri.Scalar());
    EXPECT_EQ(vj, vi) << sql;
  }
}

}  // namespace
}  // namespace raw
