#ifndef RAW_TESTS_TEST_UTIL_H_
#define RAW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/temp_dir.h"

// Assertion helpers for Status / StatusOr.
#define ASSERT_OK(expr)                                  \
  do {                                                   \
    ::raw::Status _st = (expr);                          \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    ::raw::Status _st = (expr);                          \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  auto RAW_CONCAT(_t_sor_, __LINE__) = (expr);                \
  ASSERT_TRUE(RAW_CONCAT(_t_sor_, __LINE__).ok())             \
      << RAW_CONCAT(_t_sor_, __LINE__).status().ToString();   \
  lhs = std::move(RAW_CONCAT(_t_sor_, __LINE__)).value()

namespace raw::testing {

/// Per-test temporary directory fixture mixin.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("raw_test_");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_ = std::make_unique<TempDir>(std::move(dir).value());
  }

  std::string Path(const std::string& name) const {
    return dir_->FilePath(name);
  }

  std::unique_ptr<TempDir> dir_;
};

}  // namespace raw::testing

#endif  // RAW_TESTS_TEST_UTIL_H_
