// The self-tuning tier under adversarial conditions: idle detection firing
// deterministically, background builds preempted by foreground work within a
// single batch, background-built positional maps bit-for-bit identical to
// query-built ones (same claim/scan/publish protocol), the semantic result
// cache hitting/invalidating on reset and on file change, and the whole
// worker surviving a ResetAdaptiveState() hammer. Runs under TSan in CI
// (label: concurrency).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/raw_engine.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"
#include "workload/table_spec.h"

namespace raw {
namespace {

using Clock = std::chrono::steady_clock;

/// Polls `pred` every millisecond until it holds or `budget_ms` elapses.
bool WaitFor(const std::function<bool()>& pred, int64_t budget_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class AutotuneTest : public testing::TempDirTest {
 protected:
  static constexpr int64_t kRows = 3000;

  void SetUp() override {
    testing::TempDirTest::SetUp();
    spec_ = TableSpec::UniformInt32("t", 8, kRows, /*seed=*/91);
    ASSERT_OK(WriteCsvFile(spec_, Path("t.csv")));
  }

  std::unique_ptr<RawEngine> NewEngine(RawEngineOptions options) {
    auto engine = std::make_unique<RawEngine>(options);
    EXPECT_OK(engine->RegisterCsv("t", Path("t.csv"), spec_.ToSchema(),
                                  CsvOptions(), /*pmap_stride=*/3));
    return engine;
  }

  /// COUNT(*) under a col0 predicate — the workhorse query of this suite.
  static constexpr const char* kCountSql =
      "SELECT COUNT(*) FROM t WHERE col0 < 500000000";

  int64_t Count(RawEngine* engine, const std::string& sql = kCountSql) {
    auto result = engine->Query(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return -1;
    auto scalar = result->Scalar();
    EXPECT_TRUE(scalar.ok()) << scalar.status().ToString();
    return scalar.ok() ? scalar->int64_value() : -1;
  }

  TableSpec spec_;
};

// A disabled engine (the default) must be completely inert: no worker, no
// counters moving, stats all zero no matter how much foreground work runs.
TEST_F(AutotuneTest, DisabledEngineIsInert) {
  auto engine = NewEngine(RawEngineOptions());
  ASSERT_NE(engine->materializer(), nullptr);
  EXPECT_FALSE(engine->materializer()->enabled());
  EXPECT_EQ(engine->result_cache(), nullptr);
  for (int i = 0; i < 3; ++i) Count(engine.get());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.materializer.passes, 0);
  EXPECT_EQ(stats.materializer.actions_started, 0);
  EXPECT_EQ(stats.result_cache.hits + stats.result_cache.misses, 0);
  // Access mining still runs (it is free) — heat is recorded even when
  // nothing consumes it yet.
  const TableStats* t = stats.table("t");
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->scans, 3);
}

// Idle detection is a deterministic predicate, not a heuristic: false while
// (or right after) queries run, true once the engine has been quiet for
// idle_wait_ms.
TEST_F(AutotuneTest, IdleTriggerDeterminism) {
  RawEngineOptions options;
  options.autotune.enabled = true;
  options.autotune.idle_wait_ms = 500;
  // Heat thresholds high enough that the worker never actually builds — this
  // test watches the predicate, not the builds.
  options.autotune.min_table_scans = 1000000;
  auto engine = NewEngine(options);

  Count(engine.get());
  // Immediately after a query the quiet period cannot have elapsed.
  EXPECT_FALSE(engine->materializer()->EngineIdle());
  // After sitting quiet for 3x the idle threshold, it must have.
  EXPECT_TRUE(WaitFor([&] { return engine->materializer()->EngineIdle(); },
                      3 * options.autotune.idle_wait_ms));
  // Any foreground activity resets the clock.
  Count(engine.get());
  EXPECT_FALSE(engine->materializer()->EngineIdle());
}

// The tentpole correctness claim: a positional map completed by the
// background worker is bit-for-bit the map a foreground query would have
// built, because both run the identical claim -> scan -> publish protocol.
TEST_F(AutotuneTest, BackgroundPmapMatchesQueryBuiltPmap) {
  // Engine A: heat up the table, wipe adaptive state (heat survives — it is
  // workload history, not adaptive state), then let the worker rebuild the
  // map with no foreground help.
  RawEngineOptions opts_a;
  opts_a.autotune.enabled = true;
  opts_a.autotune.idle_wait_ms = 50;
  opts_a.autotune.poll_ms = 5;
  auto a = NewEngine(opts_a);
  Count(a.get());
  Count(a.get());
  a->ResetAdaptiveState();
  ASSERT_TRUE(WaitFor(
      [&] {
        const EngineStats stats = a->Stats();
        const TableStats* t = stats.table("t");
        return stats.materializer.pmaps_built >= 1 && t != nullptr &&
               t->pmap_rows == kRows;
      },
      10000))
      << "background navigation build never completed";

  // Engine B: plain engine, map built as a query side effect.
  auto b = NewEngine(RawEngineOptions());
  Count(b.get());
  ASSERT_EQ(b->Stats().table("t")->pmap_rows, kRows);

  ASSERT_OK_AND_ASSIGN(auto pmap_a, a->PositionalMapSnapshot("t"));
  ASSERT_OK_AND_ASSIGN(auto pmap_b, b->PositionalMapSnapshot("t"));
  ASSERT_NE(pmap_a, nullptr);
  ASSERT_NE(pmap_b, nullptr);
  ASSERT_EQ(pmap_a->num_rows(), pmap_b->num_rows());
  ASSERT_EQ(pmap_a->num_columns(), pmap_b->num_columns());
  ASSERT_EQ(pmap_a->tracked_columns(), pmap_b->tracked_columns());
  for (int64_t row = 0; row < pmap_a->num_rows(); ++row) {
    ASSERT_EQ(pmap_a->RowStart(row), pmap_b->RowStart(row)) << "row " << row;
    for (int slot = 0; slot < pmap_a->num_tracked(); ++slot) {
      ASSERT_EQ(pmap_a->Position(row, slot), pmap_b->Position(row, slot))
          << "row " << row << " slot " << slot;
    }
  }

  // And the background-warmed engine answers queries identically.
  EXPECT_EQ(Count(a.get()), Count(b.get()));
}

// Preemption contract: the instant foreground work arrives, the in-flight
// build aborts at the next batch boundary — zero additional batches are
// pulled — and the foreground query never waits on background work.
TEST_F(AutotuneTest, PreemptionBoundedByOneBatch) {
  std::atomic<int64_t> hook_calls{0};
  std::atomic<bool> released{false};

  RawEngineOptions options;
  options.autotune.enabled = true;
  options.autotune.idle_wait_ms = 500;  // retry >= 500ms after preemption
  options.autotune.poll_ms = 5;
  options.autotune.batch_rows = 64;  // many batches over kRows rows
  options.autotune.batch_hook = [&] {
    const int64_t n = hook_calls.fetch_add(1) + 1;
    if (n != 3) return;
    // Hold the build mid-flight (two batches consumed, yield check for the
    // third not yet run) until the test releases it. Bounded so a failed
    // assertion can't deadlock engine teardown.
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (!released.load(std::memory_order_acquire) &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  auto engine = NewEngine(options);

  // Heat + navigation state via foreground queries, then go idle; the worker
  // starts a build (full load of this small hot table) and parks in the hook.
  const int64_t expected = Count(engine.get());
  Count(engine.get());
  ASSERT_TRUE(WaitFor([&] { return hook_calls.load() >= 3; }, 10000))
      << "background build never started";
  ASSERT_GT(engine->Stats().materializer.actions_started, 0);

  // Foreground query while the build is provably mid-flight: must succeed
  // promptly — the build thread is parked, so any dependence would hang.
  const auto t0 = Clock::now();
  EXPECT_EQ(Count(engine.get()), expected);
  const auto foreground_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count();
  // Generous bound: a plain warm query takes single-digit ms; waiting on the
  // parked build would take the full 30s hook timeout.
  EXPECT_LT(foreground_ms, 5000);

  // That query's admission set the preemption token. Release the build: its
  // very next yield check must abort it without pulling batch three.
  const int64_t calls_at_release = hook_calls.load();
  EXPECT_EQ(calls_at_release, 3);
  released.store(true, std::memory_order_release);
  ASSERT_TRUE(WaitFor(
      [&] { return engine->Stats().materializer.actions_preempted >= 1; },
      5000))
      << "build was not preempted";
  // The retry needs >= idle_wait_ms of fresh quiet, so reading immediately
  // after the preemption shows the aborted attempt's batch count untouched.
  EXPECT_EQ(hook_calls.load(), calls_at_release)
      << "build pulled batches after the preemption signal";
}

// Result cache: second identical query is a hit (no plan, no execution),
// ResetAdaptiveState() invalidates, and the post-reset query recomputes.
TEST_F(AutotuneTest, ResultCacheHitAndResetInvalidation) {
  RawEngineOptions options;
  options.result_cache_bytes = 8ll << 20;
  auto engine = NewEngine(options);
  ASSERT_NE(engine->result_cache(), nullptr);

  ASSERT_OK_AND_ASSIGN(QueryResult cold, engine->Query(kCountSql));
  ASSERT_OK_AND_ASSIGN(Datum cold_count, cold.Scalar());
  {
    const EngineStats stats = engine->Stats();
    EXPECT_EQ(stats.result_cache.misses, 1);
    EXPECT_EQ(stats.result_cache.inserted, 1);
    EXPECT_EQ(stats.result_cache.hits, 0);
  }

  ASSERT_OK_AND_ASSIGN(QueryResult warm, engine->Query(kCountSql));
  ASSERT_OK_AND_ASSIGN(Datum warm_count, warm.Scalar());
  EXPECT_EQ(cold_count, warm_count);
  EXPECT_NE(warm.plan_description.find("[result-cache hit]"),
            std::string::npos)
      << warm.plan_description;
  EXPECT_EQ(warm.plan_seconds, 0);
  EXPECT_EQ(warm.execute_seconds, 0);
  {
    const EngineStats stats = engine->Stats();
    EXPECT_EQ(stats.result_cache.hits, 1);
    // The hit skipped planning and execution entirely.
    EXPECT_EQ(stats.queries_executed, 1);
    EXPECT_EQ(stats.queries_planned, 1);
  }

  // A different query is its own entry, not a collision.
  Count(engine.get(), "SELECT COUNT(*) FROM t WHERE col0 < 100000000");
  EXPECT_EQ(engine->Stats().result_cache.entries, 2);

  engine->ResetAdaptiveState();
  {
    const EngineStats stats = engine->Stats();
    EXPECT_EQ(stats.result_cache.entries, 0);
    EXPECT_EQ(stats.result_cache.invalidated, 2);
  }
  ASSERT_OK_AND_ASSIGN(QueryResult recomputed, engine->Query(kCountSql));
  ASSERT_OK_AND_ASSIGN(Datum recount, recomputed.Scalar());
  EXPECT_EQ(recount, cold_count);
  EXPECT_EQ(recomputed.plan_description.find("[result-cache hit]"),
            std::string::npos);
}

// Rewriting the underlying file must invalidate both the cached results and
// the table's adaptive state: the next query sees the new bytes, never a
// stale answer.
TEST_F(AutotuneTest, ResultCacheInvalidatedOnFileChange) {
  RawEngineOptions options;
  options.result_cache_bytes = 8ll << 20;
  auto engine = NewEngine(options);

  const std::string sql = "SELECT COUNT(*) FROM t";
  EXPECT_EQ(Count(engine.get(), sql), kRows);
  EXPECT_EQ(Count(engine.get(), sql), kRows);  // served from cache
  EXPECT_EQ(engine->Stats().result_cache.hits, 1);
  const int64_t version_before = engine->Stats().table("t")->version;

  // Replace the file with one of a different row count (size change makes
  // staleness detection robust to coarse mtime granularity).
  TableSpec bigger = TableSpec::UniformInt32("t", 8, kRows + 500, /*seed=*/7);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_OK(WriteCsvFile(bigger, Path("t.csv")));

  EXPECT_EQ(Count(engine.get(), sql), kRows + 500);
  const EngineStats stats = engine->Stats();
  EXPECT_GE(stats.result_cache.invalidated, 1);
  EXPECT_GT(stats.table("t")->version, version_before);
  // And the fresh answer caches under the new version.
  EXPECT_EQ(Count(engine.get(), sql), kRows + 500);
}

// Parameterized-query regression: re-executing a PreparedQuery with the same
// bound values must hit the result cache (BindParams folds the values into
// the predicate literals, so they are part of the fingerprint), while a
// different binding is its own entry — never a collision.
TEST_F(AutotuneTest, PreparedQueryReexecutionHitsResultCache) {
  RawEngineOptions options;
  options.result_cache_bytes = 8ll << 20;
  auto engine = NewEngine(options);
  auto session = engine->OpenSession();
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      session->Prepare("SELECT COUNT(*) FROM t WHERE col0 < ?"));

  ASSERT_OK_AND_ASSIGN(QueryResult cold,
                       prepared.Execute({Datum::Int64(500000000)}));
  ASSERT_OK_AND_ASSIGN(QueryResult warm,
                       prepared.Execute({Datum::Int64(500000000)}));
  EXPECT_NE(warm.plan_description.find("[result-cache hit]"),
            std::string::npos)
      << warm.plan_description;
  ASSERT_OK_AND_ASSIGN(Datum cold_count, cold.Scalar());
  ASSERT_OK_AND_ASSIGN(Datum warm_count, warm.Scalar());
  EXPECT_EQ(cold_count, warm_count);
  EXPECT_EQ(engine->Stats().result_cache.hits, 1);

  // A different bound value fingerprints differently: miss, new entry.
  ASSERT_OK_AND_ASSIGN(QueryResult other,
                       prepared.Execute({Datum::Int64(100000000)}));
  EXPECT_EQ(other.plan_description.find("[result-cache hit]"),
            std::string::npos);
  ASSERT_OK_AND_ASSIGN(Datum other_count, other.Scalar());
  EXPECT_NE(cold_count, other_count);
  EXPECT_EQ(engine->Stats().result_cache.entries, 2);
  // Re-executing never re-parses; the whole loop above parsed exactly once.
  EXPECT_EQ(engine->Stats().queries_parsed, 1);
}

// Cost-aware admission: with a floor far above anything this small table can
// take, results are computed but never admitted — repeats re-execute instead
// of evicting results worth keeping. Floor zero admits everything again.
TEST_F(AutotuneTest, ResultCacheMinMicrosGatesAdmission) {
  RawEngineOptions options;
  options.result_cache_bytes = 8ll << 20;
  options.result_cache_min_us = 600ll * 1000 * 1000;  // ten minutes
  auto engine = NewEngine(options);
  ASSERT_NE(engine->result_cache(), nullptr);

  EXPECT_EQ(Count(engine.get()), Count(engine.get()));
  {
    const EngineStats stats = engine->Stats();
    EXPECT_EQ(stats.result_cache.inserted, 0);
    EXPECT_EQ(stats.result_cache.entries, 0);
    EXPECT_EQ(stats.result_cache.hits, 0);
    // Both lookups missed, both executions really ran.
    EXPECT_EQ(stats.result_cache.misses, 2);
    EXPECT_EQ(stats.queries_executed, 2);
  }

  // The env knob overrides the configured floor at engine construction.
  ASSERT_EQ(setenv("RAW_RESULT_CACHE_MIN_US", "0", /*overwrite=*/1), 0);
  auto permissive = NewEngine(options);
  ASSERT_EQ(unsetenv("RAW_RESULT_CACHE_MIN_US"), 0);
  EXPECT_EQ(permissive->options().result_cache_min_us, 0);
  Count(permissive.get());
  EXPECT_EQ(permissive->Stats().result_cache.inserted, 1);
  Count(permissive.get());
  EXPECT_EQ(permissive->Stats().result_cache.hits, 1);
}

// The worker must survive an adversary resetting adaptive state under it
// while foreground sessions keep querying: no crashes, no torn state, every
// answer correct. TSan covers the data-race half of the claim.
TEST_F(AutotuneTest, ResetHammerWhileWorkerRuns) {
  RawEngineOptions options;
  options.autotune.enabled = true;
  options.autotune.idle_wait_ms = 1;
  options.autotune.poll_ms = 1;
  options.autotune.min_table_scans = 1;
  options.autotune.min_column_accesses = 1;
  options.result_cache_bytes = 8ll << 20;
  auto engine = NewEngine(options);

  const int64_t expected = Count(engine.get());
  ASSERT_GE(expected, 0);

  std::atomic<bool> done{false};
  std::atomic<int> bad_answers{0};
  std::thread hammer([&] {
    for (int i = 0; i < 200; ++i) {
      engine->ResetAdaptiveState();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> queriers;
  for (int q = 0; q < 2; ++q) {
    queriers.emplace_back([&] {
      auto session = engine->OpenSession();
      while (!done.load(std::memory_order_acquire)) {
        auto result = session->Query(kCountSql);
        if (!result.ok()) {
          bad_answers.fetch_add(1);
          continue;
        }
        auto scalar = result->Scalar();
        if (!scalar.ok() || scalar->int64_value() != expected) {
          bad_answers.fetch_add(1);
        }
      }
    });
  }
  hammer.join();
  for (std::thread& t : queriers) t.join();
  EXPECT_EQ(bad_answers.load(), 0);
  // The engine is still fully functional afterwards.
  EXPECT_EQ(Count(engine.get()), expected);
}

}  // namespace
}  // namespace raw
