// Morsel-parallel scan pipeline: determinism across thread counts (parallel
// plans must return byte-identical answers to the serial engine over CSV,
// binary, and JIT access paths, cold and warm), morsel-boundary edge cases
// (quoted newlines, missing trailing newline, empty files), the positional
// maps stitched from per-morsel partials, and the mergeable group-by
// partials. Runs under the `concurrency` ctest label (TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "columnar/hash_group_by.h"
#include "common/mmap_file.h"
#include "engine/raw_engine.h"
#include "scan/morsel.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

// =============================================================================
// Morsel splitter
// =============================================================================

TEST(MorselSplitterTest, ByteRangesAreNewlineAlignedAndCoverTheFile) {
  std::string csv;
  for (int i = 0; i < 3000; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i * 7) + "\n";
  }
  std::vector<ByteMorsel> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), CsvOptions(), 8, 1024);
  ASSERT_GT(morsels.size(), 1u);
  uint64_t expect_begin = 0;
  for (const ByteMorsel& m : morsels) {
    EXPECT_EQ(m.begin, expect_begin);  // contiguous, gap-free
    ASSERT_GT(m.end, m.begin);
    // Every boundary except the file end sits one past a newline.
    if (m.end < csv.size()) {
      EXPECT_EQ(csv[m.end - 1], '\n');
    }
    expect_begin = m.end;
  }
  EXPECT_EQ(morsels.back().end, csv.size());
}

TEST(MorselSplitterTest, LastPartialMorselWithoutTrailingNewline) {
  std::string csv = "1,2\n3,4\n5,6";  // no trailing newline
  std::vector<ByteMorsel> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), CsvOptions(), 4, 4);
  ASSERT_FALSE(morsels.empty());
  EXPECT_EQ(morsels.back().end, csv.size());
  uint64_t covered = 0;
  for (const ByteMorsel& m : morsels) covered += m.end - m.begin;
  EXPECT_EQ(covered, csv.size());
}

TEST(MorselSplitterTest, EmptyFileYieldsNoMorsels) {
  std::string csv;
  EXPECT_TRUE(
      SplitCsvByteRanges(csv.data(), 0, CsvOptions(), 8, 4096).empty());
}

TEST(MorselSplitterTest, HeaderOnlyFileYieldsNoMorsels) {
  std::string csv = "a,b,c\n";
  CsvOptions options;
  options.has_header = true;
  EXPECT_TRUE(
      SplitCsvByteRanges(csv.data(), csv.size(), options, 8, 4).empty());
}

TEST(MorselSplitterTest, HeaderIsExcludedFromTheFirstMorsel) {
  std::string csv = "a,b\n";
  const uint64_t header = csv.size();
  for (int i = 0; i < 100; ++i) csv += "1,2\n";
  CsvOptions options;
  options.has_header = true;
  std::vector<ByteMorsel> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), options, 4, 32);
  ASSERT_FALSE(morsels.empty());
  EXPECT_EQ(morsels.front().begin, header);
}

TEST(MorselSplitterTest, QuotedContentFallsBackToOneMorsel) {
  // A quoted field hiding a newline: newline-probing boundaries would split
  // mid-row, so the splitter must refuse to split quoted files.
  std::string csv;
  for (int i = 0; i < 2000; ++i) csv += "1,2,3\n";
  csv += "4,\"line1\nline2\",6\n";
  for (int i = 0; i < 2000; ++i) csv += "7,8,9\n";
  std::vector<ByteMorsel> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), CsvOptions(), 8, 64);
  ASSERT_EQ(morsels.size(), 1u);
  EXPECT_EQ(morsels[0].begin, 0u);
  EXPECT_EQ(morsels[0].end, csv.size());
}

TEST(MorselSplitterTest, RowRangesPartitionExactly) {
  std::vector<RowMorsel> morsels = SplitRowRanges(10001, 8, 16);
  ASSERT_GT(morsels.size(), 1u);
  int64_t next = 0;
  for (const RowMorsel& m : morsels) {
    EXPECT_EQ(m.first, next);
    EXPECT_GT(m.count, 0);
    next += m.count;
  }
  EXPECT_EQ(next, 10001);
  EXPECT_TRUE(SplitRowRanges(0, 8, 16).empty());
}

// =============================================================================
// Engine determinism across thread counts
// =============================================================================

void ExpectSameTable(const QueryResult& expected, const QueryResult& actual,
                     const std::string& what) {
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << what;
  ASSERT_EQ(expected.num_columns(), actual.num_columns()) << what;
  for (int64_t r = 0; r < expected.num_rows(); ++r) {
    for (int c = 0; c < expected.num_columns(); ++c) {
      ASSERT_OK_AND_ASSIGN(Datum e, expected.ValueAt(r, c));
      ASSERT_OK_AND_ASSIGN(Datum a, actual.ValueAt(r, c));
      ASSERT_EQ(e.ToString(), a.ToString())
          << what << " at (" << r << "," << c << ")";
    }
  }
}

class ParallelScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir(std::move(*TempDir::Create("raw_par_")));
    spec_ = new TableSpec(TableSpec::UniformInt32("t", 8, 5000, 1234));
    spec_->columns[5].type = DataType::kFloat64;
    csv_path_ = new std::string(dir_->FilePath("t.csv"));
    bin_path_ = new std::string(dir_->FilePath("t.bin"));
    ASSERT_OK(WriteCsvFile(*spec_, *csv_path_));
    ASSERT_OK(WriteBinaryFile(*spec_, *bin_path_));
  }
  static void TearDownTestSuite() {
    delete bin_path_;
    delete csv_path_;
    delete spec_;
    delete dir_;
  }

  static std::vector<std::string> Queries() {
    int64_t lit = *spec_->SelectivityLiteral(0, 0.4).AsInt64();
    return {
        "SELECT COUNT(*) FROM t",
        "SELECT MAX(col2), MIN(col3), SUM(col5) FROM t WHERE col0 < " +
            std::to_string(lit),
        "SELECT col1, col4 FROM t WHERE col0 < " + std::to_string(lit),
    };
  }

  /// Runs the query list twice (cold scan building the positional map, then
  /// the warm positional re-scan) on a fresh engine with `threads`.
  static std::vector<QueryResult> RunAll(bool csv, AccessPathKind access,
                                         int threads) {
    RawEngine engine;
    if (csv) {
      EXPECT_OK(engine.RegisterCsv("t", *csv_path_, spec_->ToSchema(),
                                   CsvOptions(), /*pmap_stride=*/3));
    } else {
      EXPECT_OK(engine.RegisterBinary("t", *bin_path_, spec_->ToSchema()));
    }
    PlannerOptions options;
    options.access_path = access;
    options.num_threads = threads;
    std::vector<QueryResult> results;
    for (int round = 0; round < 2; ++round) {
      for (const std::string& sql : Queries()) {
        auto result = engine.Query(sql, options);
        EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
        if (result.ok()) results.push_back(std::move(result).value());
      }
    }
    return results;
  }

  static void CheckDeterminism(bool csv, AccessPathKind access) {
    std::vector<QueryResult> reference = RunAll(csv, access, /*threads=*/1);
    for (int threads : {2, 8}) {
      std::vector<QueryResult> parallel = RunAll(csv, access, threads);
      ASSERT_EQ(reference.size(), parallel.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ExpectSameTable(reference[i], parallel[i],
                        "threads=" + std::to_string(threads) + " query#" +
                            std::to_string(i));
      }
    }
  }

  static TempDir* dir_;
  static TableSpec* spec_;
  static std::string* csv_path_;
  static std::string* bin_path_;
};

TempDir* ParallelScanTest::dir_ = nullptr;
TableSpec* ParallelScanTest::spec_ = nullptr;
std::string* ParallelScanTest::csv_path_ = nullptr;
std::string* ParallelScanTest::bin_path_ = nullptr;

TEST_F(ParallelScanTest, CsvInsituDeterministicAcrossThreadCounts) {
  CheckDeterminism(/*csv=*/true, AccessPathKind::kInSitu);
}

TEST_F(ParallelScanTest, BinaryInsituDeterministicAcrossThreadCounts) {
  CheckDeterminism(/*csv=*/false, AccessPathKind::kInSitu);
}

TEST_F(ParallelScanTest, CsvJitDeterministicAcrossThreadCounts) {
  RawEngine probe;
  if (!probe.Stats().jit_compiler_available()) GTEST_SKIP() << "no compiler";
  CheckDeterminism(/*csv=*/true, AccessPathKind::kJit);
}

TEST_F(ParallelScanTest, BinaryJitDeterministicAcrossThreadCounts) {
  RawEngine probe;
  if (!probe.Stats().jit_compiler_available()) GTEST_SKIP() << "no compiler";
  CheckDeterminism(/*csv=*/false, AccessPathKind::kJit);
}

TEST_F(ParallelScanTest, ParallelPositionalMapMatchesSerialMap) {
  auto scan_all = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("t", *csv_path_, spec_->ToSchema(),
                                 CsvOptions(), /*pmap_stride=*/3));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    EXPECT_OK(engine.Query("SELECT COUNT(*) FROM t", options).status());
    std::shared_ptr<const PositionalMap> pmap =
        *engine.PositionalMapSnapshot("t");
    EXPECT_NE(pmap, nullptr);
    EXPECT_OK(pmap->CheckConsistency());
    std::vector<uint64_t> flat;
    for (int64_t r = 0; r < pmap->num_rows(); ++r) {
      flat.push_back(pmap->RowStart(r));
      for (int s = 0; s < pmap->num_tracked(); ++s) {
        flat.push_back(pmap->Position(r, s));
      }
    }
    return flat;
  };
  std::vector<uint64_t> serial = scan_all(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, scan_all(2));
  EXPECT_EQ(serial, scan_all(8));
}

TEST_F(ParallelScanTest, GroupByDeterministicAcrossThreadCounts) {
  // Low-cardinality keys so every partial sees every group.
  std::string path = dir_->FilePath("g.csv");
  std::string csv;
  for (int i = 0; i < 4000; ++i) {
    csv += std::to_string(i % 7) + "," + std::to_string(i) + "," +
           std::to_string(i * 0.25) + "\n";
  }
  ASSERT_OK(WriteStringToFile(path, csv));
  Schema schema{{"k", DataType::kInt64},
                {"v", DataType::kInt64},
                {"f", DataType::kFloat64}};
  auto run = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("g", path, schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    auto result = engine.Query(
        "SELECT k, COUNT(*), SUM(v), SUM(f), AVG(f) FROM g GROUP BY k",
        options);
    EXPECT_OK(result.status());
    return std::move(result).value();
  };
  QueryResult serial = run(1);
  ASSERT_EQ(serial.num_rows(), 7);
  ExpectSameTable(serial, run(2), "group-by threads=2");
  ExpectSameTable(serial, run(8), "group-by threads=8");
}

TEST_F(ParallelScanTest, EmptyCsvFileAllThreadCounts) {
  std::string path = dir_->FilePath("empty.csv");
  ASSERT_OK(WriteStringToFile(path, ""));
  Schema schema{{"a", DataType::kInt64}, {"b", DataType::kInt64}};
  for (int threads : {1, 8}) {
    RawEngine engine;
    ASSERT_OK(engine.RegisterCsv("e", path, schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         engine.Query("SELECT COUNT(*) FROM e", options));
    ASSERT_OK_AND_ASSIGN(Datum count, result.Scalar());
    EXPECT_EQ(count.int64_value(), 0) << "threads=" << threads;
  }
}

TEST_F(ParallelScanTest, MissingTrailingNewlineAllThreadCounts) {
  std::string path = dir_->FilePath("partial.csv");
  std::string csv;
  for (int i = 0; i < 3000; ++i) csv += std::to_string(i) + ",1\n";
  csv += "9999,1";  // final row unterminated: the last morsel is partial
  ASSERT_OK(WriteStringToFile(path, csv));
  Schema schema{{"a", DataType::kInt64}, {"b", DataType::kInt64}};
  auto run = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("p", path, schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    auto result = engine.Query("SELECT COUNT(*), MAX(a) FROM p", options);
    EXPECT_OK(result.status());
    return std::move(result).value();
  };
  QueryResult serial = run(1);
  ASSERT_OK_AND_ASSIGN(Datum count, serial.ValueAt(0, 0));
  EXPECT_EQ(count.int64_value(), 3001);
  ExpectSameTable(serial, run(2), "partial-newline threads=2");
  ExpectSameTable(serial, run(8), "partial-newline threads=8");
}

// =============================================================================
// GroupByPartial merge API
// =============================================================================

TEST(GroupByPartialTest, PartitionedAbsorbPlusMergeEqualsSerialAbsorb) {
  ColumnBatch batch(Schema{{"k", DataType::kInt32},
                           {"v", DataType::kFloat64}});
  auto keys = std::make_shared<Column>(DataType::kInt32);
  auto values = std::make_shared<Column>(DataType::kFloat64);
  for (int i = 0; i < 997; ++i) {
    keys->Append<int32_t>(i % 5);
    values->Append<double>(i * 0.5);
  }
  batch.AddColumn(keys);
  batch.AddColumn(values);
  batch.SetNumRows(997);

  std::vector<int> key_cols = {0};
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, 1, "s"});
  aggs.push_back(AggSpec{AggKind::kCount, -1, "n"});
  std::vector<DataType> in_types = {DataType::kFloat64, DataType::kInt64};
  Schema out_schema{{"k", DataType::kInt32},
                    {"s", DataType::kFloat64},
                    {"n", DataType::kInt64}};

  GroupByPartial serial(key_cols, aggs, in_types);
  ASSERT_OK(serial.Absorb(batch, 0));
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> expected,
                       serial.Finalize(out_schema));

  for (uint64_t partitions : {2, 3, 8}) {
    std::vector<GroupByPartial> partials(
        partitions, GroupByPartial(key_cols, aggs, in_types));
    for (uint64_t p = 0; p < partitions; ++p) {
      ASSERT_OK(partials[p].Absorb(batch, 0, nullptr, nullptr, p, partitions));
    }
    GroupByPartial& merged = partials[0];
    for (uint64_t p = 1; p < partitions; ++p) {
      ASSERT_OK(merged.MergeFrom(partials[p]));
    }
    EXPECT_EQ(merged.num_groups(), serial.num_groups());
    ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> actual,
                         merged.Finalize(out_schema));
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t c = 0; c < expected.size(); ++c) {
      ASSERT_EQ(actual[c]->length(), expected[c]->length());
      for (int64_t r = 0; r < expected[c]->length(); ++r) {
        EXPECT_EQ(actual[c]->GetDatum(r).ToString(),
                  expected[c]->GetDatum(r).ToString())
            << "partitions=" << partitions << " (" << c << "," << r << ")";
      }
    }
  }
}

TEST(GroupByPartialTest, MergeRejectsMismatchedShapes) {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCount, -1, "n"});
  GroupByPartial a({0}, aggs, {DataType::kInt64});
  GroupByPartial b({0, 1}, aggs, {DataType::kInt64});
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

}  // namespace
}  // namespace raw
