// Morsel-parallel scan pipeline: determinism across thread counts (parallel
// plans must return byte-identical answers to the serial engine over CSV,
// binary, and JIT access paths, cold and warm), morsel-boundary edge cases
// (quoted newlines, missing trailing newline, empty files), the positional
// maps stitched from per-morsel partials, and the mergeable group-by
// partials. Runs under the `concurrency` ctest label (TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <random>

#include "columnar/hash_group_by.h"
#include "columnar/hash_join.h"
#include "common/mmap_file.h"
#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "scan/morsel.h"
#include "scan/shred_scan.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

// =============================================================================
// Morsel splitter
// =============================================================================

TEST(MorselSplitterTest, ByteRangesAreNewlineAlignedAndCoverTheFile) {
  std::string csv;
  for (int i = 0; i < 3000; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i * 7) + "\n";
  }
  std::vector<ScanRange> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), CsvOptions(), 8, 1024);
  ASSERT_GT(morsels.size(), 1u);
  int64_t expect_begin = 0;
  for (const ScanRange& m : morsels) {
    EXPECT_EQ(m.unit, ScanRange::Unit::kBytes);
    EXPECT_EQ(m.begin, expect_begin);  // contiguous, gap-free
    ASSERT_GT(m.end, m.begin);
    // Every boundary except the file end sits one past a newline.
    if (m.end < static_cast<int64_t>(csv.size())) {
      EXPECT_EQ(csv[static_cast<size_t>(m.end) - 1], '\n');
    }
    expect_begin = m.end;
  }
  EXPECT_EQ(morsels.back().end, static_cast<int64_t>(csv.size()));
}

TEST(MorselSplitterTest, LastPartialMorselWithoutTrailingNewline) {
  std::string csv = "1,2\n3,4\n5,6";  // no trailing newline
  std::vector<ScanRange> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), CsvOptions(), 4, 4);
  ASSERT_FALSE(morsels.empty());
  EXPECT_EQ(morsels.back().end, static_cast<int64_t>(csv.size()));
  int64_t covered = 0;
  for (const ScanRange& m : morsels) covered += m.count();
  EXPECT_EQ(covered, static_cast<int64_t>(csv.size()));
}

TEST(MorselSplitterTest, EmptyFileYieldsNoMorsels) {
  std::string csv;
  EXPECT_TRUE(
      SplitCsvByteRanges(csv.data(), 0, CsvOptions(), 8, 4096).empty());
}

TEST(MorselSplitterTest, HeaderOnlyFileYieldsNoMorsels) {
  std::string csv = "a,b,c\n";
  CsvOptions options;
  options.has_header = true;
  EXPECT_TRUE(
      SplitCsvByteRanges(csv.data(), csv.size(), options, 8, 4).empty());
}

TEST(MorselSplitterTest, HeaderIsExcludedFromTheFirstMorsel) {
  std::string csv = "a,b\n";
  const int64_t header = static_cast<int64_t>(csv.size());
  for (int i = 0; i < 100; ++i) csv += "1,2\n";
  CsvOptions options;
  options.has_header = true;
  std::vector<ScanRange> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), options, 4, 32);
  ASSERT_FALSE(morsels.empty());
  EXPECT_EQ(morsels.front().begin, header);
}

TEST(MorselSplitterTest, QuotedContentFallsBackToOneMorsel) {
  // A quoted field hiding a newline: newline-probing boundaries would split
  // mid-row, so the splitter must refuse to split quoted files.
  std::string csv;
  for (int i = 0; i < 2000; ++i) csv += "1,2,3\n";
  csv += "4,\"line1\nline2\",6\n";
  for (int i = 0; i < 2000; ++i) csv += "7,8,9\n";
  std::vector<ScanRange> morsels =
      SplitCsvByteRanges(csv.data(), csv.size(), CsvOptions(), 8, 64);
  ASSERT_EQ(morsels.size(), 1u);
  EXPECT_EQ(morsels[0].begin, 0);
  EXPECT_EQ(morsels[0].end, static_cast<int64_t>(csv.size()));
}

TEST(MorselSplitterTest, RefRowRangesAlignToClusterBoundaries) {
  RefBranch branch;
  branch.name = "event/id";
  int64_t first = 0;
  for (int c = 0; c < 24; ++c) {
    RefCluster cluster;
    cluster.first_value = first;
    cluster.num_values = 128;
    first += cluster.num_values;
    branch.clusters.push_back(cluster);
  }
  std::vector<ScanRange> morsels =
      SplitRefRowRanges(branch, /*target_morsels=*/16, /*min_rows=*/256);
  ASSERT_GT(morsels.size(), 1u);
  int64_t next = 0;
  for (const ScanRange& m : morsels) {
    EXPECT_EQ(m.unit, ScanRange::Unit::kRows);
    EXPECT_EQ(m.begin, next);  // contiguous, gap-free
    EXPECT_GT(m.count(), 0);
    // Every boundary sits on a cluster boundary (multiples of 128 here).
    EXPECT_EQ(m.begin % 128, 0);
    next += m.count();
  }
  EXPECT_EQ(next, branch.num_values());

  // A single-cluster branch cannot split.
  RefBranch one;
  one.clusters.push_back(RefCluster{0, 0, 0, 1000});
  EXPECT_EQ(SplitRefRowRanges(one, 16, 1).size(), 1u);
  // No clusters => no morsels.
  EXPECT_TRUE(SplitRefRowRanges(RefBranch(), 8, 1).empty());
}

TEST(MorselSplitterTest, RowRangesPartitionExactly) {
  std::vector<ScanRange> morsels = SplitRowRanges(10001, 8, 16);
  ASSERT_GT(morsels.size(), 1u);
  int64_t next = 0;
  for (const ScanRange& m : morsels) {
    EXPECT_EQ(m.begin, next);
    EXPECT_GT(m.count(), 0);
    next += m.count();
  }
  EXPECT_EQ(next, 10001);
  EXPECT_TRUE(SplitRowRanges(0, 8, 16).empty());
}

// =============================================================================
// Engine determinism across thread counts
// =============================================================================

void ExpectSameTable(const QueryResult& expected, const QueryResult& actual,
                     const std::string& what) {
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << what;
  ASSERT_EQ(expected.num_columns(), actual.num_columns()) << what;
  for (int64_t r = 0; r < expected.num_rows(); ++r) {
    for (int c = 0; c < expected.num_columns(); ++c) {
      ASSERT_OK_AND_ASSIGN(Datum e, expected.ValueAt(r, c));
      ASSERT_OK_AND_ASSIGN(Datum a, actual.ValueAt(r, c));
      ASSERT_EQ(e.ToString(), a.ToString())
          << what << " at (" << r << "," << c << ")";
    }
  }
}

class ParallelScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir(std::move(*TempDir::Create("raw_par_")));
    spec_ = new TableSpec(TableSpec::UniformInt32("t", 8, 5000, 1234));
    spec_->columns[5].type = DataType::kFloat64;
    csv_path_ = new std::string(dir_->FilePath("t.csv"));
    bin_path_ = new std::string(dir_->FilePath("t.bin"));
    ASSERT_OK(WriteCsvFile(*spec_, *csv_path_));
    ASSERT_OK(WriteBinaryFile(*spec_, *bin_path_));
  }
  static void TearDownTestSuite() {
    delete bin_path_;
    delete csv_path_;
    delete spec_;
    delete dir_;
  }

  static std::vector<std::string> Queries() {
    int64_t lit = *spec_->SelectivityLiteral(0, 0.4).AsInt64();
    return {
        "SELECT COUNT(*) FROM t",
        "SELECT MAX(col2), MIN(col3), SUM(col5) FROM t WHERE col0 < " +
            std::to_string(lit),
        "SELECT col1, col4 FROM t WHERE col0 < " + std::to_string(lit),
    };
  }

  /// Runs the query list twice (cold scan building the positional map, then
  /// the warm positional re-scan) on a fresh engine with `threads`.
  static std::vector<QueryResult> RunAll(bool csv, AccessPathKind access,
                                         int threads) {
    RawEngine engine;
    if (csv) {
      EXPECT_OK(engine.RegisterCsv("t", *csv_path_, spec_->ToSchema(),
                                   CsvOptions(), /*pmap_stride=*/3));
    } else {
      EXPECT_OK(engine.RegisterBinary("t", *bin_path_, spec_->ToSchema()));
    }
    PlannerOptions options;
    options.access_path = access;
    options.num_threads = threads;
    std::vector<QueryResult> results;
    for (int round = 0; round < 2; ++round) {
      for (const std::string& sql : Queries()) {
        auto result = engine.Query(sql, options);
        EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
        if (result.ok()) results.push_back(std::move(result).value());
      }
    }
    return results;
  }

  static void CheckDeterminism(bool csv, AccessPathKind access) {
    std::vector<QueryResult> reference = RunAll(csv, access, /*threads=*/1);
    for (int threads : {2, 8}) {
      std::vector<QueryResult> parallel = RunAll(csv, access, threads);
      ASSERT_EQ(reference.size(), parallel.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ExpectSameTable(reference[i], parallel[i],
                        "threads=" + std::to_string(threads) + " query#" +
                            std::to_string(i));
      }
    }
  }

  static TempDir* dir_;
  static TableSpec* spec_;
  static std::string* csv_path_;
  static std::string* bin_path_;
};

TempDir* ParallelScanTest::dir_ = nullptr;
TableSpec* ParallelScanTest::spec_ = nullptr;
std::string* ParallelScanTest::csv_path_ = nullptr;
std::string* ParallelScanTest::bin_path_ = nullptr;

TEST_F(ParallelScanTest, CsvInsituDeterministicAcrossThreadCounts) {
  CheckDeterminism(/*csv=*/true, AccessPathKind::kInSitu);
}

TEST_F(ParallelScanTest, BinaryInsituDeterministicAcrossThreadCounts) {
  CheckDeterminism(/*csv=*/false, AccessPathKind::kInSitu);
}

TEST_F(ParallelScanTest, CsvJitDeterministicAcrossThreadCounts) {
  RawEngine probe;
  if (!probe.Stats().jit_compiler_available()) GTEST_SKIP() << "no compiler";
  CheckDeterminism(/*csv=*/true, AccessPathKind::kJit);
}

TEST_F(ParallelScanTest, BinaryJitDeterministicAcrossThreadCounts) {
  RawEngine probe;
  if (!probe.Stats().jit_compiler_available()) GTEST_SKIP() << "no compiler";
  CheckDeterminism(/*csv=*/false, AccessPathKind::kJit);
}

TEST_F(ParallelScanTest, ParallelPositionalMapMatchesSerialMap) {
  auto scan_all = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("t", *csv_path_, spec_->ToSchema(),
                                 CsvOptions(), /*pmap_stride=*/3));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    EXPECT_OK(engine.Query("SELECT COUNT(*) FROM t", options).status());
    std::shared_ptr<const PositionalMap> pmap =
        *engine.PositionalMapSnapshot("t");
    EXPECT_NE(pmap, nullptr);
    EXPECT_OK(pmap->CheckConsistency());
    std::vector<uint64_t> flat;
    for (int64_t r = 0; r < pmap->num_rows(); ++r) {
      flat.push_back(pmap->RowStart(r));
      for (int s = 0; s < pmap->num_tracked(); ++s) {
        flat.push_back(pmap->Position(r, s));
      }
    }
    return flat;
  };
  std::vector<uint64_t> serial = scan_all(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, scan_all(2));
  EXPECT_EQ(serial, scan_all(8));
}

TEST_F(ParallelScanTest, GroupByDeterministicAcrossThreadCounts) {
  // Low-cardinality keys so every partial sees every group.
  std::string path = dir_->FilePath("g.csv");
  std::string csv;
  for (int i = 0; i < 4000; ++i) {
    csv += std::to_string(i % 7) + "," + std::to_string(i) + "," +
           std::to_string(i * 0.25) + "\n";
  }
  ASSERT_OK(WriteStringToFile(path, csv));
  Schema schema{{"k", DataType::kInt64},
                {"v", DataType::kInt64},
                {"f", DataType::kFloat64}};
  auto run = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("g", path, schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    auto result = engine.Query(
        "SELECT k, COUNT(*), SUM(v), SUM(f), AVG(f) FROM g GROUP BY k",
        options);
    EXPECT_OK(result.status());
    return std::move(result).value();
  };
  QueryResult serial = run(1);
  ASSERT_EQ(serial.num_rows(), 7);
  ExpectSameTable(serial, run(2), "group-by threads=2");
  ExpectSameTable(serial, run(8), "group-by threads=8");
}

TEST_F(ParallelScanTest, EmptyCsvFileAllThreadCounts) {
  std::string path = dir_->FilePath("empty.csv");
  ASSERT_OK(WriteStringToFile(path, ""));
  Schema schema{{"a", DataType::kInt64}, {"b", DataType::kInt64}};
  for (int threads : {1, 8}) {
    RawEngine engine;
    ASSERT_OK(engine.RegisterCsv("e", path, schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         engine.Query("SELECT COUNT(*) FROM e", options));
    ASSERT_OK_AND_ASSIGN(Datum count, result.Scalar());
    EXPECT_EQ(count.int64_value(), 0) << "threads=" << threads;
  }
}

TEST_F(ParallelScanTest, MissingTrailingNewlineAllThreadCounts) {
  std::string path = dir_->FilePath("partial.csv");
  std::string csv;
  for (int i = 0; i < 3000; ++i) csv += std::to_string(i) + ",1\n";
  csv += "9999,1";  // final row unterminated: the last morsel is partial
  ASSERT_OK(WriteStringToFile(path, csv));
  Schema schema{{"a", DataType::kInt64}, {"b", DataType::kInt64}};
  auto run = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("p", path, schema));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    auto result = engine.Query("SELECT COUNT(*), MAX(a) FROM p", options);
    EXPECT_OK(result.status());
    return std::move(result).value();
  };
  QueryResult serial = run(1);
  ASSERT_OK_AND_ASSIGN(Datum count, serial.ValueAt(0, 0));
  EXPECT_EQ(count.int64_value(), 3001);
  ExpectSameTable(serial, run(2), "partial-newline threads=2");
  ExpectSameTable(serial, run(8), "partial-newline threads=8");
}

// =============================================================================
// REF parallel scans: thread-count determinism + cluster-cache equivalence
// =============================================================================

class RefParallelScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir(std::move(*TempDir::Create("raw_refpar_")));
    ref_path_ = new std::string(dir_->FilePath("e.ref"));
    EventGenOptions options;
    options.num_events = 3000;
    // Small clusters so the cluster-aligned splitter yields real morsels.
    ASSERT_OK(WriteRefFile(*ref_path_, options, /*cluster_events=*/128));
  }
  static void TearDownTestSuite() {
    delete ref_path_;
    delete dir_;
  }

  /// Event table, particle tables, group-by, and the derived-eventID path
  /// (which must stay on the interpreted scan even under kJit).
  static std::vector<std::string> Queries() {
    return {
        "SELECT COUNT(*) FROM a_events WHERE runNumber > 2010",
        "SELECT MAX(eventID), MIN(runNumber) FROM a_events",
        "SELECT runNumber, COUNT(*) FROM a_events GROUP BY runNumber",
        "SELECT MAX(pt), MIN(eta) FROM a_muons WHERE pt > 5.0",
        "SELECT COUNT(*) FROM a_jets WHERE eta < 1.0",
        "SELECT MAX(eventID) FROM a_muons WHERE pt > 10.0",
    };
  }

  /// Runs the query list twice on one engine — cold (decoding every
  /// cluster) then warm (cluster pool + shred cache hits) — with `threads`.
  static std::vector<QueryResult> RunAll(AccessPathKind access, int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterRef("a", *ref_path_));
    PlannerOptions options;
    options.access_path = access;
    options.num_threads = threads;
    std::vector<QueryResult> results;
    for (int round = 0; round < 2; ++round) {
      for (const std::string& sql : Queries()) {
        auto result = engine.Query(sql, options);
        EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
        if (result.ok()) results.push_back(std::move(result).value());
      }
    }
    return results;
  }

  static void CheckDeterminism(AccessPathKind access) {
    std::vector<QueryResult> reference = RunAll(access, /*threads=*/1);
    for (int threads : {2, 4, 8}) {
      std::vector<QueryResult> parallel = RunAll(access, threads);
      ASSERT_EQ(reference.size(), parallel.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ExpectSameTable(reference[i], parallel[i],
                        "threads=" + std::to_string(threads) + " query#" +
                            std::to_string(i));
      }
    }
  }

  static TempDir* dir_;
  static std::string* ref_path_;
};

TempDir* RefParallelScanTest::dir_ = nullptr;
std::string* RefParallelScanTest::ref_path_ = nullptr;

TEST_F(RefParallelScanTest, InsituDeterministicAcrossThreadCounts) {
  CheckDeterminism(AccessPathKind::kInSitu);
}

TEST_F(RefParallelScanTest, JitDeterministicAcrossThreadCounts) {
  RawEngine probe;
  if (!probe.Stats().jit_compiler_available()) GTEST_SKIP() << "no compiler";
  CheckDeterminism(AccessPathKind::kJit);
}

TEST_F(RefParallelScanTest, ParallelPlanDescriptionConfirmsRefMorsels) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("a", *ref_path_));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.num_threads = 4;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT MAX(eventID) FROM a_events", options));
  EXPECT_NE(result.plan_description.find("[ref-scan"), std::string::npos)
      << result.plan_description;
  EXPECT_NE(result.plan_description.find("[parallel x4"), std::string::npos)
      << result.plan_description;
}

TEST_F(RefParallelScanTest, ClusterCacheEquivalentAcrossThreadCounts) {
  // The REF analogue of the positional-map equivalence check: after the same
  // full scan, the cluster pool must hold the same clusters (same entry
  // count, same decoded bytes) no matter how many threads scanned — racing
  // decoders dedup on Put, morsels align to cluster boundaries.
  auto run = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterRef("a", *ref_path_));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.shred_policy = ShredPolicy::kFullColumns;
    options.num_threads = threads;
    EXPECT_OK(
        engine.Query("SELECT MAX(pt), MIN(eta) FROM a_muons", options)
            .status());
    return engine.Stats().ref_pool;
  };
  ClusterPoolStats serial = run(1);
  EXPECT_GT(serial.entries, 0);
  EXPECT_GT(serial.bytes, 0);
  EXPECT_GT(serial.misses, 0);
  for (int threads : {2, 8}) {
    ClusterPoolStats parallel = run(threads);
    EXPECT_EQ(parallel.entries, serial.entries) << "threads=" << threads;
    EXPECT_EQ(parallel.bytes, serial.bytes) << "threads=" << threads;
  }
}

TEST_F(RefParallelScanTest, WarmRunHitsClusterPool) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("a", *ref_path_));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kFullColumns;
  options.num_threads = 4;
  options.use_shred_cache = false;  // force raw REF reads on the warm run
  options.populate_shred_cache = false;
  const std::string sql = "SELECT MAX(pt) FROM a_jets";
  ASSERT_OK(engine.Query(sql, options).status());
  ClusterPoolStats cold = engine.Stats().ref_pool;
  ASSERT_OK(engine.Query(sql, options).status());
  ClusterPoolStats warm = engine.Stats().ref_pool;
  EXPECT_EQ(warm.misses, cold.misses);  // fully served from the pool
  EXPECT_GT(warm.hits, cold.hits);
  // ResetAdaptiveState drops the cluster cache: the next run decodes again.
  engine.ResetAdaptiveState();
  EXPECT_EQ(engine.Stats().ref_pool.bytes, 0);
  ASSERT_OK(engine.Query(sql, options).status());
  EXPECT_GT(engine.Stats().ref_pool.misses, warm.misses);
}

// =============================================================================
// Parallel late-scan row fetchers
// =============================================================================

TEST_F(ParallelScanTest, ParallelRowFetcherMatchesSerialFetch) {
  // Chunked parallel fetch must reassemble exactly the serial fetch, for
  // contiguous, strided and small (serial short-circuit) row sets.
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout,
                       BinaryLayout::Create(spec_->ToSchema()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<BinaryReader> reader,
                       BinaryReader::Open(*bin_path_, std::move(layout)));
  const int64_t n = reader->num_rows();
  ASSERT_GT(n, 1000);

  auto make_fetcher = [&]() {
    BinScanSpec spec;
    spec.outputs = {1, 4};
    return std::make_unique<InsituRowFetcher>(reader.get(), std::move(spec));
  };

  std::vector<RowSet> requests(3);
  for (int64_t i = 0; i < n; ++i) requests[0].ids.push_back(i);
  for (int64_t i = 0; i < n; i += 3) requests[1].ids.push_back(i);
  for (int64_t i = n - 10; i < n; ++i) requests[2].ids.push_back(i);

  for (size_t r = 0; r < requests.size(); ++r) {
    auto serial = make_fetcher();
    ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> expect,
                         serial->Fetch(requests[r]));
    for (int threads : {2, 8}) {
      ParallelRowFetcher parallel(make_fetcher(), ThreadPool::Shared(),
                                  threads, /*min_chunk_rows=*/64);
      ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> actual,
                           parallel.Fetch(requests[r]));
      ASSERT_EQ(actual.size(), expect.size());
      for (size_t c = 0; c < expect.size(); ++c) {
        ASSERT_EQ(actual[c]->length(), expect[c]->length())
            << "request#" << r << " threads=" << threads;
        for (int64_t i = 0; i < expect[c]->length(); ++i) {
          ASSERT_EQ(actual[c]->GetDatum(i).ToString(),
                    expect[c]->GetDatum(i).ToString())
              << "request#" << r << " threads=" << threads << " (" << c
              << "," << i << ")";
        }
      }
    }
  }
}

TEST_F(ParallelScanTest, LateScanUsesParallelFetchInPlan) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterBinary("t", *bin_path_, spec_->ToSchema()));
  PlannerOptions serial_opts;
  serial_opts.access_path = AccessPathKind::kInSitu;
  serial_opts.num_threads = 1;
  // Keep the raw late-scan path live on both runs (no cache-served shreds).
  serial_opts.use_shred_cache = false;
  serial_opts.populate_shred_cache = false;
  PlannerOptions par_opts = serial_opts;
  par_opts.num_threads = 4;
  // Everything passes the filter, so the late scan fetches full batches —
  // big enough row sets to exercise the chunked path.
  const std::string sql = "SELECT col1, col4 FROM t WHERE col0 >= 0";
  ASSERT_OK_AND_ASSIGN(QueryResult expect, engine.Query(sql, serial_opts));
  ASSERT_OK_AND_ASSIGN(QueryResult actual, engine.Query(sql, par_opts));
  ExpectSameTable(expect, actual, "parallel late fetch");
  EXPECT_NE(actual.plan_description.find("[parallel-fetch x4"),
            std::string::npos)
      << actual.plan_description;
  EXPECT_NE(actual.plan_description.find("[late-scan"), std::string::npos)
      << actual.plan_description;
}

// =============================================================================
// Parallel hash-join build
// =============================================================================

TEST(JoinHashTableTest, ParallelBuildMatchesSerialRowForRow) {
  // Random keys with heavy skew: half the rows draw from ten hot keys, the
  // rest from a wide range. The parallel build must produce the same probe
  // structure — matches row-for-row, ascending — for any thread count.
  // Big enough that both parallel build phases engage (the chain-linking
  // phase stays serial below 1<<16 rows).
  constexpr int64_t kRows = 80011;
  std::mt19937_64 rng(20260731);
  std::uniform_int_distribution<int64_t> hot(0, 9);
  std::uniform_int_distribution<int64_t> wide(-1000000, 1000000);
  auto keys = std::make_shared<Column>(DataType::kInt64);
  std::vector<int64_t> key_values;
  for (int64_t i = 0; i < kRows; ++i) {
    int64_t k = (rng() & 1) != 0 ? hot(rng) : wide(rng);
    key_values.push_back(k);
    keys->Append<int64_t>(k);
  }

  JoinHashTable serial;
  ASSERT_OK(serial.Build(*keys, nullptr, 1));
  EXPECT_EQ(serial.num_rows(), kRows);
  EXPECT_GT(serial.num_buckets(), 0);

  std::vector<int64_t> probes = key_values;
  probes.push_back(31337000);  // a key that matches nothing
  std::sort(probes.begin(), probes.end());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
  auto matches_of = [&](const JoinHashTable& table, int64_t key) {
    std::vector<int64_t> rows;
    table.ForEachMatch(key, [&](int64_t row) { rows.push_back(row); });
    return rows;
  };
  for (int threads : {2, 4, 8}) {
    JoinHashTable parallel;
    ASSERT_OK(parallel.Build(*keys, ThreadPool::Shared(), threads));
    ASSERT_EQ(parallel.num_buckets(), serial.num_buckets());
    for (int64_t key : probes) {
      std::vector<int64_t> expect = matches_of(serial, key);
      std::vector<int64_t> actual = matches_of(parallel, key);
      ASSERT_EQ(actual, expect) << "threads=" << threads << " key=" << key;
      // Ascending build-row order is the determinism contract.
      ASSERT_TRUE(std::is_sorted(expect.begin(), expect.end()));
    }
  }
}

TEST_F(ParallelScanTest, JoinDeterministicAcrossThreadCountsWithBuildStats) {
  // Engine-level join: skewed keys on both sides, parallel scan + parallel
  // join build + parallel late fetch vs the serial plan, plus the
  // description proof that the flat build structure ran.
  std::string f1 = dir_->FilePath("j1.csv");
  std::string f2 = dir_->FilePath("j2.csv");
  TableSpec s1 = TableSpec::UniformInt32("f1", 6, 4000, 99);
  TableSpec s2 = TableSpec::UniformInt32("f2", 4, 1500, 77);
  s1.columns[0].max_value = 500;  // duplicate-heavy join keys
  s2.columns[0].max_value = 500;
  ASSERT_OK(WriteCsvFile(s1, f1));
  ASSERT_OK(WriteCsvFile(s2, f2));

  auto run = [&](int threads) {
    RawEngine engine;
    EXPECT_OK(engine.RegisterCsv("f1", f1, s1.ToSchema()));
    EXPECT_OK(engine.RegisterCsv("f2", f2, s2.ToSchema()));
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.num_threads = threads;
    std::vector<QueryResult> results;
    for (const char* sql :
         {"SELECT COUNT(*) FROM f1 JOIN f2 ON f1.col0 = f2.col0",
          "SELECT MAX(f1.col4) FROM f1 JOIN f2 ON f1.col0 = f2.col0 "
          "WHERE f2.col1 < 600000000",
          "SELECT MAX(f2.col3) FROM f1 JOIN f2 ON f1.col0 = f2.col0 "
          "WHERE f1.col2 < 700000000"}) {
      auto result = engine.Query(sql, options);
      EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      if (result.ok()) results.push_back(std::move(result).value());
    }
    return results;
  };

  std::vector<QueryResult> reference = run(1);
  ASSERT_EQ(reference.size(), 3u);
  // Serial plans report the flat build structure too.
  EXPECT_NE(reference[0].plan_description.find("[join-build rows="),
            std::string::npos)
      << reference[0].plan_description;
  for (int threads : {2, 4, 8}) {
    std::vector<QueryResult> parallel = run(threads);
    ASSERT_EQ(parallel.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectSameTable(reference[i], parallel[i],
                      "join threads=" + std::to_string(threads) + " query#" +
                          std::to_string(i));
    }
    EXPECT_NE(parallel[0].plan_description.find("[parallel join-build x" +
                                                std::to_string(threads)),
              std::string::npos)
        << parallel[0].plan_description;
    EXPECT_NE(parallel[0].plan_description.find("[join-build rows="),
              std::string::npos)
        << parallel[0].plan_description;
  }
}

// =============================================================================
// GroupByPartial merge API
// =============================================================================

TEST(GroupByPartialTest, PartitionedAbsorbPlusMergeEqualsSerialAbsorb) {
  ColumnBatch batch(Schema{{"k", DataType::kInt32},
                           {"v", DataType::kFloat64}});
  auto keys = std::make_shared<Column>(DataType::kInt32);
  auto values = std::make_shared<Column>(DataType::kFloat64);
  for (int i = 0; i < 997; ++i) {
    keys->Append<int32_t>(i % 5);
    values->Append<double>(i * 0.5);
  }
  batch.AddColumn(keys);
  batch.AddColumn(values);
  batch.SetNumRows(997);

  std::vector<int> key_cols = {0};
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, 1, "s"});
  aggs.push_back(AggSpec{AggKind::kCount, -1, "n"});
  std::vector<DataType> in_types = {DataType::kFloat64, DataType::kInt64};
  Schema out_schema{{"k", DataType::kInt32},
                    {"s", DataType::kFloat64},
                    {"n", DataType::kInt64}};

  GroupByPartial serial(key_cols, aggs, in_types);
  ASSERT_OK(serial.Absorb(batch, 0));
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> expected,
                       serial.Finalize(out_schema));

  for (uint64_t partitions : {2, 3, 8}) {
    std::vector<GroupByPartial> partials(
        partitions, GroupByPartial(key_cols, aggs, in_types));
    for (uint64_t p = 0; p < partitions; ++p) {
      ASSERT_OK(partials[p].Absorb(batch, 0, nullptr, nullptr, p, partitions));
    }
    GroupByPartial& merged = partials[0];
    for (uint64_t p = 1; p < partitions; ++p) {
      ASSERT_OK(merged.MergeFrom(partials[p]));
    }
    EXPECT_EQ(merged.num_groups(), serial.num_groups());
    ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> actual,
                         merged.Finalize(out_schema));
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t c = 0; c < expected.size(); ++c) {
      ASSERT_EQ(actual[c]->length(), expected[c]->length());
      for (int64_t r = 0; r < expected[c]->length(); ++r) {
        EXPECT_EQ(actual[c]->GetDatum(r).ToString(),
                  expected[c]->GetDatum(r).ToString())
            << "partitions=" << partitions << " (" << c << "," << r << ")";
      }
    }
  }
}

TEST(GroupByPartialTest, MergeRejectsMismatchedShapes) {
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCount, -1, "n"});
  GroupByPartial a({0}, aggs, {DataType::kInt64});
  GroupByPartial b({0, 1}, aggs, {DataType::kInt64});
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

}  // namespace
}  // namespace raw
