// Cross-module integration and failure-injection tests: the dataset manager,
// corrupted-file handling, JIT operator preconditions, and end-to-end
// multi-format sessions.

#include <gtest/gtest.h>

#include <cstdlib>

#include "columnar/filter.h"
#include "common/mmap_file.h"
#include "engine/raw_engine.h"
#include "eventsim/ref_reader.h"
#include "scan/jit_scan.h"
#include "scan/shred_scan.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"
#include "workload/dataset.h"

namespace raw {
namespace {

// --- Dataset manager ---------------------------------------------------------

class DatasetTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    setenv("RAW_DATA_DIR", dir_->path().c_str(), 1);
    setenv("RAW_BENCH_ROWS", "500", 1);
    setenv("RAW_BENCH_ROWS_120", "200", 1);
    setenv("RAW_BENCH_EVENTS", "100", 1);
    setenv("RAW_BENCH_FILES", "2", 1);
  }

  void TearDown() override {
    unsetenv("RAW_DATA_DIR");
    unsetenv("RAW_BENCH_ROWS");
    unsetenv("RAW_BENCH_ROWS_120");
    unsetenv("RAW_BENCH_EVENTS");
    unsetenv("RAW_BENCH_FILES");
  }
};

TEST_F(DatasetTest, HonorsEnvironmentOverrides) {
  ASSERT_OK_AND_ASSIGN(Dataset dataset, Dataset::Open());
  EXPECT_EQ(dataset.dir(), dir_->path());
  EXPECT_EQ(dataset.d30_rows(), 500);
  EXPECT_EQ(dataset.d120_rows(), 200);
  EXPECT_EQ(dataset.higgs_events(), 100);
  EXPECT_EQ(dataset.higgs_files(), 2);
}

TEST_F(DatasetTest, MaterializesOnceAndReuses) {
  ASSERT_OK_AND_ASSIGN(Dataset dataset, Dataset::Open());
  ASSERT_OK_AND_ASSIGN(std::string csv, dataset.D30Csv());
  ASSERT_OK_AND_ASSIGN(uint64_t size1, FileSize(csv));
  EXPECT_GT(size1, 0u);
  // Second request returns the same file without rewriting.
  ASSERT_OK_AND_ASSIGN(std::string csv2, dataset.D30Csv());
  EXPECT_EQ(csv, csv2);
  ASSERT_OK_AND_ASSIGN(std::string bin, dataset.D30Binary());
  ASSERT_OK_AND_ASSIGN(std::string shuffled, dataset.D30CsvShuffled());
  EXPECT_NE(bin, csv);
  EXPECT_NE(shuffled, csv);
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> refs, dataset.HiggsRefFiles());
  EXPECT_EQ(refs.size(), 2u);
  ASSERT_OK_AND_ASSIGN(std::string runs, dataset.GoodRunsCsv());
  EXPECT_TRUE(FileExists(runs));
}

TEST_F(DatasetTest, ShuffledCopyHoldsSameMultiset) {
  ASSERT_OK_AND_ASSIGN(Dataset dataset, Dataset::Open());
  ASSERT_OK_AND_ASSIGN(std::string plain, dataset.D30Csv());
  ASSERT_OK_AND_ASSIGN(std::string shuffled, dataset.D30CsvShuffled());
  RawEngine engine;
  Schema schema = dataset.D30Spec().ToSchema();
  ASSERT_OK(engine.RegisterCsv("a", plain, schema));
  ASSERT_OK(engine.RegisterCsv("b", shuffled, schema));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  for (const char* agg : {"SUM(col0)", "MAX(col3)", "COUNT(*)"}) {
    ASSERT_OK_AND_ASSIGN(
        QueryResult ra,
        engine.Query(std::string("SELECT ") + agg + " FROM a", options));
    ASSERT_OK_AND_ASSIGN(
        QueryResult rb,
        engine.Query(std::string("SELECT ") + agg + " FROM b", options));
    ASSERT_OK_AND_ASSIGN(Datum va, ra.Scalar());
    ASSERT_OK_AND_ASSIGN(Datum vb, rb.Scalar());
    EXPECT_EQ(va, vb) << agg;
  }
}

// --- failure injection ---------------------------------------------------------

using FailureTest = testing::TempDirTest;

TEST_F(FailureTest, CorruptRefFilesRejected) {
  // Garbage bytes.
  std::string garbage = Path("g.ref");
  ASSERT_OK(WriteStringToFile(garbage, "this is not an REF file at all"));
  EXPECT_FALSE(RefReader::Open(garbage).ok());
  // Truncated header.
  std::string tiny = Path("t.ref");
  ASSERT_OK(WriteStringToFile(tiny, "RE"));
  EXPECT_FALSE(RefReader::Open(tiny).ok());
  // Valid magic, directory offset beyond EOF.
  RefHeader header;
  header.directory_offset = 1 << 20;
  std::string bytes;
  header.SerializeTo(&bytes);
  std::string bad_dir = Path("d.ref");
  ASSERT_OK(WriteStringToFile(bad_dir, bytes));
  EXPECT_FALSE(RefReader::Open(bad_dir).ok());
}

TEST_F(FailureTest, MalformedCsvSurfacesParseError) {
  std::string path = Path("bad.csv");
  ASSERT_OK(WriteStringToFile(path, "1,2\n3,notanumber\n"));
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsv(
      "t", path, Schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}}));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;  // checked parse path
  auto result = engine.Query("SELECT MAX(b) FROM t", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST_F(FailureTest, JitCsvScanRequiresTrailingNewline) {
  JitTemplateCache cache;
  if (!cache.compiler_available()) GTEST_SKIP();
  std::string path = Path("nonl.csv");
  ASSERT_OK(WriteStringToFile(path, "1,2\n3,4"));  // no trailing newline
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  AccessPathSpec spec;
  spec.format = FileFormat::kCsv;
  spec.mode = ScanMode::kSequential;
  spec.outputs = {{0, DataType::kInt32}};
  JitScanArgs args;
  args.spec = spec;
  args.output_schema = Schema{{"a", DataType::kInt32}};
  args.file = file.get();
  JitScanOperator scan(&cache, std::move(args));
  Status st = scan.Open();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing newline"), std::string_view::npos);
}

TEST_F(FailureTest, JitSelectiveScanRequiresRowSet) {
  JitTemplateCache cache;
  if (!cache.compiler_available()) GTEST_SKIP();
  std::string path = Path("b.bin");
  ASSERT_OK(WriteStringToFile(path, std::string(40, '\0')));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  AccessPathSpec spec;
  spec.format = FileFormat::kBinary;
  spec.mode = ScanMode::kByRowIndex;
  spec.outputs = {{0, DataType::kInt32}};
  spec.row_width = 4;
  spec.column_offsets = {0};
  JitScanArgs args;
  args.spec = spec;
  args.output_schema = Schema{{"a", DataType::kInt32}};
  args.file = file.get();
  // No row_set provided.
  JitScanOperator scan(&cache, std::move(args));
  EXPECT_FALSE(scan.Open().ok());
}

// --- late scan with explicit row-id column ---------------------------------------

TEST_F(FailureTest, LateScanViaRowIdColumn) {
  // Build a batch source whose row ids live in a column (the join
  // pipeline-breaking shape) and late-fetch from a binary file.
  TableSpec spec = TableSpec::UniformInt32("t", 3, 50, 3);
  std::string bin = Path("t.bin");
  ASSERT_OK(WriteBinaryFile(spec, bin));
  ASSERT_OK_AND_ASSIGN(BinaryLayout layout,
                       BinaryLayout::Create(spec.ToSchema()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<BinaryReader> reader,
                       BinaryReader::Open(bin, layout));

  Schema in_schema{{"x", DataType::kInt32},
                   {"__row", DataType::kInt64}};
  InMemoryTable table(in_schema);
  ColumnBatch batch(in_schema);
  auto x = std::make_shared<Column>(DataType::kInt32);
  auto rid = std::make_shared<Column>(DataType::kInt64);
  // Deliberately shuffled row ids, with repeats.
  std::vector<int64_t> wanted = {49, 3, 3, 17, 0};
  for (size_t i = 0; i < wanted.size(); ++i) {
    x->Append<int32_t>(static_cast<int32_t>(i));
    rid->Append<int64_t>(wanted[i]);
  }
  batch.AddColumn(x);
  batch.AddColumn(rid);
  ASSERT_OK(table.AppendBatch(batch));

  BinScanSpec fetch_spec;
  fetch_spec.outputs = {2};
  auto fetcher = std::make_unique<InsituRowFetcher>(reader.get(), fetch_spec);
  LateScanOperator late(table.CreateScan(), std::move(fetcher), "__row");
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&late));
  ASSERT_EQ(out.num_rows(), 5);
  // __row consumed, col2 appended.
  EXPECT_EQ(out.schema().FieldIndex("__row"), -1);
  int col2 = out.schema().FieldIndex("col2");
  ASSERT_GE(col2, 0);
  TableDataSource source(spec);
  for (size_t i = 0; i < wanted.size(); ++i) {
    EXPECT_EQ(out.column(col2)->GetDatum(static_cast<int64_t>(i)),
              source.Value(wanted[i], 2))
        << i;
  }
}

// --- one session across all three formats -----------------------------------------

TEST_F(FailureTest, ThreeFormatSession) {
  // CSV dimension, binary facts, REF events in one engine.
  TableSpec facts = TableSpec::UniformInt32("f", 4, 300, 8);
  for (auto& col : facts.columns) col.max_value = 50;
  ASSERT_OK(WriteBinaryFile(facts, Path("f.bin")));
  ASSERT_OK(WriteStringToFile(Path("dim.csv"), [] {
    std::string s;
    for (int i = 0; i <= 50; ++i) s += std::to_string(i) + "," +
                                       std::to_string(i % 5) + "\n";
    return s;
  }()));
  EventGenOptions ev;
  ev.num_events = 120;
  ASSERT_OK(WriteRefFile(Path("e.ref"), ev, 32));

  RawEngine engine;
  ASSERT_OK(engine.RegisterBinary("facts", Path("f.bin"), facts.ToSchema()));
  ASSERT_OK(engine.RegisterCsv(
      "dim", Path("dim.csv"),
      Schema{{"key", DataType::kInt32}, {"grp", DataType::kInt32}}));
  ASSERT_OK(engine.RegisterRef("ev", Path("e.ref")));

  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult join,
      engine.Query("SELECT COUNT(*) FROM facts JOIN dim ON facts.col0 = "
                   "dim.key WHERE dim.grp = 2",
                   options));
  ASSERT_OK_AND_ASSIGN(Datum join_count, join.Scalar());
  // Ground truth.
  TableDataSource source(facts);
  int64_t expected = 0;
  for (int64_t r = 0; r < facts.rows; ++r) {
    int32_t key = source.Value(r, 0).int32_value();
    if (key % 5 == 2) ++expected;
  }
  EXPECT_EQ(join_count.int64_value(), expected);

  ASSERT_OK_AND_ASSIGN(QueryResult events,
                       engine.Query("SELECT COUNT(*) FROM ev_events", options));
  ASSERT_OK_AND_ASSIGN(Datum n, events.Scalar());
  EXPECT_EQ(n.int64_value(), 120);
}

}  // namespace
}  // namespace raw
