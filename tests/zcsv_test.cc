#include <gtest/gtest.h>

#include <string>

#include "common/mmap_file.h"
#include "tests/test_util.h"
#include "zcsv/gzip_block.h"
#include "zcsv/zcsv_scan.h"

namespace raw {
namespace {

Schema TwoColSchema() {
  return Schema{{"a", DataType::kInt32}, {"b", DataType::kString}};
}

std::string MakeCsvText(int rows) {
  std::string text;
  for (int i = 0; i < rows; ++i) {
    text += std::to_string(i) + ",s" + std::to_string(i) + "\n";
  }
  return text;
}

// Built without a leading string literal in an rvalue operator+ chain (GCC
// 12's -Wrestrict false positive, which -Werror CI would reject).
std::string SVal(int64_t i) {
  std::string s = "s";
  s += std::to_string(i);
  return s;
}

std::string QuotedVal(int64_t i) {
  std::string s = "line1\nline2 ";
  s += std::to_string(i);
  return s;
}

TEST(GzipBlockTest, MemberRoundTripAndConsumedSize) {
  std::string compressed;
  ASSERT_OK(GzipCompressMember("hello gzip", &compressed));
  ASSERT_OK(GzipCompressMember(" and again", &compressed));
  std::string out;
  size_t consumed = 0;
  ASSERT_OK(GunzipMember(compressed.data(), compressed.size(), &out,
                         &consumed));
  EXPECT_EQ(out, "hello gzip");
  ASSERT_LT(consumed, compressed.size());
  ASSERT_OK(GunzipMember(compressed.data() + consumed,
                         compressed.size() - consumed, &out, &consumed));
  EXPECT_EQ(out, "hello gzip and again");
  std::string garbage = "not gzip at all";
  EXPECT_FALSE(
      GunzipMember(garbage.data(), garbage.size(), &out, &consumed).ok());
}

TEST(GzipBlockTest, IndexFindsRowsAndChecksConsistency) {
  GzipBlockIndex index;
  index.AppendBlock({0, 100, 400, 0, 10});
  index.AppendBlock({100, 80, 300, 10, 5});
  index.AppendBlock({180, 90, 350, 15, 20});
  ASSERT_OK(index.CheckConsistency());
  EXPECT_EQ(index.total_rows(), 35);
  EXPECT_EQ(index.FindBlockForRow(0), 0);
  EXPECT_EQ(index.FindBlockForRow(9), 0);
  EXPECT_EQ(index.FindBlockForRow(10), 1);
  EXPECT_EQ(index.FindBlockForRow(14), 1);
  EXPECT_EQ(index.FindBlockForRow(15), 2);
  EXPECT_EQ(index.FindBlockForRow(34), 2);
  EXPECT_EQ(index.FindBlockForRow(35), -1);
  EXPECT_EQ(index.FindBlockForRow(-1), -1);
  EXPECT_GT(index.MemoryBytes(), 0);

  GzipBlockIndex gap;
  gap.AppendBlock({0, 100, 400, 0, 10});
  gap.AppendBlock({120, 80, 300, 10, 5});  // compressed-offset gap
  EXPECT_FALSE(gap.CheckConsistency().ok());
}

class ZcsvScanTest : public testing::TempDirTest {
 protected:
  /// Writes `rows` of (int,string) CSV as multi-member gzip with small
  /// blocks, opens it, and returns the text for ground truth.
  std::string WriteAndOpen(int rows, size_t block_bytes) {
    std::string text = MakeCsvText(rows);
    EXPECT_OK(WriteCsvGzFile(Path("t.csv.gz"), text, block_bytes));
    auto file = MmapFile::Open(Path("t.csv.gz"));
    EXPECT_TRUE(file.ok());
    file_ = std::move(file).value();
    return text;
  }

  std::unique_ptr<MmapFile> file_;
};

TEST_F(ZcsvScanTest, ColdScanBuildsIndexAndWarmScanAgrees) {
  constexpr int kRows = 2000;
  WriteAndOpen(kRows, /*block_bytes=*/512);

  GzipBlockIndex index;
  {
    ZcsvScanSpec cold;
    cold.file_schema = TwoColSchema();
    cold.outputs = {0, 1};
    cold.build_index = &index;
    ZcsvScanOperator scan(file_.get(), cold);
    ASSERT_OK(scan.Open());
    int64_t seen = 0;
    while (true) {
      ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
      if (batch.empty()) break;
      for (int64_t r = 0; r < batch.num_rows(); ++r) {
        const int64_t row = batch.row_ids()[static_cast<size_t>(r)];
        EXPECT_EQ(batch.column(0)->Value<int32_t>(r), row);
        EXPECT_EQ(batch.column(1)->StringValue(r), SVal(row));
      }
      seen += batch.num_rows();
    }
    EXPECT_EQ(seen, kRows);
  }
  ASSERT_OK(index.CheckConsistency());
  EXPECT_EQ(index.total_rows(), kRows);
  ASSERT_GT(index.num_blocks(), 1) << "block size too large to split";

  // Warm: scan an interior block range; ids must be file-global.
  const int mid = index.num_blocks() / 2;
  ZcsvScanSpec warm;
  warm.file_schema = TwoColSchema();
  warm.outputs = {0};
  warm.index = &index;
  warm.range = ScanRange::Rows(mid, 1);
  ZcsvScanOperator scan(file_.get(), warm);
  ASSERT_OK(scan.Open());
  int64_t seen = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
    if (batch.empty()) break;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      EXPECT_EQ(batch.column(0)->Value<int32_t>(r),
                batch.row_ids()[static_cast<size_t>(r)]);
    }
    seen += batch.num_rows();
  }
  EXPECT_EQ(seen, index.block(mid).num_rows);
}

TEST_F(ZcsvScanTest, FetcherDecompressesOnlyNeededBlocks) {
  constexpr int kRows = 1000;
  WriteAndOpen(kRows, /*block_bytes=*/256);
  GzipBlockIndex index;
  {
    ZcsvScanSpec cold;
    cold.file_schema = TwoColSchema();
    cold.outputs = {0};
    cold.build_index = &index;
    ZcsvScanOperator scan(file_.get(), cold);
    ASSERT_OK(scan.Open());
    while (true) {
      ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
      if (batch.empty()) break;
    }
  }
  ASSERT_OK(index.CheckConsistency());

  ZcsvRowFetcher fetcher(file_.get(), &index, TwoColSchema(), {0, 1},
                         CsvOptions());
  RowSet rows;
  rows.ids = {0, 1, 500, 999};
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> cols, fetcher.Fetch(rows));
  ASSERT_EQ(cols.size(), 2u);
  for (size_t i = 0; i < rows.ids.size(); ++i) {
    EXPECT_EQ(cols[0]->Value<int32_t>(static_cast<int64_t>(i)), rows.ids[i]);
    EXPECT_EQ(cols[1]->StringValue(static_cast<int64_t>(i)),
              SVal(rows.ids[i]));
  }
  RowSet out_of_range;
  out_of_range.ids = {kRows + 5};
  EXPECT_FALSE(fetcher.Fetch(out_of_range).ok());
  RowSet empty;
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> none, fetcher.Fetch(empty));
  EXPECT_EQ(none[0]->length(), 0);
}

TEST_F(ZcsvScanTest, QuotedFieldsWithEmbeddedNewlinesSurvive) {
  // Member cuts are quote-aware: the embedded "\n" must not split a row.
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += std::to_string(i) + ",\"line1\nline2 " + std::to_string(i) +
            "\"\n";
  }
  ASSERT_OK(WriteCsvGzFile(Path("q.csv.gz"), text, /*block_bytes=*/128));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file,
                       MmapFile::Open(Path("q.csv.gz")));
  GzipBlockIndex index;
  ZcsvScanSpec cold;
  cold.file_schema = TwoColSchema();
  cold.outputs = {0, 1};
  cold.build_index = &index;
  ZcsvScanOperator scan(file.get(), cold);
  ASSERT_OK(scan.Open());
  int64_t seen = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
    if (batch.empty()) break;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      const int64_t row = batch.row_ids()[static_cast<size_t>(r)];
      EXPECT_EQ(batch.column(1)->StringValue(r), QuotedVal(row));
    }
    seen += batch.num_rows();
  }
  EXPECT_EQ(seen, 200);
  ASSERT_OK(index.CheckConsistency());
  EXPECT_TRUE(index.quoted());
  EXPECT_GT(index.num_blocks(), 1);

  // Quoted late-scan fetch through the index.
  ZcsvRowFetcher fetcher(file.get(), &index, TwoColSchema(), {1},
                         CsvOptions());
  RowSet rows;
  rows.ids = {199, 3};
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> cols, fetcher.Fetch(rows));
  EXPECT_EQ(cols[0]->StringValue(0), QuotedVal(199));
  EXPECT_EQ(cols[0]->StringValue(1), QuotedVal(3));
}

TEST_F(ZcsvScanTest, EmptyFileYieldsZeroRowsAndEmptyIndex) {
  ASSERT_OK(WriteCsvGzFile(Path("e.csv.gz"), ""));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file,
                       MmapFile::Open(Path("e.csv.gz")));
  GzipBlockIndex index;
  ZcsvScanSpec spec;
  spec.file_schema = TwoColSchema();
  spec.outputs = {0};
  spec.build_index = &index;
  ZcsvScanOperator scan(file.get(), spec);
  ASSERT_OK(scan.Open());
  ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
  EXPECT_TRUE(batch.empty());
  ASSERT_OK(index.CheckConsistency());
  EXPECT_EQ(index.total_rows(), 0);
}

}  // namespace
}  // namespace raw
