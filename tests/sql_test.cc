#include <gtest/gtest.h>

#include "engine/sql/lexer.h"
#include "engine/sql/parser.h"
#include "tests/test_util.h"

namespace raw {
namespace {

using sql::Lex;
using sql::Parse;
using sql::TokenType;

TEST(LexerTest, KeywordsCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("select FROM wHeRe"));
  ASSERT_EQ(tokens.size(), 4u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
}

TEST(LexerTest, NumbersAndStrings) {
  // A negative literal is recognized after a symbol/keyword (the only
  // positions SQL grammar puts one), not after another literal.
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("42 < -17 3.25 1e9 'hi there'"));
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[2].type, TokenType::kInteger);
  EXPECT_EQ(tokens[2].text, "-17");
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[4].type, TokenType::kFloat);
  EXPECT_EQ(tokens[5].type, TokenType::kString);
  EXPECT_EQ(tokens[5].text, "hi there");
}

TEST(LexerTest, OperatorsNormalized) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("<= >= != <> < > ="));
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "!=");
  EXPECT_EQ(tokens[3].text, "!=");  // <> normalized
  EXPECT_EQ(tokens[4].text, "<");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Lex("select @foo").ok());
  EXPECT_FALSE(Lex("'unterminated").ok());
}

TEST(ParserTest, SimpleAggregate) {
  ASSERT_OK_AND_ASSIGN(QuerySpec spec,
                       Parse("SELECT MAX(col11) FROM t WHERE col1 < 500"));
  ASSERT_EQ(spec.tables.size(), 1u);
  EXPECT_EQ(spec.tables[0], "t");
  ASSERT_EQ(spec.aggregates.size(), 1u);
  EXPECT_EQ(spec.aggregates[0].kind, AggKind::kMax);
  EXPECT_EQ(spec.aggregates[0].column.column, "col11");
  ASSERT_EQ(spec.predicates.size(), 1u);
  EXPECT_EQ(spec.predicates[0].op, CompareOp::kLt);
  EXPECT_EQ(spec.predicates[0].literal.int64_value(), 500);
}

TEST(ParserTest, MultipleAggregatesAndAliases) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      Parse("SELECT MIN(a) AS lo, MAX(a) AS hi, COUNT(*) FROM t"));
  ASSERT_EQ(spec.aggregates.size(), 3u);
  EXPECT_EQ(spec.aggregates[0].output_name, "lo");
  EXPECT_EQ(spec.aggregates[1].output_name, "hi");
  EXPECT_TRUE(spec.aggregates[2].count_star);
}

TEST(ParserTest, JoinWithQualifiedRefs) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      Parse("SELECT MAX(f1.col11) FROM f1 JOIN f2 ON f1.col1 = f2.col1 "
            "WHERE f2.col2 < 100"));
  ASSERT_EQ(spec.tables.size(), 2u);
  EXPECT_EQ(spec.join_left.table, "f1");
  EXPECT_EQ(spec.join_right.table, "f2");
  EXPECT_EQ(spec.predicates[0].column.table, "f2");
}

TEST(ParserTest, GroupByAndLimit) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      Parse("SELECT eventID, COUNT(*) FROM muons WHERE pt > 20.5 "
            "GROUP BY eventID LIMIT 10"));
  ASSERT_EQ(spec.group_by.size(), 1u);
  EXPECT_EQ(spec.group_by[0].column, "eventID");
  EXPECT_EQ(spec.limit, 10);
  EXPECT_DOUBLE_EQ(spec.predicates[0].literal.float64_value(), 20.5);
  ASSERT_EQ(spec.projections.size(), 1u);
  ASSERT_EQ(spec.aggregates.size(), 1u);
}

TEST(ParserTest, AndChains) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      Parse("SELECT MAX(col6) FROM t WHERE col1 < 10 AND col5 < 20 AND "
            "col2 >= 3"));
  EXPECT_EQ(spec.predicates.size(), 3u);
  EXPECT_EQ(spec.predicates[2].op, CompareOp::kGe);
}

TEST(ParserTest, NegativeAndFloatLiterals) {
  ASSERT_OK_AND_ASSIGN(QuerySpec spec,
                       Parse("SELECT COUNT(*) FROM t WHERE x > -5"));
  EXPECT_EQ(spec.predicates[0].literal.int64_value(), -5);
  ASSERT_OK_AND_ASSIGN(QuerySpec spec2,
                       Parse("SELECT COUNT(*) FROM t WHERE x < 2.5"));
  EXPECT_DOUBLE_EQ(spec2.predicates[0].literal.float64_value(), 2.5);
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(Parse("SELECT COUNT(*) FROM t;").ok());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT MAX(col) t").ok());
  EXPECT_FALSE(Parse("SELECT MAX(col) FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT MAX(*) FROM t").ok());  // * only for COUNT
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM t GROUP eventID").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM t extra").ok());
  EXPECT_FALSE(Parse("SELECT a, MAX(b) FROM t").ok());  // needs GROUP BY
}

TEST(ParserTest, PositionalParameters) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      Parse("SELECT MAX(col2) FROM t WHERE col1 < ? AND col3 = ?"));
  EXPECT_EQ(spec.num_params, 2);
  ASSERT_EQ(spec.predicates.size(), 2u);
  EXPECT_TRUE(spec.predicates[0].is_parameter());
  EXPECT_EQ(spec.predicates[0].param_index, 0);
  EXPECT_TRUE(spec.predicates[1].is_parameter());
  EXPECT_EQ(spec.predicates[1].param_index, 1);
  // Parameters and literals mix freely.
  ASSERT_OK_AND_ASSIGN(
      QuerySpec mixed,
      Parse("SELECT COUNT(*) FROM t WHERE a < 5 AND b < ?"));
  EXPECT_EQ(mixed.num_params, 1);
  EXPECT_FALSE(mixed.predicates[0].is_parameter());
  EXPECT_TRUE(mixed.predicates[1].is_parameter());
  // ToString renders placeholders, not stale literals.
  EXPECT_NE(spec.ToString().find("col1 < ?1"), std::string::npos)
      << spec.ToString();
  // `?` outside a predicate literal position is rejected.
  EXPECT_FALSE(Parse("SELECT MAX(?) FROM t").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM t LIMIT ?").ok());
}

TEST(ParserTest, ToStringRendersSpec) {
  ASSERT_OK_AND_ASSIGN(
      QuerySpec spec,
      Parse("SELECT MAX(col11) FROM t WHERE col1 < 500 LIMIT 3"));
  std::string s = spec.ToString();
  EXPECT_NE(s.find("MAX(col11)"), std::string::npos);
  EXPECT_NE(s.find("col1 < 500"), std::string::npos);
  EXPECT_NE(s.find("LIMIT 3"), std::string::npos);
}

}  // namespace
}  // namespace raw
