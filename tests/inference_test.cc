// Schema inference + EXPLAIN: the engine adapting to files nobody described.

#include <gtest/gtest.h>

#include "common/mmap_file.h"
#include "csv/schema_inference.h"
#include "engine/raw_engine.h"
#include "tests/test_util.h"

namespace raw {
namespace {

TEST(ClassifyFieldTest, Basics) {
  auto classify = [](std::string_view s) {
    return ClassifyField(s.data(), static_cast<int32_t>(s.size()));
  };
  EXPECT_EQ(classify("0"), DataType::kInt32);
  EXPECT_EQ(classify("-42"), DataType::kInt32);
  EXPECT_EQ(classify("2147483648"), DataType::kInt64);  // > INT32_MAX
  EXPECT_EQ(classify("-9223372036854775807"), DataType::kInt64);
  EXPECT_EQ(classify("3.5"), DataType::kFloat64);
  EXPECT_EQ(classify("1e9"), DataType::kFloat64);
  EXPECT_EQ(classify("true"), DataType::kBool);
  EXPECT_EQ(classify("false"), DataType::kBool);
  EXPECT_EQ(classify("hello"), DataType::kString);
  EXPECT_EQ(classify("12ab"), DataType::kString);
  EXPECT_EQ(classify(""), DataType::kString);
}

TEST(PromoteTypesTest, Lattice) {
  EXPECT_EQ(PromoteTypes(DataType::kInt32, DataType::kInt32),
            DataType::kInt32);
  EXPECT_EQ(PromoteTypes(DataType::kInt32, DataType::kInt64),
            DataType::kInt64);
  EXPECT_EQ(PromoteTypes(DataType::kInt64, DataType::kFloat64),
            DataType::kFloat64);
  EXPECT_EQ(PromoteTypes(DataType::kFloat64, DataType::kString),
            DataType::kString);
  // bool mixed with numerics cannot be narrowed: only string holds both.
  EXPECT_EQ(PromoteTypes(DataType::kBool, DataType::kInt32),
            DataType::kString);
  EXPECT_EQ(PromoteTypes(DataType::kFloat64, DataType::kBool),
            DataType::kString);
  EXPECT_EQ(PromoteTypes(DataType::kBool, DataType::kBool), DataType::kBool);
}

using InferenceTest = testing::TempDirTest;

TEST_F(InferenceTest, InfersTypesWithoutHeader) {
  std::string path = Path("t.csv");
  ASSERT_OK(WriteStringToFile(path,
                              "1,2.5,abc,9999999999\n"
                              "2,3,def,12\n"
                              "3,4.25,,0\n"));
  ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(path));
  ASSERT_EQ(schema.num_fields(), 4);
  EXPECT_EQ(schema.field(0).type, DataType::kInt32);
  EXPECT_EQ(schema.field(0).name, "col0");
  EXPECT_EQ(schema.field(1).type, DataType::kFloat64);  // 3 promotes up
  EXPECT_EQ(schema.field(2).type, DataType::kString);   // empty field too
  EXPECT_EQ(schema.field(3).type, DataType::kInt64);    // wide value
}

TEST_F(InferenceTest, HeaderNamesUsed) {
  std::string path = Path("h.csv");
  ASSERT_OK(WriteStringToFile(path, "id,score\n1,0.5\n2,0.7\n"));
  CsvOptions options;
  options.has_header = true;
  ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(path, options));
  EXPECT_EQ(schema.field(0).name, "id");
  EXPECT_EQ(schema.field(1).name, "score");
  EXPECT_EQ(schema.field(0).type, DataType::kInt32);
  EXPECT_EQ(schema.field(1).type, DataType::kFloat64);
}

TEST_F(InferenceTest, SamplingWindowRespected) {
  // Row 11 would force a string type, but we only sample 10 rows.
  std::string content;
  for (int i = 0; i < 10; ++i) content += std::to_string(i) + "\n";
  content += "surprise\n";
  std::string path = Path("w.csv");
  ASSERT_OK(WriteStringToFile(path, content));
  ASSERT_OK_AND_ASSIGN(Schema narrow,
                       InferCsvSchema(path, CsvOptions(), /*sample_rows=*/10));
  EXPECT_EQ(narrow.field(0).type, DataType::kInt32);
  ASSERT_OK_AND_ASSIGN(Schema wide,
                       InferCsvSchema(path, CsvOptions(), /*sample_rows=*/100));
  EXPECT_EQ(wide.field(0).type, DataType::kString);
}

TEST_F(InferenceTest, RejectsRaggedAndEmptyFiles) {
  std::string ragged = Path("r.csv");
  ASSERT_OK(WriteStringToFile(ragged, "1,2\n3\n"));
  EXPECT_FALSE(InferCsvSchema(ragged).ok());
  std::string empty = Path("e.csv");
  ASSERT_OK(WriteStringToFile(empty, ""));
  EXPECT_FALSE(InferCsvSchema(empty).ok());
}

TEST_F(InferenceTest, EndToEndQueryOverInferredTable) {
  std::string path = Path("auto.csv");
  std::string content;
  for (int i = 0; i < 500; ++i) {
    content += std::to_string(i) + "," + std::to_string(i * 0.5) + ",name" +
               std::to_string(i % 3) + "\n";
  }
  ASSERT_OK(WriteStringToFile(path, content));
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsvInferred("t", path));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT MAX(col1) FROM t WHERE col0 < 100", options));
  ASSERT_OK_AND_ASSIGN(Datum max, result.Scalar());
  EXPECT_DOUBLE_EQ(max.float64_value(), 49.5);
  ASSERT_OK_AND_ASSIGN(
      QueryResult names,
      engine.Query("SELECT COUNT(*) FROM t WHERE col2 = 'name1'", options));
  ASSERT_OK_AND_ASSIGN(Datum count, names.Scalar());
  EXPECT_EQ(count.int64_value(), 167);  // i % 3 == 1 for i in [0, 500)
}

TEST_F(InferenceTest, QuotedCsvScansAgreeWithInference) {
  // Quoted numerics, embedded delimiters/newlines/escaped quotes: the
  // sampler and the scan paths share one CsvOptions and one quote-aware
  // tokenizer, so what inference classifies is exactly what queries parse.
  std::string path = Path("q.csv");
  std::string content = "id,name,score\n";
  for (int i = 0; i < 200; ++i) {
    content += "\"" + std::to_string(i) + "\",";
    if (i % 7 == 0) {
      content += "\"na,me\nwith \"\"stuff\"\"\",";
    } else {
      content += "plain" + std::to_string(i % 3) + ",";
    }
    content += std::to_string(i * 0.5) + "\n";
  }
  ASSERT_OK(WriteStringToFile(path, content));
  CsvOptions csv;
  csv.has_header = true;
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsvInferred("q", path, csv));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;

  // Quoted integers classified (and parsed) as integers, not strings.
  ASSERT_OK_AND_ASSIGN(QueryResult all,
                       engine.Query("SELECT COUNT(*) FROM q", options));
  EXPECT_EQ((*all.Scalar()).int64_value(), 200);
  // Cold (sequential quoted scan, builds the positional map)...
  std::string sql = "SELECT COUNT(*) FROM q WHERE id < 100";
  ASSERT_OK_AND_ASSIGN(QueryResult cold, engine.Query(sql, options));
  EXPECT_EQ((*cold.Scalar()).int64_value(), 100);
  // ...and warm (positional quoted scan + late scans) agree.
  ASSERT_OK_AND_ASSIGN(QueryResult warm, engine.Query(sql, options));
  EXPECT_EQ((*warm.Scalar()).int64_value(), 100);
  ASSERT_OK_AND_ASSIGN(
      QueryResult score,
      engine.Query("SELECT MAX(score) FROM q WHERE id < 100", options));
  EXPECT_DOUBLE_EQ((*score.Scalar()).float64_value(), 49.5);
  // Outer quotes are stripped; the field's raw content ("" escapes
  // included, matching the sampler) comes back verbatim.
  ASSERT_OK_AND_ASSIGN(
      QueryResult name,
      engine.Query("SELECT name FROM q WHERE id = 7", options));
  ASSERT_EQ(name.num_rows(), 1);
  EXPECT_EQ((*name.ValueAt(0, 0)).string_value(),
            "na,me\nwith \"\"stuff\"\"");
}

TEST_F(InferenceTest, RegisterCsvInferredSurfacesSamplingFailure) {
  std::string path = Path("empty.csv");
  ASSERT_OK(WriteStringToFile(path, ""));
  RawEngine engine;
  Status status = engine.RegisterCsvInferred("bad", path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("schema inference for table 'bad'"),
            std::string::npos)
      << status.ToString();
  // Nothing half-registered.
  EXPECT_EQ(engine.Stats().table("bad"), nullptr);
  // A missing file surfaces too (no silent fallback anywhere).
  EXPECT_FALSE(engine.RegisterCsvInferred("gone", Path("nope.csv")).ok());
}

TEST_F(InferenceTest, ExplainReturnsPlanWithoutExecuting) {
  std::string path = Path("x.csv");
  ASSERT_OK(WriteStringToFile(path, "1,2\n3,4\n"));
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsvInferred("t", path));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("EXPLAIN SELECT MAX(col1) FROM t WHERE col0 < 2",
                   options));
  ASSERT_EQ(result.num_rows(), 1);
  ASSERT_OK_AND_ASSIGN(Datum plan, result.Scalar());
  EXPECT_NE(plan.string_value().find("seq-scan"), std::string::npos);
  EXPECT_NE(plan.string_value().find("aggregate"), std::string::npos);
  // Planning an EXPLAIN still opens scans but must not drain them into the
  // shred cache.
  EXPECT_EQ(engine.Stats().shred_cache.entries, 0);
}

}  // namespace
}  // namespace raw
