// Schema inference + EXPLAIN: the engine adapting to files nobody described.

#include <gtest/gtest.h>

#include "common/mmap_file.h"
#include "csv/schema_inference.h"
#include "engine/raw_engine.h"
#include "tests/test_util.h"

namespace raw {
namespace {

TEST(ClassifyFieldTest, Basics) {
  auto classify = [](std::string_view s) {
    return ClassifyField(s.data(), static_cast<int32_t>(s.size()));
  };
  EXPECT_EQ(classify("0"), DataType::kInt32);
  EXPECT_EQ(classify("-42"), DataType::kInt32);
  EXPECT_EQ(classify("2147483648"), DataType::kInt64);  // > INT32_MAX
  EXPECT_EQ(classify("-9223372036854775807"), DataType::kInt64);
  EXPECT_EQ(classify("3.5"), DataType::kFloat64);
  EXPECT_EQ(classify("1e9"), DataType::kFloat64);
  EXPECT_EQ(classify("true"), DataType::kBool);
  EXPECT_EQ(classify("false"), DataType::kBool);
  EXPECT_EQ(classify("hello"), DataType::kString);
  EXPECT_EQ(classify("12ab"), DataType::kString);
  EXPECT_EQ(classify(""), DataType::kString);
}

TEST(PromoteTypesTest, Lattice) {
  EXPECT_EQ(PromoteTypes(DataType::kInt32, DataType::kInt32),
            DataType::kInt32);
  EXPECT_EQ(PromoteTypes(DataType::kInt32, DataType::kInt64),
            DataType::kInt64);
  EXPECT_EQ(PromoteTypes(DataType::kInt64, DataType::kFloat64),
            DataType::kFloat64);
  EXPECT_EQ(PromoteTypes(DataType::kFloat64, DataType::kString),
            DataType::kString);
  // bool mixed with numerics cannot be narrowed: only string holds both.
  EXPECT_EQ(PromoteTypes(DataType::kBool, DataType::kInt32),
            DataType::kString);
  EXPECT_EQ(PromoteTypes(DataType::kFloat64, DataType::kBool),
            DataType::kString);
  EXPECT_EQ(PromoteTypes(DataType::kBool, DataType::kBool), DataType::kBool);
}

using InferenceTest = testing::TempDirTest;

TEST_F(InferenceTest, InfersTypesWithoutHeader) {
  std::string path = Path("t.csv");
  ASSERT_OK(WriteStringToFile(path,
                              "1,2.5,abc,9999999999\n"
                              "2,3,def,12\n"
                              "3,4.25,,0\n"));
  ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(path));
  ASSERT_EQ(schema.num_fields(), 4);
  EXPECT_EQ(schema.field(0).type, DataType::kInt32);
  EXPECT_EQ(schema.field(0).name, "col0");
  EXPECT_EQ(schema.field(1).type, DataType::kFloat64);  // 3 promotes up
  EXPECT_EQ(schema.field(2).type, DataType::kString);   // empty field too
  EXPECT_EQ(schema.field(3).type, DataType::kInt64);    // wide value
}

TEST_F(InferenceTest, HeaderNamesUsed) {
  std::string path = Path("h.csv");
  ASSERT_OK(WriteStringToFile(path, "id,score\n1,0.5\n2,0.7\n"));
  CsvOptions options;
  options.has_header = true;
  ASSERT_OK_AND_ASSIGN(Schema schema, InferCsvSchema(path, options));
  EXPECT_EQ(schema.field(0).name, "id");
  EXPECT_EQ(schema.field(1).name, "score");
  EXPECT_EQ(schema.field(0).type, DataType::kInt32);
  EXPECT_EQ(schema.field(1).type, DataType::kFloat64);
}

TEST_F(InferenceTest, SamplingWindowRespected) {
  // Row 11 would force a string type, but we only sample 10 rows.
  std::string content;
  for (int i = 0; i < 10; ++i) content += std::to_string(i) + "\n";
  content += "surprise\n";
  std::string path = Path("w.csv");
  ASSERT_OK(WriteStringToFile(path, content));
  ASSERT_OK_AND_ASSIGN(Schema narrow,
                       InferCsvSchema(path, CsvOptions(), /*sample_rows=*/10));
  EXPECT_EQ(narrow.field(0).type, DataType::kInt32);
  ASSERT_OK_AND_ASSIGN(Schema wide,
                       InferCsvSchema(path, CsvOptions(), /*sample_rows=*/100));
  EXPECT_EQ(wide.field(0).type, DataType::kString);
}

TEST_F(InferenceTest, RejectsRaggedAndEmptyFiles) {
  std::string ragged = Path("r.csv");
  ASSERT_OK(WriteStringToFile(ragged, "1,2\n3\n"));
  EXPECT_FALSE(InferCsvSchema(ragged).ok());
  std::string empty = Path("e.csv");
  ASSERT_OK(WriteStringToFile(empty, ""));
  EXPECT_FALSE(InferCsvSchema(empty).ok());
}

TEST_F(InferenceTest, EndToEndQueryOverInferredTable) {
  std::string path = Path("auto.csv");
  std::string content;
  for (int i = 0; i < 500; ++i) {
    content += std::to_string(i) + "," + std::to_string(i * 0.5) + ",name" +
               std::to_string(i % 3) + "\n";
  }
  ASSERT_OK(WriteStringToFile(path, content));
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsvInferred("t", path));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT MAX(col1) FROM t WHERE col0 < 100", options));
  ASSERT_OK_AND_ASSIGN(Datum max, result.Scalar());
  EXPECT_DOUBLE_EQ(max.float64_value(), 49.5);
  ASSERT_OK_AND_ASSIGN(
      QueryResult names,
      engine.Query("SELECT COUNT(*) FROM t WHERE col2 = 'name1'", options));
  ASSERT_OK_AND_ASSIGN(Datum count, names.Scalar());
  EXPECT_EQ(count.int64_value(), 167);  // i % 3 == 1 for i in [0, 500)
}

TEST_F(InferenceTest, ExplainReturnsPlanWithoutExecuting) {
  std::string path = Path("x.csv");
  ASSERT_OK(WriteStringToFile(path, "1,2\n3,4\n"));
  RawEngine engine;
  ASSERT_OK(engine.RegisterCsvInferred("t", path));
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("EXPLAIN SELECT MAX(col1) FROM t WHERE col0 < 2",
                   options));
  ASSERT_EQ(result.num_rows(), 1);
  ASSERT_OK_AND_ASSIGN(Datum plan, result.Scalar());
  EXPECT_NE(plan.string_value().find("seq-scan"), std::string::npos);
  EXPECT_NE(plan.string_value().find("aggregate"), std::string::npos);
  // Planning an EXPLAIN still opens scans but must not drain them into the
  // shred cache.
  EXPECT_EQ(engine.shred_cache()->num_entries(), 0);
}

}  // namespace
}  // namespace raw
