#include <gtest/gtest.h>

#include "columnar/batch.h"
#include "columnar/column.h"
#include "columnar/selection_vector.h"
#include "tests/test_util.h"

namespace raw {
namespace {

TEST(ColumnTest, AppendAndRead) {
  Column col(DataType::kInt32);
  col.Append<int32_t>(1);
  col.Append<int32_t>(-2);
  col.Append<int32_t>(3);
  EXPECT_EQ(col.length(), 3);
  EXPECT_EQ(col.Value<int32_t>(0), 1);
  EXPECT_EQ(col.Value<int32_t>(1), -2);
  EXPECT_EQ(col.GetDatum(2), Datum::Int32(3));
}

TEST(ColumnTest, AllTypesRoundTripDatum) {
  struct Case {
    Datum d;
  } cases[] = {{Datum::Bool(true)},       {Datum::Int32(-7)},
               {Datum::Int64(1ll << 40)}, {Datum::Float32(1.5f)},
               {Datum::Float64(-2.25)},   {Datum::String("abc")}};
  for (const auto& c : cases) {
    Column col(c.d.type());
    col.AppendDatum(c.d);
    EXPECT_EQ(col.GetDatum(0), c.d) << DataTypeToString(c.d.type());
  }
}

TEST(ColumnTest, ZeroedAndResize) {
  Column col = Column::Zeroed(DataType::kInt64, 5);
  EXPECT_EQ(col.length(), 5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(col.Value<int64_t>(i), 0);
  col.Resize(2);
  EXPECT_EQ(col.length(), 2);
  col.Resize(4);
  EXPECT_EQ(col.length(), 4);
  EXPECT_EQ(col.Value<int64_t>(3), 0);
}

TEST(ColumnTest, GatherInt32AndString) {
  Column col(DataType::kInt32);
  for (int i = 0; i < 10; ++i) col.Append<int32_t>(i * 10);
  int32_t idx32[] = {9, 0, 5};
  Column g = col.Gather(idx32, 3);
  EXPECT_EQ(g.length(), 3);
  EXPECT_EQ(g.Value<int32_t>(0), 90);
  EXPECT_EQ(g.Value<int32_t>(1), 0);
  EXPECT_EQ(g.Value<int32_t>(2), 50);

  Column s(DataType::kString);
  s.AppendString("a");
  s.AppendString("b");
  s.AppendString("c");
  int64_t idx64[] = {2, 2, 0};
  Column gs = s.Gather(idx64, 3);
  EXPECT_EQ(gs.StringValue(0), "c");
  EXPECT_EQ(gs.StringValue(2), "a");
}

TEST(ColumnTest, AppendColumnTypeChecked) {
  Column a(DataType::kInt32), b(DataType::kInt32), c(DataType::kInt64);
  a.Append<int32_t>(1);
  b.Append<int32_t>(2);
  ASSERT_OK(a.AppendColumn(b));
  EXPECT_EQ(a.length(), 2);
  EXPECT_EQ(a.Value<int32_t>(1), 2);
  EXPECT_FALSE(a.AppendColumn(c).ok());
}

TEST(ColumnTest, LoadedBitmap) {
  Column col = Column::Zeroed(DataType::kFloat64, 10);
  EXPECT_TRUE(col.fully_loaded());
  EXPECT_EQ(col.CountLoaded(), 10);
  col.MarkAllMissing();
  EXPECT_FALSE(col.fully_loaded());
  EXPECT_EQ(col.CountLoaded(), 0);
  col.SetLoaded(3);
  col.SetLoaded(9);
  EXPECT_TRUE(col.IsLoaded(3));
  EXPECT_FALSE(col.IsLoaded(4));
  EXPECT_EQ(col.CountLoaded(), 2);
}

TEST(ColumnTest, EqualsConsidersLoadedness) {
  Column a = Column::Zeroed(DataType::kInt32, 3);
  Column b = Column::Zeroed(DataType::kInt32, 3);
  EXPECT_TRUE(a.Equals(b));
  b.MarkAllMissing();
  EXPECT_FALSE(a.Equals(b));
}

TEST(ColumnTest, MemoryBytes) {
  Column col = Column::Zeroed(DataType::kInt32, 100);
  EXPECT_EQ(col.MemoryBytes(), 400);
}

TEST(SelectionVectorTest, AllAndCompose) {
  SelectionVector all = SelectionVector::All(5);
  EXPECT_EQ(all.size(), 5);
  EXPECT_EQ(all[4], 4);
  SelectionVector outer({1, 3, 5, 7});
  SelectionVector inner({0, 2});
  SelectionVector composed = outer.Compose(inner);
  ASSERT_EQ(composed.size(), 2);
  EXPECT_EQ(composed[0], 1);
  EXPECT_EQ(composed[1], 5);
}

ColumnBatch MakeBatch() {
  Schema schema{{"x", DataType::kInt32}, {"y", DataType::kFloat64}};
  ColumnBatch batch(schema);
  auto x = std::make_shared<Column>(DataType::kInt32);
  auto y = std::make_shared<Column>(DataType::kFloat64);
  for (int i = 0; i < 6; ++i) {
    x->Append<int32_t>(i);
    y->Append<double>(i * 0.5);
  }
  batch.AddColumn(x);
  batch.AddColumn(y);
  batch.SetRowIds({10, 11, 12, 13, 14, 15});
  return batch;
}

TEST(ColumnBatchTest, FilterCompactsColumnsAndRowIds) {
  ColumnBatch batch = MakeBatch();
  SelectionVector sel({1, 4});
  ColumnBatch out = batch.Filter(sel);
  EXPECT_EQ(out.num_rows(), 2);
  EXPECT_EQ(out.column(0)->Value<int32_t>(0), 1);
  EXPECT_EQ(out.column(0)->Value<int32_t>(1), 4);
  EXPECT_DOUBLE_EQ(out.column(1)->Value<double>(1), 2.0);
  ASSERT_TRUE(out.has_row_ids());
  EXPECT_EQ(out.row_ids()[0], 11);
  EXPECT_EQ(out.row_ids()[1], 14);
}

TEST(ColumnBatchTest, SelectColumnsSharesBuffers) {
  ColumnBatch batch = MakeBatch();
  ColumnBatch out = batch.SelectColumns({1});
  EXPECT_EQ(out.num_columns(), 1);
  EXPECT_EQ(out.schema().field(0).name, "y");
  EXPECT_EQ(out.column(0).get(), batch.column(1).get());  // zero copy
  EXPECT_EQ(out.num_rows(), 6);
}

TEST(ColumnBatchTest, ToStringShowsRows) {
  ColumnBatch batch = MakeBatch();
  std::string s = batch.ToString(2);
  EXPECT_NE(s.find("x:int32"), std::string::npos);
  EXPECT_NE(s.find("more"), std::string::npos);
}

}  // namespace
}  // namespace raw
