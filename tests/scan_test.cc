#include <gtest/gtest.h>

#include "columnar/filter.h"
#include "common/mmap_file.h"
#include "csv/csv_writer.h"
#include "engine/formats/builtin.h"
#include "scan/external_table_scan.h"
#include "scan/insitu_bin_scan.h"
#include "scan/insitu_csv_scan.h"
#include "scan/jit_scan.h"
#include "scan/loader.h"
#include "scan/ref_scan.h"
#include "scan/shred_scan.h"
#include "eventsim/event_generator.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

/// Fixture providing a small CSV + binary pair with identical data.
class ScanTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    EnsureBuiltinFormatDriversRegistered();  // JIT codegen needs the registry
    spec_ = TableSpec::UniformInt32("t", 8, 500, /*seed=*/11);
    spec_.columns[5].type = DataType::kFloat64;  // mix in a float column
    csv_path_ = Path("t.csv");
    bin_path_ = Path("t.bin");
    ASSERT_OK(WriteCsvFile(spec_, csv_path_));
    ASSERT_OK(WriteBinaryFile(spec_, bin_path_));
    ASSERT_OK_AND_ASSIGN(csv_file_, MmapFile::Open(csv_path_));
    ASSERT_OK_AND_ASSIGN(BinaryLayout layout,
                         BinaryLayout::Create(spec_.ToSchema()));
    ASSERT_OK_AND_ASSIGN(bin_reader_, BinaryReader::Open(bin_path_, layout));
    source_ = std::make_unique<TableDataSource>(spec_);
  }

  Datum Expected(int64_t row, int col) const {
    return source_->Value(row, col);
  }

  TableSpec spec_;
  std::string csv_path_, bin_path_;
  std::unique_ptr<MmapFile> csv_file_;
  std::unique_ptr<BinaryReader> bin_reader_;
  std::unique_ptr<TableDataSource> source_;
};

TEST_F(ScanTest, InsituCsvSequentialReadsRequestedColumns) {
  CsvScanSpec spec;
  spec.file_schema = spec_.ToSchema();
  spec.outputs = {1, 5};
  spec.batch_rows = 64;
  InsituCsvScanOperator scan(csv_file_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  ASSERT_EQ(out.num_rows(), 500);
  for (int64_t r : {int64_t{0}, int64_t{100}, int64_t{499}}) {
    EXPECT_EQ(out.column(0)->GetDatum(r), Expected(r, 1)) << r;
    EXPECT_EQ(out.column(1)->GetDatum(r), Expected(r, 5)) << r;
  }
  ASSERT_TRUE(out.has_row_ids());
  EXPECT_EQ(out.row_ids()[499], 499);
}

TEST_F(ScanTest, InsituCsvBuildsPositionalMap) {
  PositionalMap pmap = PositionalMap::WithStride(8, 3);  // tracks 0,3,6
  CsvScanSpec spec;
  spec.file_schema = spec_.ToSchema();
  spec.outputs = {0};
  spec.build_pmap = &pmap;
  InsituCsvScanOperator scan(csv_file_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  ASSERT_EQ(pmap.num_rows(), 500);
  ASSERT_OK(pmap.CheckConsistency());
  // Jumping to tracked column 3 and parsing must give column-3 values.
  CsvScanSpec jump;
  jump.file_schema = spec_.ToSchema();
  jump.outputs = {3};
  jump.use_pmap = &pmap;
  jump.anchor_column = 3;
  InsituCsvScanOperator scan2(csv_file_.get(), jump);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out2, CollectAll(&scan2));
  ASSERT_EQ(out2.num_rows(), 500);
  for (int64_t r : {int64_t{0}, int64_t{250}, int64_t{499}}) {
    EXPECT_EQ(out2.column(0)->GetDatum(r), Expected(r, 3));
  }
}

TEST_F(ScanTest, InsituCsvIncrementalParseFromNearby) {
  PositionalMap pmap = PositionalMap::WithStride(8, 3);
  CsvScanSpec build;
  build.file_schema = spec_.ToSchema();
  build.outputs = {0};
  build.build_pmap = &pmap;
  InsituCsvScanOperator scan(csv_file_.get(), build);
  ASSERT_OK(CollectAll(&scan).status());
  // Column 5 is untracked; parse incrementally from tracked column 3.
  CsvScanSpec spec;
  spec.file_schema = spec_.ToSchema();
  spec.outputs = {5};
  spec.use_pmap = &pmap;
  spec.anchor_column = 3;
  InsituCsvScanOperator scan2(csv_file_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan2));
  for (int64_t r : {int64_t{7}, int64_t{123}}) {
    EXPECT_EQ(out.column(0)->GetDatum(r), Expected(r, 5));
  }
}

TEST_F(ScanTest, InsituCsvRowSetShred) {
  PositionalMap pmap = PositionalMap::WithStride(8, 1);  // track everything
  CsvScanSpec build;
  build.file_schema = spec_.ToSchema();
  build.outputs = {0};
  build.build_pmap = &pmap;
  InsituCsvScanOperator scan(csv_file_.get(), build);
  ASSERT_OK(CollectAll(&scan).status());

  CsvScanSpec spec;
  spec.file_schema = spec_.ToSchema();
  spec.outputs = {4};
  spec.use_pmap = &pmap;
  spec.anchor_column = 4;
  RowSet rows;
  rows.ids = {3, 77, 401};
  spec.row_set = rows;  // positions filled by Open()
  InsituCsvScanOperator scan2(csv_file_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan2));
  ASSERT_EQ(out.num_rows(), 3);
  EXPECT_EQ(out.column(0)->GetDatum(0), Expected(3, 4));
  EXPECT_EQ(out.column(0)->GetDatum(2), Expected(401, 4));
  EXPECT_EQ(out.row_ids()[1], 77);
}

TEST_F(ScanTest, InsituCsvValidatesSpec) {
  CsvScanSpec spec;
  spec.file_schema = spec_.ToSchema();
  spec.outputs = {};
  InsituCsvScanOperator empty(csv_file_.get(), spec);
  EXPECT_FALSE(empty.Open().ok());

  spec.outputs = {5, 1};  // not ascending
  InsituCsvScanOperator unsorted(csv_file_.get(), spec);
  EXPECT_FALSE(unsorted.Open().ok());

  spec.outputs = {99};
  InsituCsvScanOperator oob(csv_file_.get(), spec);
  EXPECT_FALSE(oob.Open().ok());
}

TEST_F(ScanTest, ExternalTableScanConvertsEverythingButReturnsRequested) {
  ExternalTableScanOperator scan(csv_file_.get(), spec_.ToSchema(), {2, 7});
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  ASSERT_EQ(out.num_rows(), 500);
  EXPECT_EQ(out.num_columns(), 2);
  EXPECT_EQ(out.column(0)->GetDatum(42), Expected(42, 2));
  EXPECT_EQ(out.column(1)->GetDatum(499), Expected(499, 7));
}

TEST_F(ScanTest, InsituBinScanSequentialAndRowSet) {
  BinScanSpec spec;
  spec.outputs = {0, 5};
  InsituBinScanOperator scan(bin_reader_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  ASSERT_EQ(out.num_rows(), 500);
  EXPECT_EQ(out.column(0)->GetDatum(123), Expected(123, 0));
  EXPECT_EQ(out.column(1)->GetDatum(456), Expected(456, 5));

  BinScanSpec subset;
  subset.outputs = {5};
  RowSet rows;
  rows.ids = {499, 0};  // arbitrary order allowed for binary
  subset.row_set = rows;
  InsituBinScanOperator scan2(bin_reader_.get(), subset);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out2, CollectAll(&scan2));
  ASSERT_EQ(out2.num_rows(), 2);
  EXPECT_EQ(out2.column(0)->GetDatum(0), Expected(499, 5));
  EXPECT_EQ(out2.column(0)->GetDatum(1), Expected(0, 5));
}

TEST_F(ScanTest, JitScanMatchesInterpreted) {
  JitTemplateCache cache;
  if (!cache.compiler_available()) GTEST_SKIP() << "no compiler";
  AccessPathSpec jit_spec;
  jit_spec.format = FileFormat::kCsv;
  jit_spec.mode = ScanMode::kSequential;
  jit_spec.outputs = {{1, DataType::kInt32}, {5, DataType::kFloat64}};
  JitScanArgs args;
  args.spec = jit_spec;
  args.output_schema = Schema{{"c1", DataType::kInt32},
                              {"c5", DataType::kFloat64}};
  args.file = csv_file_.get();
  args.batch_rows = 128;
  JitScanOperator jit_scan(&cache, std::move(args));
  ASSERT_OK_AND_ASSIGN(ColumnBatch jit_out, CollectAll(&jit_scan));

  CsvScanSpec interp;
  interp.file_schema = spec_.ToSchema();
  interp.outputs = {1, 5};
  InsituCsvScanOperator insitu(csv_file_.get(), interp);
  ASSERT_OK_AND_ASSIGN(ColumnBatch insitu_out, CollectAll(&insitu));

  ASSERT_EQ(jit_out.num_rows(), insitu_out.num_rows());
  EXPECT_TRUE(jit_out.column(0)->Equals(*insitu_out.column(0)));
  EXPECT_TRUE(jit_out.column(1)->Equals(*insitu_out.column(1)));
}

TEST_F(ScanTest, LateScanFetchesOnlySurvivors) {
  // Scan column 0, filter to a subset, late-fetch column 5 via binary.
  BinScanSpec base;
  base.outputs = {0};
  auto scan = std::make_unique<InsituBinScanOperator>(bin_reader_.get(), base);
  // Keep rows where col0 < literal at ~20% selectivity.
  Datum lit = spec_.SelectivityLiteral(0, 0.2);
  auto filter = std::make_unique<FilterOperator>(
      std::move(scan), Cmp(CompareOp::kLt, Col(0), Lit(lit)));

  BinScanSpec fetch_spec;
  fetch_spec.outputs = {5};
  auto fetcher =
      std::make_unique<InsituRowFetcher>(bin_reader_.get(), fetch_spec);
  LateScanOperator late(std::move(filter), std::move(fetcher));
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&late));
  ASSERT_GT(out.num_rows(), 0);
  ASSERT_LT(out.num_rows(), 500);
  EXPECT_EQ(out.num_columns(), 2);
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    int64_t row = out.row_ids()[static_cast<size_t>(i)];
    EXPECT_EQ(out.column(1)->GetDatum(i), Expected(row, 5));
  }
}

TEST_F(ScanTest, LateScanFetchCountEqualsSurvivors) {
  // The economic core of column shreds (§5.1, Figure 4): the pushed-up scan
  // touches exactly the qualifying rows, never the filtered-out ones.
  for (double fraction : {0.05, 0.3, 1.0}) {
    BinScanSpec base;
    base.outputs = {0};
    auto scan =
        std::make_unique<InsituBinScanOperator>(bin_reader_.get(), base);
    Datum lit = spec_.SelectivityLiteral(0, fraction);
    auto filter = std::make_unique<FilterOperator>(
        std::move(scan), Cmp(CompareOp::kLt, Col(0), Lit(lit)));
    FilterOperator* filter_ptr = filter.get();
    BinScanSpec fetch_spec;
    fetch_spec.outputs = {5};
    auto fetcher =
        std::make_unique<InsituRowFetcher>(bin_reader_.get(), fetch_spec);
    LateScanOperator late(std::move(filter), std::move(fetcher));
    ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&late));
    EXPECT_EQ(late.values_fetched(), filter_ptr->rows_out());
    EXPECT_EQ(out.num_rows(), filter_ptr->rows_out());
    EXPECT_EQ(filter_ptr->rows_in(), 500);
  }
}

TEST_F(ScanTest, CachedColumnFetcherGathers) {
  auto full = std::make_shared<Column>(DataType::kInt64);
  for (int64_t i = 0; i < 100; ++i) full->Append<int64_t>(i * 2);
  CachedColumnFetcher fetcher(Schema{{"x", DataType::kInt64}}, {full});
  RowSet rows;
  rows.ids = {5, 50, 99};
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> cols, fetcher.Fetch(rows));
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(cols[0]->Value<int64_t>(0), 10);
  EXPECT_EQ(cols[0]->Value<int64_t>(2), 198);
}

TEST_F(ScanTest, LoaderMaterializesCsv) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<InMemoryTable> table,
      LoadCsvTable(csv_file_.get(), spec_.ToSchema(), {0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(table->num_rows(), 500);
  EXPECT_EQ(table->column(5)->GetDatum(17), Expected(17, 5));
  EXPECT_GT(table->MemoryBytes(), 0);
}

TEST_F(ScanTest, LoaderMaterializesBinary) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<InMemoryTable> table,
                       LoadBinaryTable(bin_reader_.get(), {3}));
  EXPECT_EQ(table->num_rows(), 500);
  EXPECT_EQ(table->column(0)->GetDatum(321), Expected(321, 3));
}

TEST_F(ScanTest, ProfileAccumulatesPhases) {
  ScanProfile profile;
  CsvScanSpec spec;
  spec.file_schema = spec_.ToSchema();
  spec.outputs = {0, 5};
  spec.profile = &profile;
  InsituCsvScanOperator scan(csv_file_.get(), spec);
  ASSERT_OK(CollectAll(&scan).status());
  EXPECT_EQ(profile.rows, 500);
  EXPECT_GT(profile.parsing.total_nanos(), 0);
  EXPECT_GT(profile.conversion.total_nanos(), 0);
  EXPECT_FALSE(profile.ToString().empty());
}

// --- REF table scans -------------------------------------------------------------

class RefScanTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    EventGenOptions options;
    options.num_events = 400;
    options.seed = 5;
    path_ = Path("e.ref");
    ASSERT_OK(WriteRefFile(path_, options, 64));
    ASSERT_OK_AND_ASSIGN(reader_, RefReader::Open(path_));
  }

  std::string path_;
  std::unique_ptr<RefReader> reader_;
};

TEST_F(RefScanTest, EventTableScan) {
  RefScanSpec spec;
  spec.group = -1;
  RefTableScanOperator scan(reader_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  EXPECT_EQ(out.num_rows(), 400);
  EXPECT_EQ(out.schema().field(0).name, "eventID");
  EXPECT_EQ(out.column(0)->Value<int64_t>(123), 123);
}

TEST_F(RefScanTest, ParticleTableDerivesEventId) {
  RefScanSpec spec;
  spec.group = kMuon;
  RefTableScanOperator scan(reader_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  EXPECT_EQ(out.num_rows(), reader_->GroupTotal(kMuon));
  // eventID column must be non-decreasing and match the nesting structure.
  int64_t prev = -1;
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    int64_t ev = out.column(0)->Value<int64_t>(i);
    EXPECT_GE(ev, prev);
    prev = ev;
  }
  // Cross-check one event's range.
  int64_t begin, count;
  reader_->GroupRange(kMuon, 10, &begin, &count);
  for (int64_t k = 0; k < count; ++k) {
    EXPECT_EQ(out.column(0)->Value<int64_t>(begin + k), 10);
  }
}

TEST_F(RefScanTest, IdBasedRowSetScan) {
  RefScanSpec spec;
  spec.group = -1;
  spec.fields = {"runNumber"};
  RowSet rows;
  rows.ids = {7, 300, 42};
  spec.row_set = rows;
  RefTableScanOperator scan(reader_.get(), spec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  ASSERT_EQ(out.num_rows(), 3);
  Event e;
  ASSERT_OK(reader_->GetEntry(300, &e));
  EXPECT_EQ(out.column(0)->Value<int32_t>(1), e.run_number);
}

TEST_F(RefScanTest, LoadersBuildTables) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<InMemoryTable> events,
                       LoadRefEventTable(reader_.get()));
  EXPECT_EQ(events->num_rows(), 400);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<InMemoryTable> jets,
                       LoadRefParticleTable(reader_.get(), kJet));
  EXPECT_EQ(jets->num_rows(), reader_->GroupTotal(kJet));
}

}  // namespace
}  // namespace raw
