#include <gtest/gtest.h>

#include "columnar/expression.h"
#include "tests/test_util.h"

namespace raw {
namespace {

ColumnBatch IntBatch(std::vector<int32_t> a, std::vector<double> b = {}) {
  Schema schema{{"a", DataType::kInt32}};
  if (!b.empty()) schema.AddField("b", DataType::kFloat64);
  ColumnBatch batch(schema);
  auto ca = std::make_shared<Column>(DataType::kInt32);
  for (int32_t v : a) ca->Append<int32_t>(v);
  batch.AddColumn(ca);
  if (!b.empty()) {
    auto cb = std::make_shared<Column>(DataType::kFloat64);
    for (double v : b) cb->Append<double>(v);
    batch.AddColumn(cb);
  }
  return batch;
}

TEST(ExpressionTest, ColumnRefEvaluates) {
  ColumnBatch batch = IntBatch({1, 2, 3});
  ASSERT_OK_AND_ASSIGN(Column out, Col(0)->Evaluate(batch));
  EXPECT_EQ(out.Value<int32_t>(2), 3);
  EXPECT_FALSE(Col(5)->Evaluate(batch).ok());
}

TEST(ExpressionTest, LiteralBroadcasts) {
  ColumnBatch batch = IntBatch({1, 2, 3});
  ASSERT_OK_AND_ASSIGN(Column out, Lit(Datum::Int32(9))->Evaluate(batch));
  EXPECT_EQ(out.length(), 3);
  EXPECT_EQ(out.Value<int32_t>(1), 9);
}

TEST(ExpressionTest, CompareAllOps) {
  ColumnBatch batch = IntBatch({1, 2, 3, 4});
  struct Case {
    CompareOp op;
    std::vector<bool> expect;
  } cases[] = {
      {CompareOp::kLt, {true, true, false, false}},
      {CompareOp::kLe, {true, true, true, false}},
      {CompareOp::kGt, {false, false, false, true}},
      {CompareOp::kGe, {false, false, true, true}},
      {CompareOp::kEq, {false, false, true, false}},
      {CompareOp::kNe, {true, true, false, true}},
  };
  for (const auto& c : cases) {
    ExprPtr expr = Cmp(c.op, Col(0), Lit(Datum::Int32(3)));
    ASSERT_OK_AND_ASSIGN(Column out, expr->Evaluate(batch));
    for (size_t i = 0; i < c.expect.size(); ++i) {
      EXPECT_EQ(out.Value<bool>(static_cast<int64_t>(i)), c.expect[i])
          << CompareOpToString(c.op) << " row " << i;
    }
  }
}

TEST(ExpressionTest, SelectionFastPathMatchesEvaluate) {
  ColumnBatch batch = IntBatch({5, 1, 9, 3, 7, 2});
  for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                       CompareOp::kGe, CompareOp::kEq, CompareOp::kNe}) {
    ExprPtr expr = Cmp(op, Col(0), Lit(Datum::Int32(5)));
    SelectionVector fast;
    ASSERT_OK(expr->EvaluateSelection(batch, &fast));
    ASSERT_OK_AND_ASSIGN(Column slow, expr->Evaluate(batch));
    SelectionVector expected;
    for (int64_t i = 0; i < slow.length(); ++i) {
      if (slow.Value<bool>(i)) expected.Append(static_cast<int32_t>(i));
    }
    EXPECT_EQ(fast.indices(), expected.indices())
        << CompareOpToString(op);
  }
}

TEST(ExpressionTest, SelectionFastPathFloat64) {
  Schema schema{{"f", DataType::kFloat64}};
  ColumnBatch batch(schema);
  auto col = std::make_shared<Column>(DataType::kFloat64);
  for (double v : {0.5, 1.5, 2.5, 3.5}) col->Append<double>(v);
  batch.AddColumn(col);
  ExprPtr expr = Cmp(CompareOp::kLt, Col(0), Lit(Datum::Float64(2.0)));
  SelectionVector sel;
  ASSERT_OK(expr->EvaluateSelection(batch, &sel));
  ASSERT_EQ(sel.size(), 2);
  EXPECT_EQ(sel[0], 0);
  EXPECT_EQ(sel[1], 1);
}

TEST(ExpressionTest, MixedTypeComparisonWidens) {
  ColumnBatch batch = IntBatch({1, 2, 3}, {1.5, 1.5, 1.5});
  ExprPtr expr = Cmp(CompareOp::kGt, Col(0), Col(1));  // int vs double
  ASSERT_OK_AND_ASSIGN(Column out, expr->Evaluate(batch));
  EXPECT_FALSE(out.Value<bool>(0));
  EXPECT_TRUE(out.Value<bool>(1));
  EXPECT_TRUE(out.Value<bool>(2));
}

TEST(ExpressionTest, StringComparison) {
  Schema schema{{"s", DataType::kString}};
  ColumnBatch batch(schema);
  auto col = std::make_shared<Column>(DataType::kString);
  col->AppendString("apple");
  col->AppendString("banana");
  batch.AddColumn(col);
  ExprPtr expr = Cmp(CompareOp::kEq, Col(0), Lit(Datum::String("banana")));
  ASSERT_OK_AND_ASSIGN(Column out, expr->Evaluate(batch));
  EXPECT_FALSE(out.Value<bool>(0));
  EXPECT_TRUE(out.Value<bool>(1));
  // Mixed string/number comparison is rejected at type-check time.
  ExprPtr bad = Cmp(CompareOp::kEq, Col(0), Lit(Datum::Int32(1)));
  EXPECT_FALSE(bad->ResultType(schema).ok());
}

TEST(ExpressionTest, ArithmeticPromotion) {
  ColumnBatch batch = IntBatch({4, 10}, {0.5, 2.0});
  ASSERT_OK_AND_ASSIGN(
      Column sum, Arith(ArithOp::kAdd, Col(0), Col(0))->Evaluate(batch));
  EXPECT_EQ(sum.type(), DataType::kInt32);
  EXPECT_EQ(sum.Value<int32_t>(1), 20);
  ASSERT_OK_AND_ASSIGN(
      Column mix, Arith(ArithOp::kMul, Col(0), Col(1))->Evaluate(batch));
  EXPECT_EQ(mix.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(mix.Value<double>(0), 2.0);
  ASSERT_OK_AND_ASSIGN(
      Column div, Arith(ArithOp::kDiv, Col(0), Col(0))->Evaluate(batch));
  EXPECT_EQ(div.type(), DataType::kFloat64);
}

TEST(ExpressionTest, AndOrNot) {
  ColumnBatch batch = IntBatch({1, 2, 3, 4, 5});
  ExprPtr gt1 = Cmp(CompareOp::kGt, Col(0), Lit(Datum::Int32(1)));
  ExprPtr lt5 = Cmp(CompareOp::kLt, Col(0), Lit(Datum::Int32(5)));
  SelectionVector both;
  ASSERT_OK(And(gt1, lt5)->EvaluateSelection(batch, &both));
  EXPECT_EQ(both.size(), 3);  // 2,3,4

  SelectionVector either;
  ExprPtr eq1 = Cmp(CompareOp::kEq, Col(0), Lit(Datum::Int32(1)));
  ExprPtr eq5 = Cmp(CompareOp::kEq, Col(0), Lit(Datum::Int32(5)));
  ASSERT_OK(Or(eq1, eq5)->EvaluateSelection(batch, &either));
  EXPECT_EQ(either.size(), 2);

  ASSERT_OK_AND_ASSIGN(Column not_gt1, Not(gt1)->Evaluate(batch));
  EXPECT_TRUE(not_gt1.Value<bool>(0));
  EXPECT_FALSE(not_gt1.Value<bool>(1));
}

TEST(ExpressionTest, AndSelectionComposesIndicesCorrectly) {
  // Regression-style check: AND evaluates the second conjunct only on
  // survivors and must map indices back to the original batch.
  ColumnBatch batch = IntBatch({9, 1, 8, 2, 7, 3});
  ExprPtr lt5 = Cmp(CompareOp::kLt, Col(0), Lit(Datum::Int32(5)));
  ExprPtr gt1 = Cmp(CompareOp::kGt, Col(0), Lit(Datum::Int32(1)));
  SelectionVector sel;
  ASSERT_OK(And(lt5, gt1)->EvaluateSelection(batch, &sel));
  ASSERT_EQ(sel.size(), 2);
  EXPECT_EQ(sel[0], 3);  // value 2
  EXPECT_EQ(sel[1], 5);  // value 3
}

TEST(ExpressionTest, ToStringRenders) {
  ExprPtr e = And(Cmp(CompareOp::kLt, Col(0), Lit(Datum::Int32(5))),
                  Cmp(CompareOp::kGe, Col(1), Lit(Datum::Float64(0.5))));
  EXPECT_EQ(e->ToString(), "(($0 < 5) AND ($1 >= 0.5))");
}

}  // namespace
}  // namespace raw
