// rawd serving-tier tests: wire protocol round trips, the admission
// controller's quota/shedding/priority/deadline semantics (deterministically,
// with jobs the test blocks and releases), and the full network path —
// concurrent clients against in-process ground truth, typed overload sheds,
// session release on abrupt disconnect, and graceful drain.

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "engine/raw_engine.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace raw {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(WireTest, PayloadRoundTrip) {
  PayloadWriter w;
  w.PutU8(7);
  w.PutU32(123456789u);
  w.PutU64(0xdeadbeefcafeull);
  w.PutF64(3.5);
  w.PutString("hello");
  PayloadReader r(w.bytes());
  EXPECT_EQ(7, *r.U8());
  EXPECT_EQ(123456789u, *r.U32());
  EXPECT_EQ(0xdeadbeefcafeull, *r.U64());
  EXPECT_EQ(3.5, *r.F64());
  EXPECT_EQ("hello", *r.String());
  EXPECT_EQ(0u, r.remaining());
}

TEST(WireTest, ReaderRejectsTruncation) {
  PayloadWriter w;
  w.PutU32(100);  // string length prefix promising 100 bytes
  PayloadReader r(w.bytes());
  EXPECT_FALSE(r.String().ok());
  uint8_t two[] = {1, 2};
  PayloadReader r2(two, sizeof(two));
  EXPECT_FALSE(r2.U32().ok());
}

TEST(WireTest, FrameAssemblerReassemblesByteByByte) {
  PayloadWriter w;
  w.PutString("fragmented");
  std::vector<uint8_t> encoded = EncodeFrame(MessageType::kQuery, w.bytes());

  FrameAssembler assembler;
  Frame frame;
  for (size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_FALSE(assembler.Pop(&frame));
    ASSERT_TRUE(assembler.Feed(&encoded[i], 1).ok());
  }
  ASSERT_TRUE(assembler.Pop(&frame));
  EXPECT_EQ(MessageType::kQuery, frame.type);
  PayloadReader r(frame.payload);
  EXPECT_EQ("fragmented", *r.String());
  EXPECT_FALSE(assembler.Pop(&frame));
}

TEST(WireTest, FrameAssemblerPopsPipelinedFrames) {
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 3; ++i) {
    PayloadWriter w;
    w.PutU64(static_cast<uint64_t>(i));
    std::vector<uint8_t> f = EncodeFrame(MessageType::kQuery, w.bytes());
    bytes.insert(bytes.end(), f.begin(), f.end());
  }
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(bytes.data(), bytes.size()).ok());
  Frame frame;
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(assembler.Pop(&frame));
    PayloadReader r(frame.payload);
    EXPECT_EQ(i, *r.U64());
  }
  EXPECT_FALSE(assembler.Pop(&frame));
}

TEST(WireTest, FrameAssemblerRejectsOversizedFrame) {
  uint32_t len = kMaxPayloadBytes + 1;
  uint8_t header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<uint8_t>(MessageType::kQuery);
  FrameAssembler assembler;
  EXPECT_FALSE(assembler.Feed(header, sizeof(header)).ok());
}

TEST(WireTest, TableRoundTripPreservesData) {
  RawEngine engine;
  auto dir = TempDir::Create("serve_wire_");
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->FilePath("t.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    for (int i = 0; i < 50; ++i) {
      writer.AppendInt32(i);
      writer.AppendString(i % 2 ? "odd" : "even");
      writer.AppendFloat64(i * 1.25);
      writer.EndRow();
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  Schema schema{{"id", DataType::kInt32},
                {"parity", DataType::kString},
                {"v", DataType::kFloat64}};
  ASSERT_TRUE(engine.RegisterCsv("t", path, schema).ok());
  auto result = engine.Query("SELECT id, parity, v FROM t WHERE id < 10");
  ASSERT_TRUE(result.ok());

  PayloadWriter w;
  SerializeTable(result->table, &w);
  PayloadReader r(w.bytes());
  auto round = DeserializeTable(&r);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(result->table.ToString(), round->ToString());
  EXPECT_EQ(0u, r.remaining());
}

// ---------------------------------------------------------------------------
// Admission controller (deterministic: jobs block on test-held latches)
// ---------------------------------------------------------------------------

/// A job whose completion the test controls.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return released; });
  }
};

AdmissionOptions TinyOptions() {
  AdmissionOptions opts;
  opts.interactive = ClassLimits{/*max_concurrent=*/1, /*max_queued=*/1,
                                 /*max_queued_bytes=*/1 << 20};
  opts.batch = ClassLimits{/*max_concurrent=*/1, /*max_queued=*/1,
                           /*max_queued_bytes=*/1 << 20};
  opts.num_workers = 2;
  opts.max_total_queued = 8;
  return opts;
}

TEST(AdmissionTest, ShedsWhenClassQueueFull) {
  AdmissionCounters counters;
  AdmissionController ac(TinyOptions(), &counters);
  Latch latch;
  std::promise<void> running;
  // Occupy the single interactive slot.
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                        [&](const Status& s) {
                          ASSERT_TRUE(s.ok());
                          running.set_value();
                          latch.Wait();
                        })
                  .ok());
  running.get_future().wait();
  // Fill the queue (max_queued = 1).
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                        [](const Status&) {})
                  .ok());
  // Third submission must shed with a typed OVERLOADED error.
  Status shed = ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                          [](const Status&) { FAIL() << "shed job ran"; });
  EXPECT_EQ(StatusCode::kResourceExhausted, shed.code());
  EXPECT_NE(std::string::npos, std::string(shed.message()).find("OVERLOADED"));
  EXPECT_EQ(1, counters.shed.load());
  latch.Release();
  ac.Drain();
  EXPECT_EQ(2, counters.executed.load());
}

TEST(AdmissionTest, ShedsWhenByteQuotaExceeded) {
  AdmissionOptions opts = TinyOptions();
  opts.interactive.max_queued = 100;
  opts.interactive.max_queued_bytes = 10;
  AdmissionCounters counters;
  AdmissionController ac(opts, &counters);
  Latch latch;
  std::promise<void> running;
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 0, Deadline(),
                        [&](const Status&) {
                          running.set_value();
                          latch.Wait();
                        })
                  .ok());
  running.get_future().wait();
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 8, Deadline(),
                        [](const Status&) {})
                  .ok());
  Status shed = ac.Submit(PriorityClass::kInteractive, 8, Deadline(),
                          [](const Status&) { FAIL() << "shed job ran"; });
  EXPECT_EQ(StatusCode::kResourceExhausted, shed.code());
  EXPECT_EQ(1, counters.shed.load());
  latch.Release();
  ac.Drain();
}

TEST(AdmissionTest, InteractiveDequeuesBeforeBatch) {
  AdmissionOptions opts = TinyOptions();
  opts.num_workers = 1;  // single worker => strict dequeue order observable
  opts.interactive.max_queued = 8;
  opts.batch.max_queued = 8;
  AdmissionController ac(opts, nullptr);
  Latch latch;
  std::promise<void> running;
  ASSERT_TRUE(ac.Submit(PriorityClass::kBatch, 1, Deadline(),
                        [&](const Status&) {
                          running.set_value();
                          latch.Wait();
                        })
                  .ok());
  running.get_future().wait();
  // Queue a batch request first, then an interactive one.
  std::mutex order_mu;
  std::vector<int> order;
  ASSERT_TRUE(ac.Submit(PriorityClass::kBatch, 1, Deadline(),
                        [&](const Status&) {
                          std::lock_guard<std::mutex> lock(order_mu);
                          order.push_back(1);
                        })
                  .ok());
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                        [&](const Status&) {
                          std::lock_guard<std::mutex> lock(order_mu);
                          order.push_back(0);
                        })
                  .ok());
  latch.Release();
  ac.Drain();
  ASSERT_EQ(2u, order.size());
  EXPECT_EQ(0, order[0]) << "interactive must dequeue before batch";
  EXPECT_EQ(1, order[1]);
}

TEST(AdmissionTest, QueuedDeadlineExpiryFailsWithoutRunning) {
  AdmissionCounters counters;
  AdmissionController ac(TinyOptions(), &counters);
  Latch latch;
  std::promise<void> running;
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                        [&](const Status&) {
                          running.set_value();
                          latch.Wait();
                        })
                  .ok());
  running.get_future().wait();
  // Queued behind the blocked slot with a deadline that lapses immediately.
  std::promise<Status> verdict;
  ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 1,
                        Deadline::AfterMillis(1),
                        [&](const Status& s) { verdict.set_value(s); })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  latch.Release();
  Status s = verdict.get_future().get();
  EXPECT_EQ(StatusCode::kResourceExhausted, s.code());
  ac.Drain();
  EXPECT_EQ(1, counters.deadline_expired.load());
  EXPECT_EQ(1, counters.executed.load());
}

TEST(AdmissionTest, DrainRejectsNewWorkAndFinishesAdmitted) {
  AdmissionOptions opts = TinyOptions();
  opts.interactive.max_queued = 8;  // both jobs may sit queued briefly
  AdmissionCounters counters;
  AdmissionController ac(opts, &counters);
  std::atomic<int> ran{0};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                          [&](const Status& s) {
                            if (s.ok()) ran.fetch_add(1);
                          })
                    .ok());
  }
  ac.BeginDrain();
  Status rejected = ac.Submit(PriorityClass::kInteractive, 1, Deadline(),
                              [](const Status&) { FAIL() << "ran"; });
  EXPECT_EQ(StatusCode::kInvalidArgument, rejected.code());
  ac.Drain();
  EXPECT_EQ(2, ran.load());
  EXPECT_EQ(0, ac.queued());
  EXPECT_EQ(0, ac.running());
}

// ---------------------------------------------------------------------------
// End-to-end server tests
// ---------------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("serve_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    const std::string path = dir_->FilePath("readings.csv");
    {
      CsvWriter writer(path);
      ASSERT_TRUE(writer.Open().ok());
      static const char* kGroups[] = {"alpha", "beta", "gamma", "delta"};
      for (int i = 0; i < 1000; ++i) {
        writer.AppendInt32(i);
        writer.AppendString(kGroups[i % 4]);
        writer.AppendFloat64((i % 97) * 0.5);
        writer.EndRow();
      }
      ASSERT_TRUE(writer.Close().ok());
    }
    Schema schema{{"id", DataType::kInt32},
                  {"grp", DataType::kString},
                  {"value", DataType::kFloat64}};
    ASSERT_TRUE(engine_.RegisterCsv("readings", path, schema).ok());
  }

  std::unique_ptr<RawServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<RawServer>(&engine_, options);
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  std::unique_ptr<RawClient> Connect(const RawServer& server,
                                     PriorityClass priority =
                                         PriorityClass::kInteractive) {
    auto client = RawClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE((*client)->Hello(priority).ok());
    return std::move(*client);
  }

  std::unique_ptr<TempDir> dir_;
  RawEngine engine_;
};

TEST_F(ServeTest, QueryMatchesInProcessGroundTruth) {
  auto server = StartServer();
  auto client = Connect(*server);
  const char* queries[] = {
      "SELECT COUNT(*) FROM readings",
      "SELECT MAX(value), MIN(value) FROM readings WHERE id > 100",
      "SELECT grp, COUNT(*) FROM readings GROUP BY grp",
      "SELECT id, value FROM readings WHERE value > 40.0 LIMIT 7",
  };
  auto session = engine_.OpenSession();
  for (const char* sql : queries) {
    auto truth = session->Query(sql);
    ASSERT_TRUE(truth.ok()) << sql;
    auto resp = client->Query(sql);
    ASSERT_TRUE(resp.ok()) << sql;
    ASSERT_TRUE(resp->status.ok()) << sql << ": " << resp->status.ToString();
    EXPECT_EQ(truth->table.ToString(), resp->table.ToString()) << sql;
  }
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST_F(ServeTest, QueryErrorsAreReturnedTyped) {
  auto server = StartServer();
  auto client = Connect(*server);
  auto resp = client->Query("SELECT nope FROM nowhere");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->status.ok());
  EXPECT_FALSE(resp->overloaded);
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST_F(ServeTest, ConcurrentClientsMatchGroundTruth) {
  auto server = StartServer();
  auto session = engine_.OpenSession();
  auto truth = session->Query("SELECT grp, COUNT(*) FROM readings GROUP BY grp");
  ASSERT_TRUE(truth.ok());
  const std::string expected = truth->table.ToString();

  constexpr int kClients = 4;
  constexpr int kQueriesEach = 5;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = RawClient::Connect("127.0.0.1", server->port());
      if (!client.ok() || !(*client)->Hello().ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto resp =
            (*client)->Query("SELECT grp, COUNT(*) FROM readings GROUP BY grp");
        if (!resp.ok() || !resp->status.ok() ||
            resp->table.ToString() != expected) {
          failures.fetch_add(1);
        }
      }
      (*client)->Goodbye();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
}

TEST_F(ServeTest, OverQuotaRequestsShedTyped) {
  // max_total_queued = 0: every submission sheds deterministically, so the
  // typed kOverloaded path is exercised without timing races.
  ServerOptions options;
  options.admission.max_total_queued = 0;
  auto server = StartServer(options);
  auto client = Connect(*server);
  auto resp = client->Query("SELECT COUNT(*) FROM readings");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->overloaded);
  EXPECT_EQ(StatusCode::kResourceExhausted, resp->status.code());
  EXPECT_NE(std::string::npos, resp->overload_reason.find("OVERLOADED"));
  EXPECT_GE(engine_.Stats().admission.shed, 1);
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST_F(ServeTest, PipelinedQueriesAllAnswered) {
  auto server = StartServer();
  auto client = Connect(*server);
  constexpr int kPipelined = 8;
  for (uint64_t id = 1; id <= kPipelined; ++id) {
    ASSERT_TRUE(
        client->SendQuery(id, "SELECT COUNT(*) FROM readings WHERE id >= " +
                                  std::to_string(id))
            .ok());
  }
  std::vector<bool> seen(kPipelined + 1, false);
  for (int i = 0; i < kPipelined; ++i) {
    auto resp = client->ReadResponse();
    ASSERT_TRUE(resp.ok());
    ASSERT_GE(resp->request_id, 1u);
    ASSERT_LE(resp->request_id, static_cast<uint64_t>(kPipelined));
    EXPECT_FALSE(seen[resp->request_id]) << "duplicate response";
    seen[resp->request_id] = true;
    // Under default quotas some pipelined queries may shed; each must be
    // either a result or a typed overload, never silently dropped.
    if (!resp->overloaded) {
      EXPECT_TRUE(resp->status.ok()) << resp->status.ToString();
    }
  }
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST_F(ServeTest, AbruptDisconnectReleasesSession) {
  auto server = StartServer();
  const int64_t before = engine_.Stats().sessions_active();
  {
    auto client = Connect(*server);
    auto resp = client->Query("SELECT COUNT(*) FROM readings");
    ASSERT_TRUE(resp.ok());
    EXPECT_GT(engine_.Stats().sessions_active(), before);
    client->Close();  // no goodbye
  }
  // The event loop notices the dead peer and drops the connection (and with
  // it the session). Poll briefly; the loop wakes at least every 100 ms.
  for (int i = 0; i < 100; ++i) {
    if (engine_.Stats().sessions_active() <= before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(engine_.Stats().sessions_active(), before);
}

TEST_F(ServeTest, GracefulDrainCompletesInFlight) {
  auto server = StartServer();
  auto client = Connect(*server);
  constexpr int kInFlight = 4;
  for (uint64_t id = 1; id <= kInFlight; ++id) {
    ASSERT_TRUE(client->SendQuery(id, "SELECT COUNT(*) FROM readings").ok());
  }
  // Admission happens on the event-loop thread, asynchronously to the socket
  // writes above. Wait until at least one query is genuinely in flight before
  // draining — otherwise drain can win the race and reject everything at
  // Submit, leaving nothing for the drain to complete. `admitted` increments
  // synchronously inside Submit, so it cannot over-report.
  for (int i = 0; i < 2500 && engine_.Stats().admission.admitted < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(engine_.Stats().admission.admitted, 1);
  server->RequestDrain();
  // Every admitted query still completes and its response is flushed before
  // the server closes the connection.
  int answered = 0;
  for (int i = 0; i < kInFlight; ++i) {
    auto resp = client->ReadResponse();
    if (!resp.ok()) break;  // connection closed after flush
    ++answered;
    if (!resp->overloaded) {
      EXPECT_TRUE(resp->status.ok() ||
                  resp->status.code() == StatusCode::kInvalidArgument)
          << resp->status.ToString();
    }
  }
  // At least the first query was admitted before drain began.
  EXPECT_GE(answered, 1);
  server->Shutdown();
  EXPECT_GE(engine_.Stats().admission.executed, 1);
}

TEST_F(ServeTest, ShutdownIsIdempotent) {
  auto server = StartServer();
  server->Shutdown();
  server->Shutdown();
  EXPECT_FALSE(server->running());
}

// ---------------------------------------------------------------------------
// STATS introspection over the wire
// ---------------------------------------------------------------------------

TEST_F(ServeTest, StatsRoundTrip) {
  auto server = StartServer();
  auto client = Connect(*server);

  // Run a couple of queries so the counters being reported are non-trivial.
  ASSERT_TRUE(client->Query("SELECT COUNT(*) FROM readings").ok());
  ASSERT_TRUE(
      client->Query("SELECT MAX(value) FROM readings WHERE id > 10").ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::string& json = *stats;

  // Structural sanity: one JSON object, balanced braces/brackets.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int64_t braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // Every introspection section is present, including the autotune tier.
  for (const char* key :
       {"\"shred_cache\"", "\"result_cache\"", "\"materializer\"",
        "\"jit_cache\"", "\"admission\"", "\"queries_executed\"",
        "\"tables\"", "\"readings\"", "\"scans\"", "\"column_accesses\"",
        // JIT observability: compile counters inside jit_cache, plus the
        // planner's fused-vs-interpreted split.
        "\"compiles\"", "\"compile_seconds\"", "\"compiler_available\"",
        "\"planner\"", "\"plans_fused\"", "\"plans_interpreted\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing\n"
                                                 << json;
  }
  // The two materializing queries above each produced exactly one plan, so
  // the fused + interpreted split accounts for both.
  {
    EngineStats engine_stats = engine_.Stats();
    EXPECT_GE(engine_stats.plans_fused + engine_stats.plans_interpreted, 2);
  }
  // The queries above went through admission and were counted. (`admitted`
  // increments at submit, strictly before the response reaches us; the
  // worker's `executed` bookkeeping may still be a beat behind.)
  EXPECT_NE(json.find("\"admitted\":2"), std::string::npos) << json;

  // The connection still works for queries after a STATS exchange.
  auto resp = client->Query("SELECT COUNT(*) FROM readings");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->status.ok());
  EXPECT_TRUE(client->Goodbye().ok());
}

// ---------------------------------------------------------------------------
// Query deadlines (engine-level; the serving tier plumbs these through)
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ExpiredDeadlineFailsQuery) {
  auto session = engine_.OpenSession();
  PlannerOptions options = session->planner_options();
  options.deadline = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto result = session->Query("SELECT COUNT(*) FROM readings", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, result.status().code());
}

TEST_F(ServeTest, InfiniteDeadlineSucceeds) {
  auto session = engine_.OpenSession();
  PlannerOptions options = session->planner_options();
  options.deadline = Deadline::AfterMillis(60 * 1000);
  auto result = session->Query("SELECT COUNT(*) FROM readings", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace serve
}  // namespace raw
