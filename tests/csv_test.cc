#include <gtest/gtest.h>

#include "common/mmap_file.h"
#include "csv/csv_tokenizer.h"
#include "csv/csv_writer.h"
#include "csv/fast_parse.h"
#include "csv/positional_map.h"
#include "tests/test_util.h"

namespace raw {
namespace {

// --- fast_parse ---------------------------------------------------------------

TEST(FastParseTest, Int32Basics) {
  EXPECT_EQ(*ParseInt32("123", 3), 123);
  EXPECT_EQ(*ParseInt32("-123", 4), -123);
  EXPECT_EQ(*ParseInt32("+7", 2), 7);
  EXPECT_EQ(*ParseInt32("0", 1), 0);
  EXPECT_FALSE(ParseInt32("", 0).ok());
  EXPECT_FALSE(ParseInt32("-", 1).ok());
  EXPECT_FALSE(ParseInt32("12a", 3).ok());
}

TEST(FastParseTest, Int64LargeValues) {
  EXPECT_EQ(*ParseInt64("922337203685477580", 18), 922337203685477580ll);
  EXPECT_EQ(*ParseInt64("-922337203685477580", 19), -922337203685477580ll);
}

TEST(FastParseTest, Floats) {
  EXPECT_FLOAT_EQ(*ParseFloat32("1.5", 3), 1.5f);
  EXPECT_DOUBLE_EQ(*ParseFloat64("-2.25e3", 7), -2250.0);
  EXPECT_DOUBLE_EQ(*ParseFloat64("0.1", 3), 0.1);
  EXPECT_FALSE(ParseFloat64("1.2.3", 5).ok());
}

TEST(FastParseTest, Bools) {
  EXPECT_TRUE(*ParseBool("1", 1));
  EXPECT_TRUE(*ParseBool("true", 4));
  EXPECT_FALSE(*ParseBool("0", 1));
  EXPECT_FALSE(ParseBool("yes", 3).ok());
}

TEST(FastParseTest, UncheckedMatchesChecked) {
  const char* cases[] = {"0", "42", "-17", "999999999", "-2000000000"};
  for (const char* c : cases) {
    int32_t size = static_cast<int32_t>(strlen(c));
    EXPECT_EQ(ParseInt32Unchecked(c, size), *ParseInt32(c, size)) << c;
    EXPECT_EQ(ParseInt64Unchecked(c, size), *ParseInt64(c, size)) << c;
  }
  EXPECT_DOUBLE_EQ(ParseFloat64Unchecked("3.25", 4), 3.25);
}

// --- tokenizer -----------------------------------------------------------------

TEST(TokenizerTest, FieldPrimitives) {
  const char* data = "abc,de,f\nxyz\n";
  const char* end = data + strlen(data);
  const char* p = FieldEnd(data, end, ',');
  EXPECT_EQ(p - data, 3);
  p = SkipField(data, end, ',');
  EXPECT_EQ(*p, 'd');
  p = SkipField(p, end, ',');
  EXPECT_EQ(*p, 'f');
}

TEST(TokenizerTest, CursorTokenizesRows) {
  std::string data = "1,2,3\n4,5,6\n";
  CsvRowCursor cursor(data.data(), data.data() + data.size(), CsvOptions());
  std::vector<FieldRef> fields;
  ASSERT_OK(cursor.NextRow(&fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1].view(), "2");
  ASSERT_OK(cursor.NextRow(&fields));
  EXPECT_EQ(fields[2].view(), "6");
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(TokenizerTest, EmptyFieldsAndCrLf) {
  std::string data = "a,,c\r\n,,\r\n";
  CsvRowCursor cursor(data.data(), data.data() + data.size(), CsvOptions());
  std::vector<FieldRef> fields;
  ASSERT_OK(cursor.NextRow(&fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1].view(), "");
  ASSERT_OK(cursor.NextRow(&fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(TokenizerTest, QuotedFields) {
  std::string data = "\"a,b\",2\n\"x\"\"y\",3\n";
  CsvRowCursor cursor(data.data(), data.data() + data.size(), CsvOptions());
  std::vector<FieldRef> fields;
  ASSERT_OK(cursor.NextRow(&fields));
  EXPECT_EQ(fields[0].view(), "a,b");
  EXPECT_EQ(fields[1].view(), "2");
  ASSERT_OK(cursor.NextRow(&fields));
  EXPECT_EQ(fields[0].view(), "x\"\"y");  // raw slice; unescape is caller's
}

TEST(TokenizerTest, QuoteAwareFieldStep) {
  std::string data = "\"a,b\",2,\"x\"\"y\",plain\n";
  const char* p = data.data();
  const char* end = data.data() + data.size();
  FieldRef f = NextFieldQuoted(&p, end, ',', '"');
  EXPECT_EQ(f.view(), "a,b");  // outer quotes stripped, delimiter kept
  ASSERT_EQ(*p, ',');
  ++p;
  f = NextFieldQuoted(&p, end, ',', '"');
  EXPECT_EQ(f.view(), "2");
  p = data.data();
  p = SkipFieldQuoted(p, end, ',', '"');   // past "a,b",
  p = SkipFieldQuoted(p, end, ',', '"');   // past 2,
  f = NextFieldQuoted(&p, end, ',', '"');
  EXPECT_EQ(f.view(), "x\"\"y");  // raw slice, same as CsvRowCursor
  EXPECT_TRUE(BufferContainsQuote(data.data(), end, '"'));
  std::string plain = "1,2,3\n";
  EXPECT_FALSE(
      BufferContainsQuote(plain.data(), plain.data() + plain.size(), '"'));
}

TEST(TokenizerTest, QuoteAwareFieldStepEmbeddedNewline) {
  std::string data = "\"line1\nline2\",tail\n";
  const char* p = data.data();
  const char* end = data.data() + data.size();
  FieldRef f = NextFieldQuoted(&p, end, ',', '"');
  EXPECT_EQ(f.view(), "line1\nline2");
  ASSERT_EQ(*p, ',');
}

TEST(TokenizerTest, UnterminatedQuoteFails) {
  std::string data = "\"abc\n";
  CsvRowCursor cursor(data.data(), data.data() + data.size(), CsvOptions());
  std::vector<FieldRef> fields;
  EXPECT_FALSE(cursor.NextRow(&fields).ok());
}

TEST(TokenizerTest, CountRowsAndHeader) {
  std::string data = "h1,h2\n1,2\n3,4\n";
  CsvOptions with_header;
  with_header.has_header = true;
  EXPECT_EQ(CountRows(data.data(), data.data() + data.size(), with_header), 2);
  EXPECT_EQ(CountRows(data.data(), data.data() + data.size(), CsvOptions()), 3);
  EXPECT_EQ(DataStartOffset(data.data(), data.data() + data.size(),
                            with_header),
            6u);
}

TEST(TokenizerTest, NoTrailingNewline) {
  std::string data = "1,2\n3,4";
  EXPECT_EQ(CountRows(data.data(), data.data() + data.size(), CsvOptions()), 2);
  CsvRowCursor cursor(data.data(), data.data() + data.size(), CsvOptions());
  std::vector<FieldRef> fields;
  ASSERT_OK(cursor.NextRow(&fields));
  ASSERT_OK(cursor.NextRow(&fields));
  EXPECT_EQ(fields[1].view(), "4");
  EXPECT_TRUE(cursor.AtEnd());
}

// --- writer ---------------------------------------------------------------------

using CsvWriterTest = testing::TempDirTest;

TEST_F(CsvWriterTest, TypedRoundTrip) {
  std::string path = Path("t.csv");
  CsvWriter writer(path);
  ASSERT_OK(writer.Open());
  writer.AppendInt32(-42);
  writer.AppendInt64(1ll << 40);
  writer.AppendFloat64(2.5);
  writer.AppendString("plain");
  writer.EndRow();
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::string content, ReadFileToString(path));
  EXPECT_EQ(content, "-42,1099511627776,2.5,plain\n");
}

TEST_F(CsvWriterTest, QuotesWhenNeeded) {
  std::string path = Path("q.csv");
  CsvWriter writer(path);
  ASSERT_OK(writer.Open());
  writer.AppendString("a,b");
  writer.AppendString("he said \"hi\"");
  writer.EndRow();
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::string content, ReadFileToString(path));
  EXPECT_EQ(content, "\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST_F(CsvWriterTest, HeaderWritten) {
  std::string path = Path("h.csv");
  CsvOptions options;
  options.has_header = true;
  CsvWriter writer(path, options);
  Schema schema{{"x", DataType::kInt32}, {"y", DataType::kInt32}};
  ASSERT_OK(writer.Open(&schema));
  writer.AppendInt32(1);
  writer.AppendInt32(2);
  writer.EndRow();
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::string content, ReadFileToString(path));
  EXPECT_EQ(content, "x,y\n1,2\n");
}

TEST_F(CsvWriterTest, DatumRows) {
  std::string path = Path("d.csv");
  CsvWriter writer(path);
  ASSERT_OK(writer.Open());
  ASSERT_OK(writer.AppendDatumRow(
      {Datum::Int32(1), Datum::Float64(0.5), Datum::Bool(true)}));
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::string content, ReadFileToString(path));
  EXPECT_EQ(content, "1,0.5,1\n");
  EXPECT_EQ(writer.rows_written(), 1);
}

// --- positional map --------------------------------------------------------------

TEST(PositionalMapTest, StrideTracking) {
  PositionalMap pmap = PositionalMap::WithStride(30, 10);
  EXPECT_EQ(pmap.num_tracked(), 3);
  EXPECT_EQ(pmap.tracked_columns(), (std::vector<int>{0, 10, 20}));
  EXPECT_TRUE(pmap.Tracks(10));
  EXPECT_FALSE(pmap.Tracks(11));
  EXPECT_EQ(pmap.SlotFor(20), 2);
  EXPECT_EQ(pmap.SlotFor(15), -1);
}

TEST(PositionalMapTest, NearestTracked) {
  PositionalMap pmap = PositionalMap::WithStride(30, 7);
  // Tracks 0, 7, 14, 21, 28.
  EXPECT_EQ(pmap.NearestTrackedAtOrBefore(10),
            pmap.SlotFor(7));
  EXPECT_EQ(pmap.NearestTrackedAtOrBefore(6), pmap.SlotFor(0));
  EXPECT_EQ(pmap.NearestTrackedAtOrBefore(28), pmap.SlotFor(28));
}

TEST(PositionalMapTest, ExplicitColumnsSortedDeduped) {
  PositionalMap pmap = PositionalMap::TrackingColumns(30, {11, 3, 11, 7});
  EXPECT_EQ(pmap.tracked_columns(), (std::vector<int>{3, 7, 11}));
  ASSERT_OK(pmap.CheckConsistency());
}

TEST(PositionalMapTest, AppendAndLookupPositions) {
  PositionalMap pmap = PositionalMap::TrackingColumns(5, {0, 2});
  uint64_t row0[] = {0, 10};
  uint64_t row1[] = {20, 33};
  pmap.AppendRow(0, row0);
  pmap.AppendRow(20, row1);
  EXPECT_EQ(pmap.num_rows(), 2);
  EXPECT_EQ(pmap.Position(0, 1), 10u);
  EXPECT_EQ(pmap.Position(1, 0), 20u);
  EXPECT_EQ(pmap.RowStart(1), 20u);
  ASSERT_OK(pmap.CheckConsistency());
  EXPECT_GT(pmap.MemoryBytes(), 0);
}

}  // namespace
}  // namespace raw
