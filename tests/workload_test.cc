#include <gtest/gtest.h>

#include "binfmt/binary_reader.h"
#include "common/mmap_file.h"
#include "eventsim/event_generator.h"
#include "scan/insitu_bin_scan.h"
#include "scan/insitu_csv_scan.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"
#include "workload/higgs.h"
#include "workload/lineitem_gen.h"

namespace raw {
namespace {

TEST(TableSpecTest, FactoriesShapeTables) {
  TableSpec d30 = TableSpec::UniformInt32("d30", 30, 100);
  EXPECT_EQ(d30.columns.size(), 30u);
  EXPECT_EQ(d30.ToSchema().field(11).name, "col11");
  TableSpec d120 = TableSpec::Mixed120("d120", 100);
  EXPECT_EQ(d120.columns.size(), 120u);
  EXPECT_EQ(d120.columns[0].type, DataType::kInt32);
  EXPECT_EQ(d120.columns[1].type, DataType::kFloat64);
}

TEST(TableSpecTest, ValuesDeterministicAndInRange) {
  TableSpec spec = TableSpec::UniformInt32("t", 5, 100, 9);
  TableDataSource a(spec), b(spec);
  for (int64_t r = 0; r < 100; ++r) {
    for (int c = 0; c < 5; ++c) {
      Datum va = a.Value(r, c);
      EXPECT_EQ(va, b.Value(r, c));
      EXPECT_GE(va.int32_value(), 0);
      EXPECT_LE(va.int32_value(), 999999999);
    }
  }
  // Different cells differ (overwhelmingly).
  EXPECT_NE(a.Value(0, 0), a.Value(1, 0));
}

TEST(TableSpecTest, SelectivityLiteralApproximatesFraction) {
  TableSpec spec = TableSpec::UniformInt32("t", 2, 20000, 3);
  TableDataSource source(spec);
  for (double frac : {0.1, 0.5, 0.9}) {
    int64_t lit = *spec.SelectivityLiteral(0, frac).AsInt64();
    int64_t passing = 0;
    for (int64_t r = 0; r < spec.rows; ++r) {
      if (*source.Value(r, 0).AsInt64() < lit) ++passing;
    }
    double actual = static_cast<double>(passing) /
                    static_cast<double>(spec.rows);
    EXPECT_NEAR(actual, frac, 0.02) << frac;
  }
}

TEST(TableSpecTest, ShuffledPermutationIsBijection) {
  std::vector<int64_t> perm = ShuffledPermutation(1000, 4);
  std::vector<bool> seen(1000, false);
  for (int64_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 1000);
    ASSERT_FALSE(seen[static_cast<size_t>(p)]);
    seen[static_cast<size_t>(p)] = true;
  }
  // Deterministic and non-identity.
  EXPECT_EQ(perm, ShuffledPermutation(1000, 4));
  EXPECT_NE(perm, ShuffledPermutation(1000, 5));
}

using DataGenTest = testing::TempDirTest;

TEST_F(DataGenTest, CsvAndBinaryHoldIdenticalData) {
  TableSpec spec = TableSpec::UniformInt32("t", 4, 200, 8);
  spec.columns[2].type = DataType::kFloat64;
  ASSERT_OK(WriteCsvFile(spec, Path("t.csv")));
  ASSERT_OK(WriteBinaryFile(spec, Path("t.bin")));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> csv,
                       MmapFile::Open(Path("t.csv")));
  CsvScanSpec cspec;
  cspec.file_schema = spec.ToSchema();
  cspec.outputs = {0, 1, 2, 3};
  InsituCsvScanOperator cscan(csv.get(), cspec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch from_csv, CollectAll(&cscan));

  ASSERT_OK_AND_ASSIGN(BinaryLayout layout,
                       BinaryLayout::Create(spec.ToSchema()));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<BinaryReader> bin,
                       BinaryReader::Open(Path("t.bin"), layout));
  BinScanSpec bspec;
  bspec.outputs = {0, 1, 2, 3};
  InsituBinScanOperator bscan(bin.get(), bspec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch from_bin, CollectAll(&bscan));

  ASSERT_EQ(from_csv.num_rows(), from_bin.num_rows());
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(from_csv.column(c)->Equals(*from_bin.column(c))) << c;
  }
}

TEST_F(DataGenTest, PermutationReordersRows) {
  TableSpec spec = TableSpec::UniformInt32("t", 2, 50, 8);
  std::vector<int64_t> perm = ShuffledPermutation(50, 1);
  ASSERT_OK(WriteCsvFile(spec, Path("p.csv"), &perm));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> csv,
                       MmapFile::Open(Path("p.csv")));
  CsvScanSpec cspec;
  cspec.file_schema = spec.ToSchema();
  cspec.outputs = {0};
  InsituCsvScanOperator scan(csv.get(), cspec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  TableDataSource source(spec);
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(out.column(0)->GetDatum(r),
              source.Value(perm[static_cast<size_t>(r)], 0));
  }
}

TEST_F(DataGenTest, LineitemGeneratorWritesValidCsv) {
  LineitemGenOptions options;
  options.rows = 500;
  ASSERT_OK(WriteLineitemCsv(Path("li.csv"), options));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> csv,
                       MmapFile::Open(Path("li.csv")));
  CsvScanSpec cspec;
  cspec.file_schema = LineitemSchema();
  cspec.outputs = {0, 4, 5, 6};
  InsituCsvScanOperator scan(csv.get(), cspec);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(&scan));
  ASSERT_EQ(out.num_rows(), 500);
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_GE(out.column(1)->Value<int32_t>(r), 1);   // quantity
    EXPECT_LE(out.column(1)->Value<int32_t>(r), 50);
    EXPECT_GE(out.column(3)->Value<double>(r), 0.0);  // discount
    EXPECT_LE(out.column(3)->Value<double>(r), 0.10 + 1e-9);
  }
}

// --- Higgs ------------------------------------------------------------------------

class HiggsTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    for (int f = 0; f < 2; ++f) {
      EventGenOptions options;
      options.num_events = 500;
      options.seed = 100 + static_cast<uint64_t>(f);
      std::string path = Path("h" + std::to_string(f) + ".ref");
      ASSERT_OK(WriteRefFile(path, options, 128));
      paths_.push_back(path);
      if (f == 0) ASSERT_OK(WriteGoodRunsCsv(Path("runs.csv"), options));
    }
  }

  std::vector<std::string> paths_;
};

TEST_F(HiggsTest, LoadGoodRunsParsesAll) {
  ASSERT_OK_AND_ASSIGN(std::set<int32_t> runs, LoadGoodRuns(Path("runs.csv")));
  EXPECT_FALSE(runs.empty());
}

TEST_F(HiggsTest, HandwrittenAndRawAgreeExactly) {
  HiggsCuts cuts;
  HandwrittenHiggsAnalysis handwritten(paths_, Path("runs.csv"), cuts);
  RawHiggsAnalysis raw_analysis(paths_, Path("runs.csv"), cuts);
  ASSERT_OK_AND_ASSIGN(HiggsResult hw, handwritten.Run());
  ASSERT_OK_AND_ASSIGN(HiggsResult rw, raw_analysis.Run());
  EXPECT_EQ(hw.events_scanned, 1000);
  EXPECT_TRUE(hw == rw) << "candidates: " << hw.candidates << " vs "
                        << rw.candidates;
  EXPECT_GT(hw.candidates, 0) << "cuts too tight for the generated data";
  EXPECT_LT(hw.candidates, hw.events_scanned);
  // Warm runs reproduce the same result.
  ASSERT_OK_AND_ASSIGN(HiggsResult hw2, handwritten.Run());
  ASSERT_OK_AND_ASSIGN(HiggsResult rw2, raw_analysis.Run());
  EXPECT_TRUE(hw == hw2);
  EXPECT_TRUE(rw == rw2);
  EXPECT_TRUE(raw_analysis.warm());
}

TEST_F(HiggsTest, CutVariationsStayConsistent) {
  for (float pt_cut : {5.0f, 30.0f, 60.0f}) {
    HiggsCuts cuts;
    cuts.min_muon_pt = pt_cut;
    HandwrittenHiggsAnalysis handwritten(paths_, Path("runs.csv"), cuts);
    RawHiggsAnalysis raw_analysis(paths_, Path("runs.csv"), cuts);
    ASSERT_OK_AND_ASSIGN(HiggsResult hw, handwritten.Run());
    ASSERT_OK_AND_ASSIGN(HiggsResult rw, raw_analysis.Run());
    EXPECT_TRUE(hw == rw) << "pt cut " << pt_cut;
  }
}

TEST_F(HiggsTest, HistogramCountsSumToCandidates) {
  HiggsCuts cuts;
  HandwrittenHiggsAnalysis handwritten(paths_, Path("runs.csv"), cuts);
  ASSERT_OK_AND_ASSIGN(HiggsResult result, handwritten.Run());
  int64_t total = 0;
  for (int64_t bin : result.histogram) total += bin;
  EXPECT_EQ(total, result.candidates);
}

}  // namespace
}  // namespace raw
