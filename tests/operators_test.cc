#include <gtest/gtest.h>

#include <map>

#include "columnar/aggregate.h"
#include "columnar/filter.h"
#include "columnar/hash_group_by.h"
#include "columnar/hash_join.h"
#include "columnar/in_memory_table.h"
#include "columnar/project.h"
#include "tests/test_util.h"

namespace raw {
namespace {

// Builds an in-memory table: col "k" int32 = i % modulo, col "v" float64 = i.
std::unique_ptr<InMemoryTable> MakeTable(int64_t rows, int32_t modulo) {
  Schema schema{{"k", DataType::kInt32}, {"v", DataType::kFloat64}};
  auto table = std::make_unique<InMemoryTable>(schema);
  ColumnBatch batch(schema);
  auto k = std::make_shared<Column>(DataType::kInt32);
  auto v = std::make_shared<Column>(DataType::kFloat64);
  for (int64_t i = 0; i < rows; ++i) {
    k->Append<int32_t>(static_cast<int32_t>(i % modulo));
    v->Append<double>(static_cast<double>(i));
  }
  batch.AddColumn(k);
  batch.AddColumn(v);
  EXPECT_TRUE(table->AppendBatch(batch).ok());
  return table;
}

TEST(InMemoryTableTest, ScanProducesAllRowsWithRowIds) {
  auto table = MakeTable(10000, 7);
  OperatorPtr scan = table->CreateScan(1024);
  ASSERT_OK_AND_ASSIGN(ColumnBatch all, CollectAll(scan.get()));
  EXPECT_EQ(all.num_rows(), 10000);
  ASSERT_TRUE(all.has_row_ids());
  EXPECT_EQ(all.row_ids()[9999], 9999);
  EXPECT_DOUBLE_EQ(all.column(1)->Value<double>(123), 123.0);
}

TEST(InMemoryTableTest, SingleBatchZeroCopy) {
  auto table = MakeTable(100, 3);
  OperatorPtr scan = table->CreateScan(1000);  // batch >= rows
  ASSERT_OK(scan->Open());
  ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan->Next());
  EXPECT_EQ(batch.column(0).get(), table->column(0).get());
}

TEST(FilterTest, KeepsOnlyQualifyingRows) {
  auto table = MakeTable(1000, 10);
  auto filter = std::make_unique<FilterOperator>(
      table->CreateScan(128),
      Cmp(CompareOp::kLt, Col(0), Lit(Datum::Int32(3))));
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(filter.get()));
  EXPECT_EQ(out.num_rows(), 300);
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_LT(out.column(0)->Value<int32_t>(i), 3);
  }
  // Row ids must still point at original rows.
  ASSERT_TRUE(out.has_row_ids());
  EXPECT_EQ(out.row_ids()[0] % 10, out.column(0)->Value<int32_t>(0));
}

TEST(FilterTest, EmptyResult) {
  auto table = MakeTable(100, 10);
  auto filter = std::make_unique<FilterOperator>(
      table->CreateScan(16), Cmp(CompareOp::kGt, Col(0), Lit(Datum::Int32(99))));
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(filter.get()));
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(ProjectTest, ComputesExpressions) {
  auto table = MakeTable(10, 5);
  std::vector<ExprPtr> exprs = {
      Arith(ArithOp::kAdd, Col(1), Lit(Datum::Float64(1.0))), Col(0)};
  auto project = std::make_unique<ProjectOperator>(
      table->CreateScan(4), exprs, std::vector<std::string>{"vplus", "k"});
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(project.get()));
  EXPECT_EQ(out.schema().field(0).name, "vplus");
  EXPECT_DOUBLE_EQ(out.column(0)->Value<double>(3), 4.0);
  EXPECT_EQ(out.column(1)->Value<int32_t>(7), 2);
}

TEST(AggregateTest, ScalarAggregates) {
  auto table = MakeTable(1000, 10);
  std::vector<AggSpec> specs = {
      {AggKind::kMax, 1, "max_v"},   {AggKind::kMin, 1, "min_v"},
      {AggKind::kSum, 0, "sum_k"},   {AggKind::kCount, -1, "cnt"},
      {AggKind::kAvg, 1, "avg_v"},
  };
  auto agg =
      std::make_unique<AggregateOperator>(table->CreateScan(128), specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(agg.get()));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_DOUBLE_EQ(out.column(0)->Value<double>(0), 999.0);
  EXPECT_DOUBLE_EQ(out.column(1)->Value<double>(0), 0.0);
  EXPECT_EQ(out.column(2)->Value<int64_t>(0), 4500);  // 100 * (0+..+9)
  EXPECT_EQ(out.column(3)->Value<int64_t>(0), 1000);
  EXPECT_DOUBLE_EQ(out.column(4)->Value<double>(0), 499.5);
}

TEST(AggregateTest, Int64MinMaxExactAboveDoublePrecision) {
  Schema schema{{"big", DataType::kInt64}};
  InMemoryTable table(schema);
  ColumnBatch batch(schema);
  auto col = std::make_shared<Column>(DataType::kInt64);
  int64_t big = (1ll << 60) + 1;  // not representable as double
  col->Append<int64_t>(big);
  col->Append<int64_t>(big - 2);
  batch.AddColumn(col);
  ASSERT_OK(table.AppendBatch(batch));
  std::vector<AggSpec> specs = {{AggKind::kMax, 0, "m"}};
  auto agg = std::make_unique<AggregateOperator>(table.CreateScan(), specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(agg.get()));
  EXPECT_EQ(out.column(0)->Value<int64_t>(0), big);
}

TEST(AggregateTest, EmptyInputCountsZero) {
  auto table = MakeTable(0, 5);
  std::vector<AggSpec> specs = {{AggKind::kCount, -1, "cnt"},
                                {AggKind::kMax, 1, "max"}};
  auto agg = std::make_unique<AggregateOperator>(table->CreateScan(), specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(agg.get()));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.column(0)->Value<int64_t>(0), 0);
}

TEST(HashGroupByTest, GroupsAndAggregates) {
  auto table = MakeTable(1000, 4);
  std::vector<AggSpec> specs = {{AggKind::kCount, -1, "cnt"},
                                {AggKind::kSum, 1, "sum_v"}};
  auto gb = std::make_unique<HashGroupByOperator>(
      table->CreateScan(64), std::vector<int>{0}, specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(gb.get()));
  EXPECT_EQ(out.num_rows(), 4);
  std::map<int32_t, int64_t> counts;
  std::map<int32_t, double> sums;
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    int32_t key = out.column(0)->Value<int32_t>(i);
    counts[key] = out.column(1)->Value<int64_t>(i);
    sums[key] = out.column(2)->Value<double>(i);
  }
  for (int32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(counts[k], 250);
    // Sum of i where i % 4 == k, i < 1000.
    double expected = 0;
    for (int64_t i = k; i < 1000; i += 4) expected += static_cast<double>(i);
    EXPECT_DOUBLE_EQ(sums[k], expected);
  }
}

TEST(HashGroupByTest, MultiKeyGroups) {
  Schema schema{{"a", DataType::kInt32}, {"b", DataType::kInt32}};
  InMemoryTable table(schema);
  ColumnBatch batch(schema);
  auto a = std::make_shared<Column>(DataType::kInt32);
  auto b = std::make_shared<Column>(DataType::kInt32);
  for (int i = 0; i < 100; ++i) {
    a->Append<int32_t>(i % 2);
    b->Append<int32_t>(i % 3);
  }
  batch.AddColumn(a);
  batch.AddColumn(b);
  ASSERT_OK(table.AppendBatch(batch));
  std::vector<AggSpec> specs = {{AggKind::kCount, -1, "cnt"}};
  auto gb = std::make_unique<HashGroupByOperator>(
      table.CreateScan(), std::vector<int>{0, 1}, specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(gb.get()));
  EXPECT_EQ(out.num_rows(), 6);
}

// Reference nested-loop join for correctness checks.
std::vector<std::pair<int64_t, int64_t>> NestedLoopJoin(
    const std::vector<int32_t>& left, const std::vector<int32_t>& right) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (size_t l = 0; l < left.size(); ++l) {
    for (size_t r = 0; r < right.size(); ++r) {
      if (left[l] == right[r]) out.emplace_back(l, r);
    }
  }
  return out;
}

std::unique_ptr<InMemoryTable> KeyTable(const std::vector<int32_t>& keys,
                                        const std::string& payload_name) {
  Schema schema{{"key", DataType::kInt32}, {payload_name, DataType::kInt64}};
  auto table = std::make_unique<InMemoryTable>(schema);
  ColumnBatch batch(schema);
  auto k = std::make_shared<Column>(DataType::kInt32);
  auto p = std::make_shared<Column>(DataType::kInt64);
  for (size_t i = 0; i < keys.size(); ++i) {
    k->Append<int32_t>(keys[i]);
    p->Append<int64_t>(static_cast<int64_t>(i) * 100);
  }
  batch.AddColumn(k);
  batch.AddColumn(p);
  EXPECT_TRUE(table->AppendBatch(batch).ok());
  return table;
}

TEST(HashJoinTest, MatchesNestedLoopWithDuplicates) {
  std::vector<int32_t> left = {1, 2, 2, 3, 5, 7, 7};
  std::vector<int32_t> right = {2, 2, 3, 4, 7};
  auto lt = KeyTable(left, "lp");
  auto rt = KeyTable(right, "rp");
  auto join = std::make_unique<HashJoinOperator>(lt->CreateScan(3),
                                                 rt->CreateScan(2), 0, 0);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(join.get()));
  auto expected = NestedLoopJoin(left, right);
  EXPECT_EQ(out.num_rows(), static_cast<int64_t>(expected.size()));
  // Probe-side order preserved; row ids carry probe provenance.
  ASSERT_TRUE(out.has_row_ids());
  for (int64_t i = 1; i < out.num_rows(); ++i) {
    EXPECT_LE(out.row_ids()[static_cast<size_t>(i - 1)],
              out.row_ids()[static_cast<size_t>(i)]);
  }
  // Every output pair joins equal keys.
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_EQ(out.column(0)->Value<int32_t>(i),
              out.column(2)->Value<int32_t>(i));
  }
}

TEST(HashJoinTest, EmptySides) {
  auto lt = KeyTable({}, "lp");
  auto rt = KeyTable({1, 2}, "rp");
  auto join = std::make_unique<HashJoinOperator>(lt->CreateScan(),
                                                 rt->CreateScan(), 0, 0);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(join.get()));
  EXPECT_EQ(out.num_rows(), 0);

  auto lt2 = KeyTable({1, 2}, "lp");
  auto rt2 = KeyTable({}, "rp");
  auto join2 = std::make_unique<HashJoinOperator>(lt2->CreateScan(),
                                                  rt2->CreateScan(), 0, 0);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out2, CollectAll(join2.get()));
  EXPECT_EQ(out2.num_rows(), 0);
}

TEST(HashJoinTest, DuplicateNamesGetSuffixed) {
  auto lt = KeyTable({1}, "p");
  auto rt = KeyTable({1}, "p");
  auto join = std::make_unique<HashJoinOperator>(lt->CreateScan(),
                                                 rt->CreateScan(), 0, 0);
  ASSERT_OK(join->Open());
  const Schema& schema = join->output_schema();
  EXPECT_EQ(schema.field(0).name, "key");
  EXPECT_EQ(schema.field(2).name, "key_r");
  EXPECT_EQ(schema.field(3).name, "p_r");
}

TEST(HashJoinTest, EmitsBuildRowIds) {
  auto lt = KeyTable({5, 6}, "lp");
  auto rt = KeyTable({6, 5}, "rp");
  auto join = std::make_unique<HashJoinOperator>(
      lt->CreateScan(), rt->CreateScan(), 0, 0, /*emit_build_row_ids=*/true);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(join.get()));
  int idx = out.schema().FieldIndex(HashJoinOperator::kBuildRowIdColumn);
  ASSERT_GE(idx, 0);
  // key 5 (probe row 0) matches build row 1; key 6 matches build row 0.
  EXPECT_EQ(out.column(idx)->Value<int64_t>(0), 1);
  EXPECT_EQ(out.column(idx)->Value<int64_t>(1), 0);
}

TEST(HashJoinTest, RejectsFloatKeys) {
  Schema schema{{"f", DataType::kFloat64}};
  InMemoryTable t(schema);
  auto join = std::make_unique<HashJoinOperator>(t.CreateScan(),
                                                 t.CreateScan(), 0, 0);
  EXPECT_FALSE(join->Open().ok());
}


// --- stream protocol: zero-row interior batches --------------------------
//
// Regression for the "empty batch == EOF" truncation bug: a fully filtered
// morsel used to end the stream early, silently dropping every later batch.
// Sources now emit an explicit EndOfStream sentinel and consumers must skip
// interior zero-row data batches.

// Emits a fixed batch sequence (which may include zero-row data batches),
// then the EndOfStream sentinel forever.
class ChunkedStubOperator : public Operator {
 public:
  ChunkedStubOperator(Schema schema, std::vector<ColumnBatch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}

  const Schema& output_schema() const override { return schema_; }
  StatusOr<ColumnBatch> Next() override {
    if (next_ >= batches_.size()) return ColumnBatch::EndOfStream(schema_);
    return std::move(batches_[next_++]);
  }
  std::string name() const override { return "ChunkedStub"; }

 private:
  Schema schema_;
  std::vector<ColumnBatch> batches_;
  size_t next_ = 0;
};

// One batch of `rows` rows: k = start..start+rows-1 (mod `modulo`), v = k.
ColumnBatch StubBatch(const Schema& schema, int64_t start, int64_t rows,
                      int32_t modulo) {
  ColumnBatch batch(schema);
  auto k = std::make_shared<Column>(DataType::kInt32);
  auto v = std::make_shared<Column>(DataType::kFloat64);
  for (int64_t i = 0; i < rows; ++i) {
    k->Append<int32_t>(static_cast<int32_t>((start + i) % modulo));
    v->Append<double>(static_cast<double>(start + i));
  }
  batch.AddColumn(k);
  batch.AddColumn(v);
  return batch;
}

std::unique_ptr<ChunkedStubOperator> StubWithInteriorEmpty(int32_t modulo) {
  Schema schema{{"k", DataType::kInt32}, {"v", DataType::kFloat64}};
  std::vector<ColumnBatch> batches;
  batches.push_back(StubBatch(schema, 0, 50, modulo));
  batches.push_back(StubBatch(schema, 0, 0, modulo));  // zero-row interior
  batches.push_back(StubBatch(schema, 50, 50, modulo));
  batches.push_back(StubBatch(schema, 0, 0, modulo));  // zero-row again
  batches.push_back(StubBatch(schema, 100, 50, modulo));
  return std::make_unique<ChunkedStubOperator>(schema, std::move(batches));
}

TEST(StreamProtocolTest, CollectAllSkipsInteriorEmptyBatches) {
  auto stub = StubWithInteriorEmpty(10);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(stub.get()));
  EXPECT_EQ(out.num_rows(), 150);  // nothing truncated at the empty batch
  EXPECT_DOUBLE_EQ(out.column(1)->Value<double>(149), 149.0);
}

TEST(StreamProtocolTest, FilterStreamsPastInteriorEmptyBatches) {
  auto filter = std::make_unique<FilterOperator>(
      StubWithInteriorEmpty(10),
      Cmp(CompareOp::kLt, Col(0), Lit(Datum::Int32(3))));
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(filter.get()));
  EXPECT_EQ(out.num_rows(), 45);  // 3 of every 10, over all 150 rows
}

TEST(StreamProtocolTest, AggregateSeesRowsAfterInteriorEmptyBatch) {
  std::vector<AggSpec> specs = {{AggKind::kCount, -1, "cnt"},
                                {AggKind::kMax, 1, "max_v"}};
  auto agg =
      std::make_unique<AggregateOperator>(StubWithInteriorEmpty(10), specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(agg.get()));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.column(0)->Value<int64_t>(0), 150);
  EXPECT_DOUBLE_EQ(out.column(1)->Value<double>(0), 149.0);
}

TEST(StreamProtocolTest, GroupBySeesRowsAfterInteriorEmptyBatch) {
  std::vector<AggSpec> specs = {{AggKind::kCount, -1, "cnt"}};
  auto gb = std::make_unique<HashGroupByOperator>(
      StubWithInteriorEmpty(3), std::vector<int>{0}, specs);
  ASSERT_OK_AND_ASSIGN(ColumnBatch out, CollectAll(gb.get()));
  ASSERT_EQ(out.num_rows(), 3);
  int64_t total = 0;
  for (int64_t i = 0; i < out.num_rows(); ++i) {
    total += out.column(1)->Value<int64_t>(i);
  }
  EXPECT_EQ(total, 150);
}

TEST(StreamProtocolTest, SentinelIsSticky) {
  Schema schema{{"k", DataType::kInt32}, {"v", DataType::kFloat64}};
  std::vector<ColumnBatch> batches;
  batches.push_back(StubBatch(schema, 0, 1, 10));
  ChunkedStubOperator op(schema, std::move(batches));
  ASSERT_OK(op.Open());
  ASSERT_OK_AND_ASSIGN(ColumnBatch first, op.Next());
  EXPECT_FALSE(first.end_of_stream());
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch eos, op.Next());
    EXPECT_TRUE(eos.end_of_stream());
    EXPECT_TRUE(eos.empty());
  }
}

}  // namespace
}  // namespace raw
