#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/mmap_file.h"
#include "jsonl/jsonl_parser.h"
#include "jsonl/jsonl_scan.h"
#include "jsonl/jsonl_writer.h"
#include "scan/morsel.h"
#include "tests/test_util.h"

namespace raw {
namespace {

Schema TestSchema() {
  return Schema{{"id", DataType::kInt32},
                {"name", DataType::kString},
                {"score", DataType::kFloat64},
                {"active", DataType::kBool}};
}

// --- parser ---------------------------------------------------------------

TEST(JsonlParserTest, ParsesFlatObjectInAnyKeyOrder) {
  const std::string row =
      R"({"score": 2.5, "id": 7, "active": true, "name": "ada"})" "\n";
  JsonlRowParser parser(TestSchema());
  std::vector<JsonlField> fields(4);
  const char* p = row.data();
  ASSERT_OK(parser.ParseRow(&p, row.data() + row.size(), row.data(),
                            fields.data()));
  EXPECT_EQ(std::string(fields[0].data, fields[0].size), "7");
  EXPECT_EQ(std::string(fields[1].data, fields[1].size), "ada");
  EXPECT_TRUE(fields[1].quoted);
  EXPECT_EQ(std::string(fields[2].data, fields[2].size), "2.5");
  EXPECT_EQ(std::string(fields[3].data, fields[3].size), "true");
  // Offsets address the value (strings: the opening quote).
  EXPECT_EQ(row[fields[1].offset], '"');
  EXPECT_EQ(row[fields[0].offset], '7');
}

TEST(JsonlParserTest, SkipsUnknownKeysAndRejectsMissingOnes) {
  JsonlRowParser parser(TestSchema());
  std::vector<JsonlField> fields(4);
  const std::string extra =
      R"({"id":1,"name":"x","wat":99,"score":0.5,"active":false})";
  const char* p = extra.data();
  EXPECT_OK(parser.ParseRow(&p, extra.data() + extra.size(), extra.data(),
                            fields.data()));
  const std::string missing = R"({"id":1,"name":"x","score":0.5})";
  p = missing.data();
  Status st = parser.ParseRow(&p, missing.data() + missing.size(),
                              missing.data(), fields.data());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("missing key"), std::string::npos);
}

TEST(JsonlParserTest, RejectsNestedValues) {
  JsonlRowParser parser(Schema{{"a", DataType::kInt32}});
  std::vector<JsonlField> fields(1);
  for (const std::string& row :
       {std::string(R"({"a":{"b":1}})"), std::string(R"({"a":[1,2]})")}) {
    const char* p = row.data();
    EXPECT_FALSE(parser
                     .ParseRow(&p, row.data() + row.size(), row.data(),
                               fields.data())
                     .ok());
  }
}

TEST(JsonlParserTest, UnescapesStrings) {
  const std::string raw = R"(tab\there \"q\" é 😀 back\\slash)";
  std::string out;
  ASSERT_OK(UnescapeJsonString(raw.data(), static_cast<int32_t>(raw.size()),
                               &out));
  EXPECT_EQ(out, "tab\there \"q\" \xc3\xa9 \xf0\x9f\x98\x80 back\\slash");
}

TEST(JsonlParserTest, CountsNonBlankLines) {
  const std::string text = "{\"a\":1}\n\n{\"a\":2}\n   \n{\"a\":3}";
  EXPECT_EQ(CountJsonlRows(text.data(), text.data() + text.size()), 3);
  EXPECT_EQ(CountJsonlRows(text.data(), text.data()), 0);
}

// --- writer / scan round trip ---------------------------------------------

// Built without a leading string literal in an rvalue operator+ chain (GCC
// 12's -Wrestrict false positive, which -Werror CI would reject). The value
// embeds an escaped quote and newline to stress JSON (un)escaping.
std::string NameVal(int64_t i) {
  std::string s = "n\"am\ne_";
  s += std::to_string(i);
  return s;
}

class JsonlScanTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    path_ = Path("t.jsonl");
    JsonlWriter writer(path_, TestSchema());
    ASSERT_OK(writer.Open());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_OK(writer.AppendDatumRow(
          {Datum::Int32(i), Datum::String(NameVal(i)),
           Datum::Float64(i * 0.25), Datum::Bool(i % 3 == 0)}));
    }
    ASSERT_OK(writer.Close());
    ASSERT_OK_AND_ASSIGN(file_, MmapFile::Open(path_));
  }

  static constexpr int kRows = 500;
  std::string path_;
  std::unique_ptr<MmapFile> file_;
};

TEST_F(JsonlScanTest, SequentialScanRoundTripsEscapedStrings) {
  JsonlScanSpec spec;
  spec.file_schema = TestSchema();
  spec.outputs = {0, 1, 2, 3};
  JsonlScanOperator scan(file_.get(), spec);
  ASSERT_OK(scan.Open());
  int64_t seen = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
    if (batch.empty()) break;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      const int64_t row = seen + r;
      EXPECT_EQ(batch.column(0)->Value<int32_t>(r), row);
      EXPECT_EQ(batch.column(1)->StringValue(r), NameVal(row));
      EXPECT_DOUBLE_EQ(batch.column(2)->Value<double>(r), row * 0.25);
      EXPECT_EQ(batch.column(3)->Value<bool>(r), row % 3 == 0);
    }
    seen += batch.num_rows();
  }
  EXPECT_EQ(seen, kRows);
}

TEST_F(JsonlScanTest, FieldOffsetMapMatchesSequentialScan) {
  // Build the map (tracking a strided subset), then re-read positionally —
  // tracked columns jump straight to mapped value offsets, untracked ones
  // re-parse from the row start. Both must agree with the sequential scan.
  PositionalMap pmap = PositionalMap::WithStride(4, /*stride=*/2);
  {
    JsonlScanSpec build;
    build.file_schema = TestSchema();
    build.outputs = {0};
    build.build_pmap = &pmap;
    JsonlScanOperator scan(file_.get(), build);
    ASSERT_OK(scan.Open());
    while (true) {
      ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
      if (batch.empty()) break;
    }
  }
  ASSERT_OK(pmap.CheckConsistency());
  ASSERT_EQ(pmap.num_rows(), kRows);

  JsonlScanSpec warm;
  warm.file_schema = TestSchema();
  warm.outputs = {1, 2};  // column 2 tracked (stride 2), column 1 not
  warm.use_pmap = &pmap;
  JsonlScanOperator scan(file_.get(), warm);
  ASSERT_OK(scan.Open());
  int64_t seen = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
    if (batch.empty()) break;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      const int64_t row = batch.row_ids()[static_cast<size_t>(r)];
      EXPECT_EQ(batch.column(0)->StringValue(r), NameVal(row));
      EXPECT_DOUBLE_EQ(batch.column(1)->Value<double>(r), row * 0.25);
    }
    seen += batch.num_rows();
  }
  EXPECT_EQ(seen, kRows);

  // Late-scan fetch: explicit row set through the same map.
  JsonlScanSpec fspec;
  fspec.file_schema = TestSchema();
  fspec.outputs = {2};
  fspec.use_pmap = &pmap;
  JsonlRowFetcher fetcher(file_.get(), fspec);
  RowSet rows;
  rows.ids = {499, 0, 77};
  ASSERT_OK_AND_ASSIGN(std::vector<ColumnPtr> cols, fetcher.Fetch(rows));
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_DOUBLE_EQ(cols[0]->Value<double>(0), 499 * 0.25);
  EXPECT_DOUBLE_EQ(cols[0]->Value<double>(1), 0.0);
  EXPECT_DOUBLE_EQ(cols[0]->Value<double>(2), 77 * 0.25);
}

TEST_F(JsonlScanTest, ByteMorselsTileTheFileAndRebaseCleanly) {
  std::vector<ScanRange> morsels =
      SplitJsonlByteRanges(file_->data(), file_->size(), 4, /*min_bytes=*/64);
  ASSERT_GT(morsels.size(), 1u);
  int64_t total = 0;
  int64_t cursor = 0;
  for (const ScanRange& m : morsels) {
    EXPECT_EQ(m.unit, ScanRange::Unit::kBytes);
    EXPECT_EQ(m.begin, cursor);
    cursor = m.end;
    JsonlScanSpec spec;
    spec.file_schema = TestSchema();
    spec.outputs = {0};
    spec.range = m;
    JsonlScanOperator scan(file_.get(), spec);
    ASSERT_OK(scan.Open());
    while (true) {
      ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
      if (batch.empty()) break;
      for (int64_t r = 0; r < batch.num_rows(); ++r) {
        // Range-local ids rebase by prefix sums, mirroring the parallel
        // scan driver; values must land back on the global row number.
        EXPECT_EQ(batch.column(0)->Value<int32_t>(r),
                  total + batch.row_ids()[static_cast<size_t>(r)]);
      }
      total += batch.num_rows();
    }
  }
  EXPECT_EQ(cursor, static_cast<int64_t>(file_->size()));
  EXPECT_EQ(total, kRows);
}

TEST_F(JsonlScanTest, EmptyFileScansToZeroRows) {
  std::string empty_path = Path("empty.jsonl");
  JsonlWriter writer(empty_path, TestSchema());
  ASSERT_OK(writer.Open());
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> empty,
                       MmapFile::Open(empty_path));
  JsonlScanSpec spec;
  spec.file_schema = TestSchema();
  spec.outputs = {0, 3};
  JsonlScanOperator scan(empty.get(), spec);
  ASSERT_OK(scan.Open());
  ASSERT_OK_AND_ASSIGN(ColumnBatch batch, scan.Next());
  EXPECT_TRUE(batch.empty());
}


TEST(JsonlParserTest, DecodesSurrogatePairEscapes) {
  // 😀 is U+1F600 (grinning face); the pair must decode to one
  // 4-byte UTF-8 sequence, not two replacement characters or CESU-8.
  const std::string raw = R"(hi \ud83d\ude00!)";
  std::string out;
  ASSERT_OK(UnescapeJsonString(raw.data(), static_cast<int32_t>(raw.size()),
                               &out));
  EXPECT_EQ(out, "hi \xf0\x9f\x98\x80!");
}

TEST(JsonlParserTest, RejectsLoneAndMismatchedSurrogates) {
  const char* bad[] = {
      R"(\ud83d)",        // lone high surrogate at end of string
      R"(\ud83d tail)",   // high surrogate followed by plain text
      R"(\ud83dA)",  // high surrogate followed by a non-surrogate
      R"(\ude00)",        // lone low surrogate
  };
  for (const char* raw : bad) {
    std::string out;
    EXPECT_FALSE(UnescapeJsonString(raw, static_cast<int32_t>(strlen(raw)),
                                    &out)
                     .ok())
        << raw;
  }
}

TEST(JsonlParserTest, BmpEscapesStillDecode) {
  const std::string raw = R"(\u0041\u00e9\u4e2d)";  // A, e-acute, CJK
  std::string out;
  ASSERT_OK(UnescapeJsonString(raw.data(), static_cast<int32_t>(raw.size()),
                               &out));
  EXPECT_EQ(out, "A\xc3\xa9\xe4\xb8\xad");
}

}  // namespace
}  // namespace raw
