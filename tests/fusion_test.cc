// JIT pipeline fusion: fused scan→filter→project/aggregate loops must be
// indistinguishable from the interpreted operator pipeline except for speed.
// These tests sweep formats × thread counts × kernel tiers × aggregate kinds
// comparing fused and interpreted results cell by cell, and pin down the
// eligibility rules (fallback formats, the RAW_JIT_FUSION knob, dense
// shred-cache inputs, observability counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/kernels.h"
#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

using ::raw::testing::TempDirTest;

/// Planner options for fusion tests: shred-cache population off by default so
/// every query reads the file and fusion eligibility does not depend on which
/// query ran first (the dense-input tests opt back in explicitly).
PlannerOptions Opts(JitFusion fusion, int threads) {
  PlannerOptions options;
  options.jit_fusion = fusion;
  options.num_threads = threads;
  options.populate_shred_cache = false;
  return options;
}

void ExpectSameResults(const QueryResult& fused, const QueryResult& interp,
                       const std::string& context) {
  ASSERT_EQ(fused.num_rows(), interp.num_rows()) << context;
  ASSERT_EQ(fused.num_columns(), interp.num_columns()) << context;
  for (int64_t r = 0; r < fused.num_rows(); ++r) {
    for (int c = 0; c < fused.num_columns(); ++c) {
      ASSERT_OK_AND_ASSIGN(Datum f, fused.ValueAt(r, c));
      ASSERT_OK_AND_ASSIGN(Datum i, interp.ValueAt(r, c));
      // ToString round-trips doubles at full precision, so string equality
      // is bit-for-bit equality for every supported type.
      ASSERT_EQ(f.ToString(), i.ToString())
          << context << " at (" << r << "," << c << ")";
    }
  }
}

bool Fused(const QueryResult& result) {
  return result.plan_description.find("[jit-fused]") != std::string::npos;
}

class FusionTest : public TempDirTest {
 protected:
  void SetUp() override {
    TempDirTest::SetUp();
    // 8 columns: int32 except col3 (int64) and col4 (float64).
    spec_ = TableSpec::UniformInt32("f", 8, 3000, 99);
    spec_.columns[3].type = DataType::kInt64;
    spec_.columns[4].type = DataType::kFloat64;
  }

  /// Engine over the CSV copy; `warm` runs one interpreted full scan first so
  /// the complete positional map the fused CSV plug-in requires is published.
  std::unique_ptr<RawEngine> CsvEngine(bool warm = true) {
    csv_path_ = Path("f.csv");
    EXPECT_OK(WriteCsvFile(spec_, csv_path_));
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterCsv("f", csv_path_, spec_.ToSchema()));
    if (warm) {
      EXPECT_TRUE(
          engine->Query("SELECT SUM(col0) FROM f", Opts(JitFusion::kOff, 1))
              .ok());
    }
    return engine;
  }

  std::unique_ptr<RawEngine> BinEngine() {
    bin_path_ = Path("f.bin");
    EXPECT_OK(WriteBinaryFile(spec_, bin_path_));
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterBinary("f", bin_path_, spec_.ToSchema()));
    return engine;
  }

  bool CompilerAvailable(RawEngine& engine) {
    return engine.Stats().jit_compiler_available();
  }

  /// Aggregate shapes whose fused plans parallelize (COUNT / MIN / MAX /
  /// integer SUM merge exactly at any thread count).
  std::vector<std::string> MergeableAggQueries() {
    const std::string l1 = spec_.SelectivityLiteral(1, 0.4).ToString();
    const std::string l3 = spec_.SelectivityLiteral(3, 0.7).ToString();
    return {
        "SELECT COUNT(*) FROM f WHERE col1 < " + l1,
        "SELECT COUNT(col2) FROM f WHERE col1 < " + l1,
        "SELECT MAX(col2), MIN(col2), SUM(col2) FROM f WHERE col1 < " + l1 +
            " AND col3 >= " + l3,
        "SELECT SUM(col3) FROM f WHERE col4 < 500000000",
        "SELECT MAX(col4), MIN(col4) FROM f WHERE col1 < " + l1,
        // Empty result set: MIN/MAX must agree on the no-rows encoding too.
        "SELECT COUNT(*), MAX(col2) FROM f WHERE col1 < 0",
    };
  }

  /// Order-sensitive float aggregates: fused only single-threaded.
  std::vector<std::string> FloatAggQueries() {
    const std::string l1 = spec_.SelectivityLiteral(1, 0.4).ToString();
    return {
        "SELECT SUM(col4) FROM f WHERE col1 < " + l1,
        "SELECT AVG(col4), COUNT(*) FROM f WHERE col1 < " + l1,
    };
  }

  std::vector<std::string> ProjectionQueries() {
    const std::string l1 = spec_.SelectivityLiteral(1, 0.1).ToString();
    return {
        "SELECT col0, col4 FROM f WHERE col1 < " + l1,
        "SELECT col2 FROM f WHERE col1 < " + l1 + " LIMIT 7",
    };
  }

  TableSpec spec_;
  std::string csv_path_;
  std::string bin_path_;
};

// --- fused == interpreted, per format ----------------------------------------

TEST_F(FusionTest, CsvFusedMatchesInterpreted) {
  auto engine = CsvEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  std::vector<std::string> queries = MergeableAggQueries();
  for (const std::string& q : ProjectionQueries()) queries.push_back(q);
  for (const std::string& sql : queries) {
    for (int threads : {1, 4}) {
      ASSERT_OK_AND_ASSIGN(QueryResult fused,
                           engine->Query(sql, Opts(JitFusion::kOn, threads)));
      ASSERT_OK_AND_ASSIGN(QueryResult interp,
                           engine->Query(sql, Opts(JitFusion::kOff, threads)));
      EXPECT_TRUE(Fused(fused)) << fused.plan_description << " for " << sql;
      EXPECT_FALSE(Fused(interp)) << interp.plan_description;
      ExpectSameResults(fused, interp,
                        sql + " threads=" + std::to_string(threads));
    }
  }
}

TEST_F(FusionTest, BinFusedMatchesInterpreted) {
  auto engine = BinEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  std::vector<std::string> queries = MergeableAggQueries();
  for (const std::string& q : ProjectionQueries()) queries.push_back(q);
  for (const std::string& sql : queries) {
    for (int threads : {1, 4}) {
      ASSERT_OK_AND_ASSIGN(QueryResult fused,
                           engine->Query(sql, Opts(JitFusion::kOn, threads)));
      ASSERT_OK_AND_ASSIGN(QueryResult interp,
                           engine->Query(sql, Opts(JitFusion::kOff, threads)));
      EXPECT_TRUE(Fused(fused)) << fused.plan_description << " for " << sql;
      EXPECT_NE(fused.plan_description.find("[fused-bin-scan"),
                std::string::npos)
          << fused.plan_description;
      ExpectSameResults(fused, interp,
                        sql + " threads=" + std::to_string(threads));
    }
  }
}

TEST_F(FusionTest, RefFusedMatchesInterpreted) {
  EventGenOptions gen;
  gen.num_events = 2000;
  ASSERT_OK(WriteRefFile(Path("e.ref"), gen, /*cluster_events=*/128));
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("a", Path("e.ref")));
  if (!CompilerAvailable(engine)) GTEST_SKIP() << "no compiler";
  const std::vector<std::string> queries = {
      "SELECT MAX(pt), MIN(eta), COUNT(*) FROM a_muons WHERE pt > 10",
      "SELECT COUNT(*) FROM a_events WHERE runNumber > 2010",
  };
  for (const std::string& sql : queries) {
    for (int threads : {1, 4}) {
      ASSERT_OK_AND_ASSIGN(QueryResult fused,
                           engine.Query(sql, Opts(JitFusion::kOn, threads)));
      ASSERT_OK_AND_ASSIGN(QueryResult interp,
                           engine.Query(sql, Opts(JitFusion::kOff, threads)));
      EXPECT_TRUE(Fused(fused)) << fused.plan_description << " for " << sql;
      EXPECT_NE(fused.plan_description.find("[fused-ref-scan"),
                std::string::npos)
          << fused.plan_description;
      ExpectSameResults(fused, interp,
                        sql + " threads=" + std::to_string(threads));
    }
  }
}

// --- float aggregates: fuse only where merging is exact ----------------------

TEST_F(FusionTest, FloatAggsFuseOnlySingleThreaded) {
  auto engine = BinEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  for (const std::string& sql : FloatAggQueries()) {
    ASSERT_OK_AND_ASSIGN(QueryResult serial,
                         engine->Query(sql, Opts(JitFusion::kOn, 1)));
    EXPECT_TRUE(Fused(serial)) << serial.plan_description << " for " << sql;
    // Parallel float SUM/AVG would reassociate additions; the planner must
    // keep those interpreted (morsel order preserves the serial result).
    ASSERT_OK_AND_ASSIGN(QueryResult parallel,
                         engine->Query(sql, Opts(JitFusion::kOn, 4)));
    EXPECT_FALSE(Fused(parallel)) << parallel.plan_description;
    ASSERT_OK_AND_ASSIGN(QueryResult interp,
                         engine->Query(sql, Opts(JitFusion::kOff, 1)));
    ExpectSameResults(serial, interp, sql + " serial");
    ExpectSameResults(parallel, interp, sql + " parallel");
  }
}

// --- kernel-tier sweep -------------------------------------------------------

TEST_F(FusionTest, FusedResultsIdenticalAcrossKernelTiers) {
  struct TierRestore {
    ~TierRestore() { ResetKernelTierFromEnv(); }
  } restore;
  auto engine = BinEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  const std::string sql = "SELECT COUNT(*), MAX(col2), SUM(col3) FROM f "
                          "WHERE col1 < " +
                          spec_.SelectivityLiteral(1, 0.4).ToString();
  ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                       engine->Query(sql, Opts(JitFusion::kOff, 1)));
  for (int t = 0; t <= static_cast<int>(MaxSupportedKernelTier()); ++t) {
    SetKernelTier(static_cast<KernelTier>(t));
    for (int threads : {1, 4}) {
      ASSERT_OK_AND_ASSIGN(QueryResult fused,
                           engine->Query(sql, Opts(JitFusion::kOn, threads)));
      EXPECT_TRUE(Fused(fused)) << fused.plan_description;
      ExpectSameResults(fused, baseline,
                        "tier=" + std::to_string(t) +
                            " threads=" + std::to_string(threads));
    }
  }
}

// --- eligibility & fallback --------------------------------------------------

TEST_F(FusionTest, FallbackFormatsRunInterpretedTransparently) {
  ASSERT_OK(WriteJsonlFile(spec_, Path("f.jsonl")));
  ASSERT_OK(WriteCsvGzTable(spec_, Path("f.csv.gz")));
  RawEngine engine;
  ASSERT_OK(engine.RegisterJsonl("j", Path("f.jsonl"), spec_.ToSchema()));
  ASSERT_OK(engine.RegisterCsvGz("z", Path("f.csv.gz"), spec_.ToSchema()));
  const std::string lit = spec_.SelectivityLiteral(1, 0.4).ToString();
  for (const std::string table : {"j", "z"}) {
    const std::string sql =
        "SELECT COUNT(*), MAX(col2) FROM " + table + " WHERE col1 < " + lit;
    // Same query, fusion on vs. off: the format has no fusion plug-in, so
    // both runs are interpreted and agree — fusion never breaks a format.
    ASSERT_OK_AND_ASSIGN(QueryResult on,
                         engine.Query(sql, Opts(JitFusion::kOn, 1)));
    ASSERT_OK_AND_ASSIGN(QueryResult off,
                         engine.Query(sql, Opts(JitFusion::kOff, 1)));
    EXPECT_FALSE(Fused(on)) << on.plan_description;
    ExpectSameResults(on, off, sql);
  }
}

TEST_F(FusionTest, IneligibleShapesStayInterpreted) {
  auto engine = BinEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  const std::string lit = spec_.SelectivityLiteral(1, 0.4).ToString();
  // GROUP BY is out of scope for the fused tier.
  ASSERT_OK_AND_ASSIGN(
      QueryResult grouped,
      engine->Query("SELECT col2, COUNT(*) FROM f WHERE col1 < " + lit +
                        " GROUP BY col2",
                    Opts(JitFusion::kOn, 1)));
  EXPECT_FALSE(Fused(grouped)) << grouped.plan_description;
  // kOff wins over an otherwise perfectly fusable query.
  ASSERT_OK_AND_ASSIGN(
      QueryResult off,
      engine->Query("SELECT COUNT(*) FROM f WHERE col1 < " + lit,
                    Opts(JitFusion::kOff, 1)));
  EXPECT_FALSE(Fused(off)) << off.plan_description;
}

// --- dense (shred-cache) inputs ----------------------------------------------

TEST_F(FusionTest, CachedColumnsFeedFusedPipelinesAsDenseInputs) {
  auto engine = CsvEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  // Warm col5 into the shred cache with an interpreted full-column scan.
  PlannerOptions warm = Opts(JitFusion::kOff, 1);
  warm.populate_shred_cache = true;
  ASSERT_OK_AND_ASSIGN(QueryResult warmed,
                       engine->Query("SELECT SUM(col5) FROM f", warm));
  ASSERT_TRUE(engine->ShredCacheContainsFull("f", 5));

  // col5 now arrives dense while col1 is still parsed from the file: the
  // fused kernel mixes both input kinds.
  const std::string sql = "SELECT SUM(col5), MAX(col5) FROM f WHERE col1 < " +
                          spec_.SelectivityLiteral(1, 0.4).ToString();
  ASSERT_OK_AND_ASSIGN(QueryResult fused,
                       engine->Query(sql, Opts(JitFusion::kOn, 1)));
  EXPECT_TRUE(Fused(fused)) << fused.plan_description;
  PlannerOptions no_cache = Opts(JitFusion::kOff, 1);
  no_cache.use_shred_cache = false;
  ASSERT_OK_AND_ASSIGN(QueryResult interp, engine->Query(sql, no_cache));
  ExpectSameResults(fused, interp, sql);

  // Once every needed column is cached there is no file loop left to fuse;
  // the plan falls back to (cheap, in-memory) interpreted operators.
  ASSERT_OK_AND_ASSIGN(
      QueryResult all_cached,
      engine->Query("SELECT SUM(col5) FROM f WHERE col5 >= 0",
                    Opts(JitFusion::kOn, 1)));
  EXPECT_FALSE(Fused(all_cached)) << all_cached.plan_description;
  ASSERT_OK_AND_ASSIGN(Datum full_sum, warmed.Scalar());
  ASSERT_OK_AND_ASSIGN(Datum cached_sum, all_cached.Scalar());
  EXPECT_EQ(full_sum.ToString(), cached_sum.ToString());
}

// --- observability -----------------------------------------------------------

TEST_F(FusionTest, StatsCountFusedAndInterpretedPlans) {
  auto engine = BinEngine();
  if (!CompilerAvailable(*engine)) GTEST_SKIP() << "no compiler";
  EngineStats before = engine->Stats();
  EXPECT_EQ(before.plans_fused, 0);

  const std::string lit = spec_.SelectivityLiteral(1, 0.4).ToString();
  ASSERT_OK_AND_ASSIGN(QueryResult fused,
                       engine->Query("SELECT COUNT(*) FROM f WHERE col1 < " +
                                         lit,
                                     Opts(JitFusion::kOn, 1)));
  ASSERT_TRUE(Fused(fused));
  EngineStats after = engine->Stats();
  EXPECT_EQ(after.plans_fused, 1);
  EXPECT_GE(after.jit_cache.compiles, 1);
  EXPECT_GT(after.jit_cache.total_compile_seconds, 0.0);
  // The first execution pays the compile; it is charged to compile time, not
  // execution time, so benchmarks can subtract it.
  EXPECT_GT(fused.compile_seconds, 0.0);

  ASSERT_OK_AND_ASSIGN(
      QueryResult grouped,
      engine->Query("SELECT col2, COUNT(*) FROM f GROUP BY col2",
                    Opts(JitFusion::kOn, 1)));
  EXPECT_FALSE(Fused(grouped));
  EXPECT_GE(engine->Stats().plans_interpreted, 1);

  // Re-running the same shape hits the template cache: no new compile.
  const int64_t compiles = engine->Stats().jit_cache.compiles;
  ASSERT_OK_AND_ASSIGN(QueryResult again,
                       engine->Query("SELECT COUNT(*) FROM f WHERE col1 < " +
                                         lit,
                                     Opts(JitFusion::kOn, 1)));
  ASSERT_TRUE(Fused(again));
  EXPECT_EQ(engine->Stats().jit_cache.compiles, compiles);
  EXPECT_EQ(engine->Stats().plans_fused, 2);
}

}  // namespace
}  // namespace raw
