#include <gtest/gtest.h>

#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "tests/test_util.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

/// Computes the expected MAX(agg_col) over rows with col(pred_col) < lit via
/// the deterministic data source (ground truth independent of the engine).
Datum ExpectedMax(const TableSpec& spec, int agg_col, int pred_col,
                  int64_t lit) {
  TableDataSource source(spec);
  int64_t best = INT64_MIN;
  double bestf = -1e300;
  bool is_float = spec.columns[static_cast<size_t>(agg_col)].type ==
                      DataType::kFloat64 ||
                  spec.columns[static_cast<size_t>(agg_col)].type ==
                      DataType::kFloat32;
  for (int64_t r = 0; r < spec.rows; ++r) {
    Datum p = source.Value(r, pred_col);
    if (*p.AsInt64() >= lit) continue;
    Datum v = source.Value(r, agg_col);
    if (is_float) {
      bestf = std::max(bestf, *v.AsDouble());
    } else {
      best = std::max(best, *v.AsInt64());
    }
  }
  if (is_float) return Datum::Float64(bestf);
  return Datum::Int64(best);
}

class EngineTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    spec_ = TableSpec::UniformInt32("t", 12, 2000, /*seed=*/21);
    spec_.columns[7].type = DataType::kFloat64;
    ASSERT_OK(WriteCsvFile(spec_, Path("t.csv")));
    ASSERT_OK(WriteBinaryFile(spec_, Path("t.bin")));
  }

  std::unique_ptr<RawEngine> NewEngine() {
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterCsv("t_csv", Path("t.csv"), spec_.ToSchema(),
                                  CsvOptions(), /*pmap_stride=*/4));
    EXPECT_OK(engine->RegisterBinary("t_bin", Path("t.bin"), spec_.ToSchema()));
    return engine;
  }

  TableSpec spec_;
};

TEST_F(EngineTest, CatalogBasics) {
  auto engine = NewEngine();
  EXPECT_NE(engine->Stats().table("t_csv"), nullptr);
  EXPECT_EQ(engine->Stats().table("nope"), nullptr);
  EXPECT_FALSE(engine->RegisterCsv("t_csv", Path("t.csv"), spec_.ToSchema())
                   .ok());  // duplicate
  EXPECT_EQ(engine->Stats().tables.size(), 2u);
  EXPECT_FALSE(engine->Query("SELECT COUNT(*) FROM missing").ok());
}

TEST_F(EngineTest, SimpleAggregateMatchesGroundTruth) {
  auto engine = NewEngine();
  int64_t lit = 300000000;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col5) FROM t_csv WHERE col1 < " +
                    std::to_string(lit)));
  ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
  Datum expected = ExpectedMax(spec_, 5, 1, lit);
  EXPECT_EQ(*got.AsInt64(), expected.int64_value());
}

TEST_F(EngineTest, AllAccessPathsAgree) {
  int64_t lit = 450000000;
  std::string sql =
      "SELECT MAX(col7) FROM t_csv WHERE col1 < " + std::to_string(lit);
  Datum expected = ExpectedMax(spec_, 7, 1, lit);
  for (AccessPathKind path :
       {AccessPathKind::kExternalTable, AccessPathKind::kInSitu,
        AccessPathKind::kJit, AccessPathKind::kLoaded}) {
    auto engine = NewEngine();
    PlannerOptions options;
    options.access_path = path;
    auto result = engine->Query(sql, options);
    if (!result.ok() && path == AccessPathKind::kJit) {
      GTEST_SKIP() << "JIT unavailable: " << result.status().ToString();
    }
    ASSERT_TRUE(result.ok())
        << AccessPathKindToString(path) << ": " << result.status().ToString();
    ASSERT_OK_AND_ASSIGN(Datum got, result->Scalar());
    EXPECT_DOUBLE_EQ(*got.AsDouble(), expected.float64_value())
        << AccessPathKindToString(path);
  }
}

TEST_F(EngineTest, ShredsAndFullColumnsAgreeOnBothFormats) {
  int64_t lit = 200000000;
  for (const char* table : {"t_csv", "t_bin"}) {
    std::string sql = std::string("SELECT MAX(col5) FROM ") + table +
                      " WHERE col1 < " + std::to_string(lit);
    Datum expected = ExpectedMax(spec_, 5, 1, lit);
    for (ShredPolicy policy :
         {ShredPolicy::kFullColumns, ShredPolicy::kShreds,
          ShredPolicy::kMultiColumnShreds}) {
      auto engine = NewEngine();
      PlannerOptions options;
      options.access_path = AccessPathKind::kInSitu;
      options.shred_policy = policy;
      ASSERT_OK_AND_ASSIGN(QueryResult result, engine->Query(sql, options));
      ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
      EXPECT_EQ(*got.AsInt64(), expected.int64_value())
          << table << " " << ShredPolicyToString(policy);
    }
  }
}

TEST_F(EngineTest, SecondQueryUsesPositionalMapAndCache) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  ASSERT_OK(engine->Query("SELECT MAX(col1) FROM t_csv WHERE col1 < 900000000",
                          options)
                .status());
  // Positional map built by query 1.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const PositionalMap> pmap,
                       engine->PositionalMapSnapshot("t_csv"));
  ASSERT_NE(pmap, nullptr);
  EXPECT_EQ(pmap->num_rows(), 2000);
  EXPECT_EQ(engine->Stats().table("t_csv")->row_count, 2000);
  // col1 should now be served from the shred cache (full column).
  EXPECT_TRUE(engine->ShredCacheContainsFull("t_csv", 1));
  // Second query over a different column still correct.
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(col5) FROM t_csv WHERE col1 < 100000000",
                    options));
  ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
  EXPECT_EQ(*got.AsInt64(),
            ExpectedMax(spec_, 5, 1, 100000000).int64_value());
}

TEST_F(EngineTest, RepeatQueryServedFromCacheIsFaster) {
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  std::string sql = "SELECT MAX(col3) FROM t_csv WHERE col1 < 800000000";
  ASSERT_OK_AND_ASSIGN(QueryResult cold, engine->Query(sql, options));
  // The first run pools *both* touched columns: col1 as a full column (base
  // scan) and col3 as a shred over the qualifying rows (late scan).
  EXPECT_TRUE(engine->ShredCacheContainsFull("t_csv", 1));
  EXPECT_GE(engine->Stats().shred_cache.entries, 2);
  ASSERT_OK_AND_ASSIGN(QueryResult warm, engine->Query(sql, options));
  ASSERT_OK_AND_ASSIGN(Datum a, cold.Scalar());
  ASSERT_OK_AND_ASSIGN(Datum b, warm.Scalar());
  EXPECT_EQ(a, b);
  EXPECT_GT(engine->Stats().shred_cache.hits, 0);
}

TEST_F(EngineTest, CountAndMultipleAggregates) {
  auto engine = NewEngine();
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query(
          "SELECT COUNT(*), MIN(col2), MAX(col2), AVG(col2) FROM t_bin"));
  ASSERT_EQ(result.num_rows(), 1);
  ASSERT_OK_AND_ASSIGN(Datum count, result.ValueAt(0, 0));
  EXPECT_EQ(count.int64_value(), 2000);
  ASSERT_OK_AND_ASSIGN(Datum lo, result.ValueAt(0, 1));
  ASSERT_OK_AND_ASSIGN(Datum hi, result.ValueAt(0, 2));
  EXPECT_LE(*lo.AsInt64(), *hi.AsInt64());
}

TEST_F(EngineTest, ProjectionWithLimit) {
  auto engine = NewEngine();
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT col0, col1 FROM t_csv WHERE col0 < 500000000 "
                    "LIMIT 5"));
  EXPECT_LE(result.num_rows(), 5);
  EXPECT_EQ(result.num_columns(), 2);
  EXPECT_EQ(result.table.schema().field(0).name, "col0");
}

TEST_F(EngineTest, MultiPredicateQuery) {
  auto engine = NewEngine();
  TableDataSource source(spec_);
  int64_t expected = 0;
  for (int64_t r = 0; r < spec_.rows; ++r) {
    if (*source.Value(r, 1).AsInt64() < 500000000 &&
        *source.Value(r, 4).AsInt64() < 500000000) {
      ++expected;
    }
  }
  for (ShredPolicy policy :
       {ShredPolicy::kFullColumns, ShredPolicy::kShreds,
        ShredPolicy::kMultiColumnShreds}) {
    auto engine2 = NewEngine();
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.shred_policy = policy;
    ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        engine2->Query("SELECT COUNT(*) FROM t_csv WHERE col1 < 500000000 "
                       "AND col4 < 500000000",
                       options));
    ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
    EXPECT_EQ(got.int64_value(), expected) << ShredPolicyToString(policy);
  }
}

// --- joins ---------------------------------------------------------------------

class JoinEngineTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    // Two small tables with a controlled key overlap. file2 shuffled.
    spec_ = TableSpec::UniformInt32("j", 6, 600, /*seed=*/33);
    for (auto& col : spec_.columns) col.max_value = 200;  // dense keys
    ASSERT_OK(WriteCsvFile(spec_, Path("f1.csv")));
    perm_ = ShuffledPermutation(spec_.rows, 5);
    ASSERT_OK(WriteCsvFile(spec_, Path("f2.csv"), &perm_));
  }

  std::unique_ptr<RawEngine> NewEngine() {
    auto engine = std::make_unique<RawEngine>();
    EXPECT_OK(engine->RegisterCsv("f1", Path("f1.csv"), spec_.ToSchema(),
                                  CsvOptions(), 2));
    EXPECT_OK(engine->RegisterCsv("f2", Path("f2.csv"), spec_.ToSchema(),
                                  CsvOptions(), 2));
    return engine;
  }

  // Ground truth for SELECT MAX(proj) FROM f1 JOIN f2 ON f1.col0=f2.col0
  // WHERE f2.col1 < lit, where proj is (table, column).
  int64_t ExpectedJoinMax(int proj_table, int proj_col, int64_t lit) {
    TableDataSource source(spec_);
    int64_t best = INT64_MIN;
    for (int64_t l = 0; l < spec_.rows; ++l) {
      int64_t lkey = *source.Value(l, 0).AsInt64();
      for (int64_t r = 0; r < spec_.rows; ++r) {
        // f2 row r holds original row perm_[r].
        int64_t orig = perm_[static_cast<size_t>(r)];
        if (*source.Value(orig, 0).AsInt64() != lkey) continue;
        if (*source.Value(orig, 1).AsInt64() >= lit) continue;
        int64_t v = proj_table == 0 ? *source.Value(l, proj_col).AsInt64()
                                    : *source.Value(orig, proj_col).AsInt64();
        best = std::max(best, v);
      }
    }
    return best;
  }

  TableSpec spec_;
  std::vector<int64_t> perm_;
};

TEST_F(JoinEngineTest, PipelinedProjectionAllPlacementsAgree) {
  int64_t lit = 100;
  int64_t expected = ExpectedJoinMax(0, 4, lit);
  for (JoinProjectionPlacement placement :
       {JoinProjectionPlacement::kEarly, JoinProjectionPlacement::kIntermediate,
        JoinProjectionPlacement::kLate}) {
    auto engine = NewEngine();
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.join_placement = placement;
    ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        engine->Query("SELECT MAX(f1.col4) FROM f1 JOIN f2 ON f1.col0 = "
                      "f2.col0 WHERE f2.col1 < " +
                          std::to_string(lit),
                      options));
    ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
    EXPECT_EQ(*got.AsInt64(), expected)
        << JoinProjectionPlacementToString(placement);
  }
}

TEST_F(JoinEngineTest, LatePlacementDemotesWhenNoPositionalMapInReach) {
  // kLate projection placement needs a positional map for post-join CSV
  // fetches; with map building disabled the planner must demote to
  // intermediate placement instead of failing at fetch time.
  int64_t lit = 100;
  int64_t expected = ExpectedJoinMax(0, 4, lit);
  auto engine = NewEngine();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.join_placement = JoinProjectionPlacement::kLate;
  options.build_positional_map = false;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine->Query("SELECT MAX(f1.col4) FROM f1 JOIN f2 ON f1.col0 = "
                    "f2.col0 WHERE f2.col1 < " +
                        std::to_string(lit),
                    options));
  ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
  EXPECT_EQ(*got.AsInt64(), expected);
  EXPECT_NE(result.plan_description.find("no-pmap"), std::string::npos)
      << result.plan_description;
}

TEST_F(JoinEngineTest, BreakingProjectionAllPlacementsAgree) {
  int64_t lit = 120;
  int64_t expected = ExpectedJoinMax(1, 4, lit);
  for (JoinProjectionPlacement placement :
       {JoinProjectionPlacement::kEarly, JoinProjectionPlacement::kIntermediate,
        JoinProjectionPlacement::kLate}) {
    auto engine = NewEngine();
    PlannerOptions options;
    options.access_path = AccessPathKind::kInSitu;
    options.join_placement = placement;
    ASSERT_OK_AND_ASSIGN(
        QueryResult result,
        engine->Query("SELECT MAX(f2.col4) FROM f1 JOIN f2 ON f1.col0 = "
                      "f2.col0 WHERE f2.col1 < " +
                          std::to_string(lit),
                      options));
    ASSERT_OK_AND_ASSIGN(Datum got, result.Scalar());
    EXPECT_EQ(*got.AsInt64(), expected)
        << JoinProjectionPlacementToString(placement);
  }
}

// --- REF engine integration -------------------------------------------------------

class RefEngineTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    options_.num_events = 300;
    options_.seed = 17;
    ASSERT_OK(WriteRefFile(Path("e.ref"), options_, 64));
  }

  EventGenOptions options_;
};

TEST_F(RefEngineTest, EventAndParticleQueries) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("atlas", Path("e.ref")));
  PlannerOptions opts;
  opts.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(QueryResult events,
                       engine.Query("SELECT COUNT(*) FROM atlas_events", opts));
  ASSERT_OK_AND_ASSIGN(Datum n, events.Scalar());
  EXPECT_EQ(n.int64_value(), 300);

  // Ground truth via the generator.
  EventGenerator gen(options_);
  int64_t muons_passing = 0;
  for (int64_t i = 0; i < options_.num_events; ++i) {
    Event e = gen.Next();
    for (const Particle& m : e.muons) {
      if (m.pt > 25.0f) ++muons_passing;
    }
  }
  ASSERT_OK_AND_ASSIGN(
      QueryResult muons,
      engine.Query("SELECT COUNT(*) FROM atlas_muons WHERE pt > 25.0", opts));
  ASSERT_OK_AND_ASSIGN(Datum count, muons.Scalar());
  EXPECT_EQ(count.int64_value(), muons_passing);
}

TEST_F(RefEngineTest, GroupByEventId) {
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("atlas", Path("e.ref")));
  PlannerOptions opts;
  opts.access_path = AccessPathKind::kInSitu;
  opts.shred_policy = ShredPolicy::kFullColumns;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT eventID, COUNT(*) FROM atlas_jets GROUP BY eventID",
                   opts));
  // Every group's count matches the generator's jet multiplicity.
  EventGenerator gen(options_);
  std::vector<int64_t> expected(static_cast<size_t>(options_.num_events), 0);
  for (int64_t i = 0; i < options_.num_events; ++i) {
    expected[static_cast<size_t>(i)] =
        static_cast<int64_t>(gen.Next().jets.size());
  }
  for (int64_t r = 0; r < result.num_rows(); ++r) {
    int64_t ev = result.table.column(0)->Value<int64_t>(r);
    EXPECT_EQ(result.table.column(1)->Value<int64_t>(r),
              expected[static_cast<size_t>(ev)]);
  }
}

TEST_F(RefEngineTest, JoinEventsWithGoodRunsCsv) {
  ASSERT_OK(WriteGoodRunsCsv(Path("runs.csv"), options_));
  RawEngine engine;
  ASSERT_OK(engine.RegisterRef("atlas", Path("e.ref")));
  ASSERT_OK(engine.RegisterCsv("good_runs", Path("runs.csv"),
                               Schema{{"run", DataType::kInt32}}, CsvOptions(),
                               1));
  PlannerOptions opts;
  opts.access_path = AccessPathKind::kInSitu;
  ASSERT_OK_AND_ASSIGN(
      QueryResult result,
      engine.Query("SELECT COUNT(*) FROM atlas_events JOIN good_runs ON "
                   "atlas_events.runNumber = good_runs.run",
                   opts));
  // Ground truth.
  std::vector<int32_t> good = EventGenerator::GoodRuns(options_);
  std::set<int32_t> good_set(good.begin(), good.end());
  EventGenerator gen(options_);
  int64_t expected = 0;
  for (int64_t i = 0; i < options_.num_events; ++i) {
    if (good_set.count(gen.Next().run_number) > 0) ++expected;
  }
  ASSERT_OK_AND_ASSIGN(Datum n, result.Scalar());
  EXPECT_EQ(n.int64_value(), expected);
}

}  // namespace
}  // namespace raw
