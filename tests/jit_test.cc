#include <gtest/gtest.h>

#include "common/mmap_file.h"
#include "csv/csv_writer.h"
#include "jit/access_path_spec.h"
#include "jit/cc_compiler.h"
#include "jit/codegen.h"
#include "jit/source_builder.h"
#include "engine/formats/builtin.h"
#include "jit/template_cache.h"
#include "tests/test_util.h"

namespace raw {
namespace {

TEST(SourceBuilderTest, IndentsAndCloses) {
  SourceBuilder src;
  src.Open("if (x) {").Line("y();").Close();
  EXPECT_EQ(src.str(), "if (x) {\n  y();\n}\n");
}

AccessPathSpec CsvSeqSpec() {
  AccessPathSpec spec;
  spec.format = FileFormat::kCsv;
  spec.mode = ScanMode::kSequential;
  spec.outputs = {{0, DataType::kInt32}, {2, DataType::kFloat64}};
  spec.pmap_tracked = {0, 2};
  return spec;
}

TEST(CodegenTest, CsvSequentialSourceShape) {
  ASSERT_OK_AND_ASSIGN(std::string src, GenerateCsvScanSource(CsvSeqSpec()));
  // Unrolled per-column blocks, no per-column switch in the emitted code.
  EXPECT_NE(src.find("raw_jit_scan_batch"), std::string::npos);
  EXPECT_NE(src.find("// column 0"), std::string::npos);
  EXPECT_NE(src.find("// column 2"), std::string::npos);
  EXPECT_NE(src.find("pmap_pos"), std::string::npos);
  EXPECT_EQ(src.find("switch"), std::string::npos);
}

TEST(CodegenTest, CsvRejectsBadSpecs) {
  AccessPathSpec spec = CsvSeqSpec();
  spec.outputs.clear();
  EXPECT_FALSE(GenerateCsvScanSource(spec).ok());
  spec = CsvSeqSpec();
  spec.outputs = {{2, DataType::kInt32}, {0, DataType::kInt32}};  // unsorted
  EXPECT_FALSE(GenerateCsvScanSource(spec).ok());
  spec = CsvSeqSpec();
  spec.mode = ScanMode::kByRowIndex;
  EXPECT_FALSE(GenerateCsvScanSource(spec).ok());
  // By-position left of anchor is unreachable.
  spec = CsvSeqSpec();
  spec.mode = ScanMode::kByPosition;
  spec.anchor_column = 1;
  EXPECT_FALSE(GenerateCsvScanSource(spec).ok());
}

TEST(CodegenTest, BinarySourceHardCodesOffsets) {
  AccessPathSpec spec;
  spec.format = FileFormat::kBinary;
  spec.mode = ScanMode::kSequential;
  spec.outputs = {{1, DataType::kInt64}};
  spec.row_width = 20;
  spec.column_offsets = {4};
  ASSERT_OK_AND_ASSIGN(std::string src, GenerateBinScanSource(spec));
  EXPECT_NE(src.find("20ull"), std::string::npos);
  EXPECT_NE(src.find("4ull"), std::string::npos);
}

TEST(CodegenTest, BinaryValidatesSpec) {
  AccessPathSpec spec;
  spec.format = FileFormat::kBinary;
  spec.outputs = {{1, DataType::kInt64}};
  spec.row_width = 0;  // missing
  spec.column_offsets = {4};
  EXPECT_FALSE(GenerateBinScanSource(spec).ok());
  spec.row_width = 20;
  spec.column_offsets = {};  // not parallel
  EXPECT_FALSE(GenerateBinScanSource(spec).ok());
}

TEST(CodegenTest, RefSourceCallsApi) {
  AccessPathSpec spec;
  spec.format = FileFormat::kRef;
  spec.mode = ScanMode::kByRowIndex;
  spec.outputs = {{3, DataType::kFloat32}};
  ASSERT_OK_AND_ASSIGN(std::string src, GenerateRefScanSource(spec));
  EXPECT_NE(src.find("ctx->ref.read_range"), std::string::npos);
}

TEST(CacheKeyTest, DistinguishesSpecs) {
  AccessPathSpec a = CsvSeqSpec();
  AccessPathSpec b = CsvSeqSpec();
  EXPECT_EQ(a.CacheKey(), b.CacheKey());
  b.outputs[0].column = 1;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = CsvSeqSpec();
  b.pmap_tracked = {0};
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = CsvSeqSpec();
  b.mode = ScanMode::kByPosition;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

// --- compile & execute ----------------------------------------------------------

class JitExecTest : public testing::TempDirTest {
 protected:
  void SetUp() override {
    testing::TempDirTest::SetUp();
    // Codegen dispatches through the format registry even when driven
    // directly (no catalog to register the builtins for us).
    EnsureBuiltinFormatDriversRegistered();
    if (!cache_.compiler_available()) {
      GTEST_SKIP() << "no external C++ compiler on this host (probed '"
                   << cache_.compiler_options().cxx
                   << "'; set $RAW_JIT_CXX to point at a working compiler)";
    }
  }

  JitTemplateCache cache_;
};

TEST_F(JitExecTest, CompilesAndRunsCsvSequential) {
  // 3-column CSV: int,int,float
  std::string path = Path("t.csv");
  CsvWriter writer(path);
  ASSERT_OK(writer.Open());
  for (int i = 0; i < 1000; ++i) {
    writer.AppendInt32(i);
    writer.AppendInt32(-i * 3);
    writer.AppendFloat64(i * 0.5);
    writer.EndRow();
  }
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));

  AccessPathSpec spec;
  spec.format = FileFormat::kCsv;
  spec.mode = ScanMode::kSequential;
  spec.outputs = {{1, DataType::kInt32}, {2, DataType::kFloat64}};
  ASSERT_OK_AND_ASSIGN(CompiledKernel kernel, cache_.GetOrCompile(spec));
  EXPECT_GT(kernel.compile_seconds, 0);

  std::vector<int32_t> out1(1000);
  std::vector<double> out2(1000);
  std::vector<int64_t> row_ids(1000);
  void* outs[] = {out1.data(), out2.data()};
  RawJitContext ctx = {};
  ctx.file_data = file->data();
  ctx.file_size = file->size();
  ctx.max_rows = 1000;
  ctx.out_columns = outs;
  ctx.out_row_ids = row_ids.data();
  int64_t produced = kernel.entry(&ctx);
  ASSERT_EQ(produced, 1000);
  EXPECT_EQ(out1[7], -21);
  EXPECT_DOUBLE_EQ(out2[999], 499.5);
  EXPECT_EQ(row_ids[500], 500);
  // Second call: EOF.
  EXPECT_EQ(kernel.entry(&ctx), 0);
}

TEST_F(JitExecTest, TemplateCacheHitsSkipCompilation) {
  AccessPathSpec spec;
  spec.format = FileFormat::kBinary;
  spec.mode = ScanMode::kSequential;
  spec.outputs = {{0, DataType::kInt32}};
  spec.row_width = 4;
  spec.column_offsets = {0};
  ASSERT_OK_AND_ASSIGN(CompiledKernel first, cache_.GetOrCompile(spec));
  EXPECT_GT(first.compile_seconds, 0);
  ASSERT_OK_AND_ASSIGN(CompiledKernel second, cache_.GetOrCompile(spec));
  EXPECT_EQ(second.compile_seconds, 0);
  EXPECT_EQ(second.entry, first.entry);
  EXPECT_EQ(cache_.hits(), 1);
  EXPECT_EQ(cache_.misses(), 1);
}

TEST_F(JitExecTest, BinaryByRowIndexKernel) {
  // Write 100 rows of (int32, float64) binary.
  Schema schema{{"a", DataType::kInt32}, {"b", DataType::kFloat64}};
  std::string data;
  for (int32_t i = 0; i < 100; ++i) {
    double d = i * 1.5;
    data.append(reinterpret_cast<const char*>(&i), 4);
    data.append(reinterpret_cast<const char*>(&d), 8);
  }
  std::string path = Path("t.bin");
  ASSERT_OK(WriteStringToFile(path, data));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));

  AccessPathSpec spec;
  spec.format = FileFormat::kBinary;
  spec.mode = ScanMode::kByRowIndex;
  spec.outputs = {{1, DataType::kFloat64}};
  spec.row_width = 12;
  spec.column_offsets = {4};
  ASSERT_OK_AND_ASSIGN(CompiledKernel kernel, cache_.GetOrCompile(spec));

  std::vector<int64_t> wanted = {99, 0, 42};
  std::vector<double> out(3);
  std::vector<int64_t> row_ids(3);
  void* outs[] = {out.data()};
  RawJitContext ctx = {};
  ctx.file_data = file->data();
  ctx.file_size = file->size();
  ctx.max_rows = 3;
  ctx.out_columns = outs;
  ctx.out_row_ids = row_ids.data();
  ctx.in_row_ids = wanted.data();
  ctx.num_inputs = 3;
  ASSERT_EQ(kernel.entry(&ctx), 3);
  EXPECT_DOUBLE_EQ(out[0], 148.5);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 63.0);
  EXPECT_EQ(row_ids[2], 42);
}

TEST_F(JitExecTest, CsvByPositionKernelJumpsAndSkips) {
  // File: 5 int columns. Map tracks column 1; kernel reads columns 2 and 4
  // (skip 1 field to reach col2, then skip 1 more to reach col4).
  std::string path = Path("p.csv");
  CsvWriter writer(path);
  ASSERT_OK(writer.Open());
  for (int i = 0; i < 200; ++i) {
    for (int c = 0; c < 5; ++c) writer.AppendInt32(i * 10 + c);
    writer.EndRow();
  }
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));

  // Build positions of column 1 for every row by tokenizing.
  std::vector<uint64_t> col1_pos;
  {
    const char* p = file->data();
    const char* end = p + file->size();
    while (p < end) {
      const char* q = p;
      while (*q != ',') ++q;  // skip col0
      col1_pos.push_back(static_cast<uint64_t>(q + 1 - file->data()));
      const char* nl =
          static_cast<const char*>(memchr(p, '\n', static_cast<size_t>(end - p)));
      p = nl + 1;
    }
  }

  AccessPathSpec spec;
  spec.format = FileFormat::kCsv;
  spec.mode = ScanMode::kByPosition;
  spec.anchor_column = 1;
  spec.outputs = {{2, DataType::kInt32}, {4, DataType::kInt32}};
  ASSERT_OK_AND_ASSIGN(CompiledKernel kernel, cache_.GetOrCompile(spec));

  std::vector<int64_t> rows = {0, 7, 199, 42};
  std::vector<uint64_t> positions;
  for (int64_t r : rows) positions.push_back(col1_pos[static_cast<size_t>(r)]);
  std::vector<int32_t> out2(rows.size()), out4(rows.size());
  std::vector<int64_t> row_ids(rows.size());
  void* outs[] = {out2.data(), out4.data()};
  RawJitContext ctx = {};
  ctx.file_data = file->data();
  ctx.file_size = file->size();
  ctx.max_rows = static_cast<int64_t>(rows.size());
  ctx.out_columns = outs;
  ctx.out_row_ids = row_ids.data();
  ctx.in_row_ids = rows.data();
  ctx.in_positions = positions.data();
  ctx.num_inputs = static_cast<int64_t>(rows.size());
  ASSERT_EQ(kernel.entry(&ctx), 4);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out2[i], rows[i] * 10 + 2) << i;
    EXPECT_EQ(out4[i], rows[i] * 10 + 4) << i;
    EXPECT_EQ(row_ids[i], rows[i]);
  }
}

TEST_F(JitExecTest, NegativeAndFloatFieldsParseCorrectly) {
  std::string path = Path("neg.csv");
  CsvWriter writer(path);
  ASSERT_OK(writer.Open());
  writer.AppendInt32(-2147483647);
  writer.AppendFloat64(-0.5);
  writer.EndRow();
  writer.AppendInt32(0);
  writer.AppendFloat64(1e300);
  writer.EndRow();
  ASSERT_OK(writer.Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));

  AccessPathSpec spec;
  spec.format = FileFormat::kCsv;
  spec.mode = ScanMode::kSequential;
  spec.outputs = {{0, DataType::kInt32}, {1, DataType::kFloat64}};
  ASSERT_OK_AND_ASSIGN(CompiledKernel kernel, cache_.GetOrCompile(spec));
  std::vector<int32_t> ints(2);
  std::vector<double> floats(2);
  std::vector<int64_t> row_ids(2);
  void* outs[] = {ints.data(), floats.data()};
  RawJitContext ctx = {};
  ctx.file_data = file->data();
  ctx.file_size = file->size();
  ctx.max_rows = 2;
  ctx.out_columns = outs;
  ctx.out_row_ids = row_ids.data();
  ASSERT_EQ(kernel.entry(&ctx), 2);
  EXPECT_EQ(ints[0], -2147483647);
  EXPECT_DOUBLE_EQ(floats[0], -0.5);
  EXPECT_DOUBLE_EQ(floats[1], 1e300);
}

TEST_F(JitExecTest, CompileErrorSurfacesDiagnostics) {
  CcCompiler compiler;
  auto result = compiler.Compile("this is not C++", "bad");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("JIT compilation failed"),
            std::string_view::npos);
}

}  // namespace
}  // namespace raw
