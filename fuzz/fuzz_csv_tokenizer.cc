// Fuzz target: the CSV tokenizer and field parsers over arbitrary bytes.
//
// The tokenizer walks attacker-controlled mmap'd file contents byte by byte
// (quoted and unquoted paths), so the invariant under fuzzing is memory
// safety and termination: every input tokenizes to completion, every field
// view stays inside the buffer, and the numeric parsers return a typed
// Status for garbage instead of reading out of bounds.
//
// The first input byte selects the dialect (delimiter / header flag); the
// rest is the CSV buffer.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "csv/csv_options.h"
#include "csv/csv_tokenizer.h"
#include "csv/fast_parse.h"

namespace {

constexpr size_t kMaxInput = 1 << 16;
constexpr int64_t kMaxRows = 1 << 14;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  if (size > kMaxInput) size = kMaxInput;

  raw::CsvOptions options;
  const uint8_t dialect = data[0];
  options.delimiter = (dialect & 1) ? ';' : ',';
  if (dialect & 2) options.delimiter = '\t';
  options.has_header = (dialect & 4) != 0;

  const char* begin = reinterpret_cast<const char*>(data) + 1;
  const char* end = reinterpret_cast<const char*>(data) + size;

  // Row counting and header skip must terminate and stay in bounds.
  (void)raw::CountRows(begin, end, options);
  const uint64_t start = raw::DataStartOffset(begin, end, options);
  if (start > static_cast<uint64_t>(end - begin)) __builtin_trap();

  raw::CsvRowCursor cursor(begin, end, options);
  cursor.SeekTo(start);
  std::vector<raw::FieldRef> fields;
  int64_t rows = 0;
  while (!cursor.AtEnd() && rows < kMaxRows) {
    if (!cursor.NextRow(&fields).ok()) break;
    ++rows;
    for (const raw::FieldRef& f : fields) {
      // Views must stay inside the buffer.
      if (f.size < 0) __builtin_trap();
      if (f.size > 0 && (f.data < begin || f.data + f.size > end)) {
        __builtin_trap();
      }
      // Garbage must come back as a typed error, never a wild read.
      (void)raw::ParseInt32(f.data, f.size);
      (void)raw::ParseInt64(f.data, f.size);
      (void)raw::ParseFloat64(f.data, f.size);
      (void)raw::ParseBool(f.data, f.size);
    }
  }

  // The low-level quote-aware walk used by positional jumps.
  const char* p = begin;
  while (p < end) {
    const char* next =
        raw::SkipFieldQuoted(p, end, options.delimiter, options.quote);
    if (next <= p) {
      p = raw::SkipRowEnd(raw::RowEnd(p, end), end);
    } else {
      p = next;
    }
  }
  return 0;
}
