// Fuzz target: gzip member decompression and the member-cut logic.
//
// Three attack surfaces per input:
//   1. the raw bytes as a gzip member — header/deflate/trailer parsing of
//      arbitrary garbage must return a typed Status;
//   2. a valid member compressed from the input, truncated at a cut point
//      derived from the input — every cut (header, deflate data, the CRC32/
//      ISIZE trailer) must surface as DataCorruption, never a crash or an
//      unreported short result;
//   3. the same member with one bit flipped — the CRC/length validation must
//      hold the line when inflate itself doesn't notice.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "zcsv/gzip_block.h"

namespace {

constexpr size_t kMaxInput = 1 << 15;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) size = kMaxInput;
  const char* bytes = reinterpret_cast<const char*>(data);

  // 1. Arbitrary bytes straight into the member decoder.
  {
    std::string out;
    size_t consumed = 0;
    (void)raw::GunzipMember(bytes, size, &out, &consumed);
    if (consumed > size) __builtin_trap();
  }
  if (size == 0) return 0;

  // 2. Round-trip, then cut mid-member at an input-derived offset.
  std::string member;
  if (!raw::GzipCompressMember(std::string_view(bytes, size), &member).ok()) {
    return 0;
  }
  {
    const size_t cut = data[size - 1] % (member.size() + 1);
    std::string out;
    size_t consumed = 0;
    const raw::Status st =
        raw::GunzipMember(member.data(), cut, &out, &consumed);
    if (cut < member.size() && st.ok()) {
      // A truncated member must never decode as a clean success.
      __builtin_trap();
    }
  }

  // 3. Flip one bit; either inflate errors out or the trailer check does —
  // a clean success must reproduce the original bytes exactly.
  {
    std::string flipped = member;
    flipped[data[0] % flipped.size()] ^= char(0x40);
    std::string out;
    size_t consumed = 0;
    const raw::Status st =
        raw::GunzipMember(flipped.data(), flipped.size(), &out, &consumed);
    if (st.ok() && out != std::string_view(bytes, size)) __builtin_trap();
  }
  return 0;
}
