// Standalone driver for the fuzz harnesses when the toolchain has no
// libFuzzer (gcc, or clang without -fsanitize=fuzzer). Replays each file
// passed on the command line — the checked-in corpus in CI — through the
// harness entry point once, so the same fuzz_*.cc sources build and run
// everywhere; under clang the real libFuzzer engine links in instead and
// this file is not compiled.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const char* path, std::vector<uint8_t>* out) {
  FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  std::vector<uint8_t> input;
  for (int i = 1; i < argc; ++i) {
    if (!ReadFile(argv[i], &input)) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("replayed %d corpus inputs\n", argc - 1);
  return 0;
}
