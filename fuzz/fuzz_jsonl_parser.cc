// Fuzz target: the JSONL row parser over arbitrary bytes.
//
// JsonlRowParser::ParseRow walks attacker-controlled line content (flat JSON
// objects with a schema-keyed field match); the invariants are memory safety,
// termination, typed errors for structural garbage, and field views that
// never escape the input buffer. String escape decoding (including \uXXXX
// surrogate pairs) runs on every quoted field that parsed.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/schema.h"
#include "common/types.h"
#include "jsonl/jsonl_parser.h"

namespace {

constexpr size_t kMaxInput = 1 << 16;
constexpr int kMaxRows = 1 << 14;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) size = kMaxInput;
  const char* begin = reinterpret_cast<const char*>(data);
  const char* end = begin + size;

  static const raw::Schema* schema =
      new raw::Schema{{"a", raw::DataType::kInt32},
                      {"b", raw::DataType::kString},
                      {"c", raw::DataType::kFloat64}};
  static const raw::JsonlRowParser* parser = new raw::JsonlRowParser(*schema);

  (void)raw::CountJsonlRows(begin, end);

  raw::JsonlField fields[3];
  std::string unescaped;
  const char* p = begin;
  int rows = 0;
  while (p < end && rows < kMaxRows) {
    const char* before = p;
    const raw::Status st = parser->ParseRow(&p, end, begin, fields);
    if (st.ok()) {
      for (const raw::JsonlField& f : fields) {
        if (!f.present) continue;
        if (f.size < 0) __builtin_trap();
        if (f.size > 0 && (f.data < begin || f.data + f.size > end)) {
          __builtin_trap();
        }
        if (f.offset > static_cast<uint64_t>(size)) __builtin_trap();
        if (f.quoted && f.escaped) {
          // Escape decoding must reject bad escapes, not emit wild bytes.
          (void)raw::UnescapeJsonString(f.data, f.size, &unescaped);
        }
      }
    } else {
      // Structural failure: resynchronize at the next line, as the tolerant
      // scan policies do.
      while (p < end && *p != '\n') ++p;
      if (p < end) ++p;
    }
    if (p <= before) break;  // no forward progress — stop, don't spin
    ++rows;
  }

  // The scalar-value parser on the raw buffer head.
  raw::JsonlField value;
  const char* vp = begin;
  (void)raw::ParseJsonValue(&vp, end, &value);
  return 0;
}
