// Quickstart: query a CSV file in place — no loading step.
//
//   1. Write a small CSV file.
//   2. Register it with the engine (name + schema + format).
//   3. Run SQL; the engine generates a JIT access path for the file/query
//      combination (falling back to the interpreted scan without a host
//      compiler) and caches positional map + column shreds for next time.
//
// This example deliberately stays on the classic one-shot surface
// (engine.Query(...)): it is a thin shim over an engine-owned default
// session, kept as the backward-compatible quickstart path. See
// csv_analytics / multiformat_join for the session API (OpenSession,
// Prepare, streaming cursors, concurrent clients).

#include <cstdio>

#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "engine/raw_engine.h"

using raw::CsvWriter;
using raw::Datum;
using raw::DataType;
using raw::QueryResult;
using raw::RawEngine;
using raw::Schema;
using raw::TempDir;

int main() {
  // --- 1. a raw CSV file (id, city temperature readings) --------------------
  auto dir = TempDir::Create("raw_quickstart_");
  if (!dir.ok()) {
    fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }
  std::string path = dir->FilePath("readings.csv");
  {
    CsvWriter writer(path);
    if (!writer.Open().ok()) return 1;
    struct Reading {
      int id;
      const char* city;
      double celsius;
    } readings[] = {
        {1, "geneva", 12.5}, {2, "geneva", 14.0},  {3, "lausanne", 13.25},
        {4, "geneva", -2.0}, {5, "lausanne", 21.5}, {6, "zurich", 18.75},
    };
    for (const Reading& r : readings) {
      writer.AppendInt32(r.id);
      writer.AppendString(r.city);
      writer.AppendFloat64(r.celsius);
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  // --- 2. register the raw file ----------------------------------------------
  RawEngine engine;
  Schema schema{{"id", DataType::kInt32},
                {"city", DataType::kString},
                {"celsius", DataType::kFloat64}};
  if (auto st = engine.RegisterCsv("readings", path, schema); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- 3. query it in place ---------------------------------------------------
  const char* queries[] = {
      "SELECT COUNT(*) FROM readings",
      "SELECT MAX(celsius), MIN(celsius), AVG(celsius) FROM readings",
      "SELECT COUNT(*) FROM readings WHERE celsius > 13.0",
      "SELECT id, celsius FROM readings WHERE celsius > 13.0 LIMIT 3",
  };
  for (const char* sql : queries) {
    auto result = engine.Query(sql);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    printf("> %s\n%s\n", sql, result->table.ToString().c_str());
  }

  raw::EngineStats stats = engine.Stats();
  printf("adaptive state: %lld cached shred entries, %lld compiled kernels\n",
         static_cast<long long>(stats.shred_cache.entries),
         static_cast<long long>(stats.jit_cache.entries));
  return 0;
}
