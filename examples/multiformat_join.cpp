// multiformat_join: the headline capability of §1/§3 — transparently joining
// heterogeneous raw files in one query. An orders ledger lives in CSV, the
// same-keyed measurements table lives in the fixed-width binary format, a
// device inventory arrives as line-delimited JSON, and an archived readings
// log is gzip-compressed CSV. Every file sits behind the same pluggable
// FormatDriver interface ("csv", "bin", "jsonl", "csv.gz" — see
// docs/format-drivers.md), so RAW joins any of them without loading
// anything. Two concurrent sessions share the one engine: the positional
// maps, field-offset maps, block indexes and column shreds the first query
// materializes speed up whichever session runs next.

#include <cstdio>

#include <thread>
#include <vector>

#include "binfmt/binary_writer.h"
#include "common/rng.h"
#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "engine/raw_engine.h"
#include "jsonl/jsonl_writer.h"
#include "zcsv/gzip_block.h"

using namespace raw;

int main() {
  auto dir = TempDir::Create("raw_multiformat_");
  if (!dir.ok()) return 1;

  constexpr int kSensors = 500;
  constexpr int kReadings = 50000;
  Rng rng(2024);

  // --- CSV: sensor registry (sensor_id, zone, threshold) ----------------------
  Schema sensors_schema{{"sensor_id", DataType::kInt32},
                        {"zone", DataType::kInt32},
                        {"threshold", DataType::kFloat64}};
  std::string sensors_csv = dir->FilePath("sensors.csv");
  {
    CsvWriter writer(sensors_csv);
    if (!writer.Open().ok()) return 1;
    for (int s = 0; s < kSensors; ++s) {
      writer.AppendInt32(s);
      writer.AppendInt32(s % 16);
      writer.AppendFloat64(50.0 + rng.NextDouble(0, 25.0));
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  // --- binary: measurement log (sensor_id, value, tick) ------------------------
  Schema readings_schema{{"sensor_id", DataType::kInt32},
                         {"value", DataType::kFloat64},
                         {"tick", DataType::kInt64}};
  std::string readings_bin = dir->FilePath("readings.bin");
  {
    auto layout = BinaryLayout::Create(readings_schema);
    if (!layout.ok()) return 1;
    BinaryWriter writer(readings_bin, *layout);
    if (!writer.Open().ok()) return 1;
    for (int64_t i = 0; i < kReadings; ++i) {
      writer.AppendInt32(static_cast<int32_t>(rng.NextBelow(kSensors)));
      writer.AppendFloat64(rng.NextDouble(0, 100.0));
      writer.AppendInt64(i);
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  // --- JSONL: device inventory, one flat object per line ----------------------
  Schema devices_schema{{"sensor_id", DataType::kInt32},
                        {"model", DataType::kString},
                        {"firmware", DataType::kInt32}};
  std::string devices_jsonl = dir->FilePath("devices.jsonl");
  {
    JsonlWriter writer(devices_jsonl, devices_schema);
    if (!writer.Open().ok()) return 1;
    for (int s = 0; s < kSensors; ++s) {
      Status st = writer.AppendDatumRow(
          {Datum::Int32(s), Datum::String("model-" + std::to_string(s % 7)),
           Datum::Int32(100 + s % 4)});
      if (!st.ok()) return 1;
    }
    if (!writer.Close().ok()) return 1;
  }

  // --- csv.gz: archived readings, multi-member gzip-compressed CSV -------------
  std::string archive_gz = dir->FilePath("archive.csv.gz");
  {
    std::string text;
    for (int64_t i = 0; i < kReadings / 2; ++i) {
      text += std::to_string(rng.NextBelow(kSensors)) + "," +
              std::to_string(rng.NextDouble(0, 100.0)) + "," +
              std::to_string(-1 - i) + "\n";
    }
    // Small members so warm scans split into many block-parallel morsels.
    if (!WriteCsvGzFile(archive_gz, text, /*block_bytes=*/64 * 1024).ok()) {
      return 1;
    }
  }

  RawEngine engine;
  if (!engine.RegisterCsv("sensors", sensors_csv, sensors_schema).ok()) return 1;
  if (!engine.RegisterBinary("readings", readings_bin, readings_schema).ok()) {
    return 1;
  }
  if (!engine.RegisterJsonl("devices", devices_jsonl, devices_schema).ok()) {
    return 1;
  }
  if (!engine.RegisterCsvGz("archive", archive_gz, readings_schema).ok()) {
    return 1;
  }

  // Two clients, two sessions, one shared engine. Each session runs its own
  // queries on its own thread; adaptive state (maps, shreds, kernels) is
  // shared and synchronized inside the engine.
  std::vector<const char*> join_client = {
      // Cross-format join: binary fact table probes the CSV dimension.
      "SELECT COUNT(*) FROM readings JOIN sensors ON readings.sensor_id = "
      "sensors.sensor_id WHERE sensors.zone = 3",
      // JSONL dimension against the binary log.
      "SELECT COUNT(*) FROM readings JOIN devices ON readings.sensor_id = "
      "devices.sensor_id WHERE devices.firmware = 102",
      // Compressed archive probes the CSV dimension: cold scan builds the
      // gzip block index, so the second archive query is block-parallel.
      "SELECT COUNT(*) FROM archive JOIN sensors ON archive.sensor_id = "
      "sensors.sensor_id WHERE sensors.zone = 3",
      "SELECT MAX(archive.value) FROM archive JOIN sensors ON "
      "archive.sensor_id = sensors.sensor_id WHERE sensors.zone = 3",
  };
  std::vector<const char*> scan_client = {
      "SELECT COUNT(*) FROM sensors WHERE threshold > 70.0",
      "SELECT AVG(value) FROM readings WHERE sensor_id < 10",
      "SELECT COUNT(*) FROM devices WHERE firmware = 101",
  };

  struct Shown {
    std::string text;
  };
  std::vector<Shown> outputs(2);
  auto run_client = [&engine](const std::vector<const char*>& queries,
                              Shown* out) {
    std::unique_ptr<Session> session = engine.OpenSession();
    for (const char* sql : queries) {
      auto result = session->Query(sql);
      if (!result.ok()) {
        out->text += std::string("query failed: ") + sql + "\n" +
                     result.status().ToString() + "\n";
        return;
      }
      char timing[64];
      snprintf(timing, sizeof(timing), "  [%.1f ms]\n",
               result->total_seconds() * 1e3);
      out->text += std::string("\n> ") + sql + "\n" +
                   result->table.ToString(3) + timing;
    }
  };
  std::thread t1(run_client, join_client, &outputs[0]);
  std::thread t2(run_client, scan_client, &outputs[1]);
  t1.join();
  t2.join();
  for (const Shown& out : outputs) printf("%s", out.text.c_str());

  printf("\nJoined CSV, binary, JSONL and gzip-compressed CSV in place — no\n"
         "loading, four format drivers behind one interface, and two\n"
         "concurrent sessions sharing one engine's adaptive state.\n");
  return 0;
}
