// multiformat_join: the headline capability of §1/§3 — transparently joining
// heterogeneous raw files in one query. An orders ledger lives in CSV, the
// same-keyed measurements table lives in the fixed-width binary format, and
// RAW joins them without loading either. Two concurrent sessions share the
// one engine: the positional map and column shreds the first query
// materializes speed up whichever session runs next.

#include <cstdio>

#include <thread>
#include <vector>

#include "binfmt/binary_writer.h"
#include "common/rng.h"
#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "engine/raw_engine.h"

using namespace raw;

int main() {
  auto dir = TempDir::Create("raw_multiformat_");
  if (!dir.ok()) return 1;

  constexpr int kSensors = 500;
  constexpr int kReadings = 50000;
  Rng rng(2024);

  // --- CSV: sensor registry (sensor_id, zone, threshold) ----------------------
  Schema sensors_schema{{"sensor_id", DataType::kInt32},
                        {"zone", DataType::kInt32},
                        {"threshold", DataType::kFloat64}};
  std::string sensors_csv = dir->FilePath("sensors.csv");
  {
    CsvWriter writer(sensors_csv);
    if (!writer.Open().ok()) return 1;
    for (int s = 0; s < kSensors; ++s) {
      writer.AppendInt32(s);
      writer.AppendInt32(s % 16);
      writer.AppendFloat64(50.0 + rng.NextDouble(0, 25.0));
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  // --- binary: measurement log (sensor_id, value, tick) ------------------------
  Schema readings_schema{{"sensor_id", DataType::kInt32},
                         {"value", DataType::kFloat64},
                         {"tick", DataType::kInt64}};
  std::string readings_bin = dir->FilePath("readings.bin");
  {
    auto layout = BinaryLayout::Create(readings_schema);
    if (!layout.ok()) return 1;
    BinaryWriter writer(readings_bin, *layout);
    if (!writer.Open().ok()) return 1;
    for (int64_t i = 0; i < kReadings; ++i) {
      writer.AppendInt32(static_cast<int32_t>(rng.NextBelow(kSensors)));
      writer.AppendFloat64(rng.NextDouble(0, 100.0));
      writer.AppendInt64(i);
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  RawEngine engine;
  if (!engine.RegisterCsv("sensors", sensors_csv, sensors_schema).ok()) return 1;
  if (!engine.RegisterBinary("readings", readings_bin, readings_schema).ok()) {
    return 1;
  }

  // Two clients, two sessions, one shared engine. Each session runs its own
  // queries on its own thread; adaptive state (maps, shreds, kernels) is
  // shared and synchronized inside the engine.
  std::vector<const char*> join_client = {
      // Cross-format join: binary fact table probes the CSV dimension.
      "SELECT COUNT(*) FROM readings JOIN sensors ON readings.sensor_id = "
      "sensors.sensor_id WHERE sensors.zone = 3",
      // Aggregate over the joined pair.
      "SELECT MAX(readings.value) FROM readings JOIN sensors ON "
      "readings.sensor_id = sensors.sensor_id WHERE sensors.zone = 3",
  };
  std::vector<const char*> scan_client = {
      "SELECT COUNT(*) FROM sensors WHERE threshold > 70.0",
      "SELECT AVG(value) FROM readings WHERE sensor_id < 10",
  };

  struct Shown {
    std::string text;
  };
  std::vector<Shown> outputs(2);
  auto run_client = [&engine](const std::vector<const char*>& queries,
                              Shown* out) {
    std::unique_ptr<Session> session = engine.OpenSession();
    for (const char* sql : queries) {
      auto result = session->Query(sql);
      if (!result.ok()) {
        out->text += std::string("query failed: ") + sql + "\n" +
                     result.status().ToString() + "\n";
        return;
      }
      char timing[64];
      snprintf(timing, sizeof(timing), "  [%.1f ms]\n",
               result->total_seconds() * 1e3);
      out->text += std::string("\n> ") + sql + "\n" +
                   result->table.ToString(3) + timing;
    }
  };
  std::thread t1(run_client, join_client, &outputs[0]);
  std::thread t2(run_client, scan_client, &outputs[1]);
  t1.join();
  t2.join();
  for (const Shown& out : outputs) printf("%s", out.text.c_str());

  printf("\nJoined a CSV dimension with a binary fact table in place — no\n"
         "loading, two JIT access paths in one plan, and two concurrent\n"
         "sessions sharing one engine's adaptive state.\n");
  return 0;
}
