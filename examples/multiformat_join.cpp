// multiformat_join: the headline capability of §1/§3 — transparently joining
// heterogeneous raw files in one query. An orders ledger lives in CSV, the
// same-keyed measurements table lives in the fixed-width binary format, and
// RAW joins them without loading either.

#include <cstdio>

#include "binfmt/binary_writer.h"
#include "common/rng.h"
#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "engine/raw_engine.h"

using namespace raw;

int main() {
  auto dir = TempDir::Create("raw_multiformat_");
  if (!dir.ok()) return 1;

  constexpr int kSensors = 500;
  constexpr int kReadings = 50000;
  Rng rng(2024);

  // --- CSV: sensor registry (sensor_id, zone, threshold) ----------------------
  Schema sensors_schema{{"sensor_id", DataType::kInt32},
                        {"zone", DataType::kInt32},
                        {"threshold", DataType::kFloat64}};
  std::string sensors_csv = dir->FilePath("sensors.csv");
  {
    CsvWriter writer(sensors_csv);
    if (!writer.Open().ok()) return 1;
    for (int s = 0; s < kSensors; ++s) {
      writer.AppendInt32(s);
      writer.AppendInt32(s % 16);
      writer.AppendFloat64(50.0 + rng.NextDouble(0, 25.0));
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  // --- binary: measurement log (sensor_id, value, tick) ------------------------
  Schema readings_schema{{"sensor_id", DataType::kInt32},
                         {"value", DataType::kFloat64},
                         {"tick", DataType::kInt64}};
  std::string readings_bin = dir->FilePath("readings.bin");
  {
    auto layout = BinaryLayout::Create(readings_schema);
    if (!layout.ok()) return 1;
    BinaryWriter writer(readings_bin, *layout);
    if (!writer.Open().ok()) return 1;
    for (int64_t i = 0; i < kReadings; ++i) {
      writer.AppendInt32(static_cast<int32_t>(rng.NextBelow(kSensors)));
      writer.AppendFloat64(rng.NextDouble(0, 100.0));
      writer.AppendInt64(i);
      writer.EndRow();
    }
    if (!writer.Close().ok()) return 1;
  }

  RawEngine engine;
  if (!engine.RegisterCsv("sensors", sensors_csv, sensors_schema).ok()) return 1;
  if (!engine.RegisterBinary("readings", readings_bin, readings_schema).ok()) {
    return 1;
  }

  const char* queries[] = {
      // Cross-format join: binary fact table probes the CSV dimension.
      "SELECT COUNT(*) FROM readings JOIN sensors ON readings.sensor_id = "
      "sensors.sensor_id WHERE sensors.zone = 3",
      // Aggregate over the joined pair.
      "SELECT MAX(readings.value) FROM readings JOIN sensors ON "
      "readings.sensor_id = sensors.sensor_id WHERE sensors.zone = 3",
      // Single-format sanity queries.
      "SELECT COUNT(*) FROM sensors WHERE threshold > 70.0",
      "SELECT AVG(value) FROM readings WHERE sensor_id < 10",
  };
  for (const char* sql : queries) {
    auto result = engine.Query(sql);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n%s\n", sql,
              result.status().ToString().c_str());
      return 1;
    }
    printf("\n> %s\n%s  [%.1f ms]\n", sql, result->table.ToString(3).c_str(),
           result->total_seconds() * 1e3);
  }
  printf("\nJoined a CSV dimension with a binary fact table in place — no\n"
         "loading, two different JIT access paths in one plan.\n");
  return 0;
}
