// csv_analytics: interactive-style exploration of a TPC-H-flavoured lineitem
// CSV, showing how RAW *adapts* across a query session:
//   query 1 pays the raw-file scan and builds the positional map;
//   later queries reuse cached column shreds and the map, approaching
//   loaded-DBMS latency with zero loading step.

#include <cstdio>

#include "common/string_util.h"
#include "common/temp_dir.h"
#include "engine/raw_engine.h"
#include "workload/lineitem_gen.h"

using namespace raw;

int main() {
  auto dir = TempDir::Create("raw_csv_analytics_");
  if (!dir.ok()) return 1;
  std::string path = dir->FilePath("lineitem.csv");
  LineitemGenOptions gen;
  gen.rows = 200000;
  if (auto st = WriteLineitemCsv(path, gen); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  printf("generated %lld lineitem rows at %s\n",
         static_cast<long long>(gen.rows), path.c_str());

  RawEngine engine;
  if (auto st = engine.RegisterCsv("lineitem", path, LineitemSchema());
      !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const char* session[] = {
      // Pricing-summary-flavoured aggregates (TPC-H Q1 spirit).
      "SELECT COUNT(*), SUM(l_quantity), AVG(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate < 10200",
      // Re-filtered: reuses the cached l_shipdate column.
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate < 9500",
      // New column enters the working set as a shred.
      "SELECT MAX(l_discount) FROM lineitem WHERE l_quantity > 45",
      // High-selectivity drill-down.
      "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE "
      "l_extendedprice > 100000.0 LIMIT 5",
  };

  for (const char* sql : session) {
    auto result = engine.Query(sql);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n%s\n", sql,
              result.status().ToString().c_str());
      return 1;
    }
    printf("\n> %s\n", sql);
    printf("%s", result->table.ToString(5).c_str());
    printf("  [%.1f ms total, %.1f ms JIT compile, plan: %s]\n",
           result->total_seconds() * 1e3, result->compile_seconds * 1e3,
           result->plan_description.c_str());
  }

  printf("\nsession state: shred cache %s in %lld entries; %lld kernels; "
         "cache hits %lld\n",
         HumanBytes(static_cast<uint64_t>(engine.shred_cache()->bytes_cached()))
             .c_str(),
         static_cast<long long>(engine.shred_cache()->num_entries()),
         static_cast<long long>(engine.jit_cache()->size()),
         static_cast<long long>(engine.shred_cache()->hits()));
  return 0;
}
