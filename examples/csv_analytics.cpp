// csv_analytics: interactive-style exploration of a TPC-H-flavoured lineitem
// CSV through the session API, showing how RAW *adapts* across a client
// session:
//   query 1 pays the raw-file scan and builds the positional map;
//   later queries reuse cached column shreds and the map, approaching
//   loaded-DBMS latency with zero loading step;
//   a prepared statement re-executes with new parameters without
//   re-parsing, and a streaming cursor drains a drill-down incrementally.

#include <cstdio>

#include "common/string_util.h"
#include "common/temp_dir.h"
#include "engine/raw_engine.h"
#include "workload/lineitem_gen.h"

using namespace raw;

int main() {
  auto dir = TempDir::Create("raw_csv_analytics_");
  if (!dir.ok()) return 1;
  std::string path = dir->FilePath("lineitem.csv");
  LineitemGenOptions gen;
  gen.rows = 200000;
  if (auto st = WriteLineitemCsv(path, gen); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  printf("generated %lld lineitem rows at %s\n",
         static_cast<long long>(gen.rows), path.c_str());

  RawEngine engine;
  if (auto st = engine.RegisterCsv("lineitem", path, LineitemSchema());
      !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // One session per client; the engine behind it is shared and thread-safe.
  std::unique_ptr<Session> session = engine.OpenSession();

  const char* queries[] = {
      // Pricing-summary-flavoured aggregates (TPC-H Q1 spirit).
      "SELECT COUNT(*), SUM(l_quantity), AVG(l_extendedprice) FROM lineitem "
      "WHERE l_shipdate < 10200",
      // Re-filtered: reuses the cached l_shipdate column.
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate < 9500",
      // New column enters the working set as a shred.
      "SELECT MAX(l_discount) FROM lineitem WHERE l_quantity > 45",
  };

  for (const char* sql : queries) {
    auto result = session->Query(sql);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n%s\n", sql,
              result.status().ToString().c_str());
      return 1;
    }
    printf("\n> %s\n", sql);
    printf("%s", result->table.ToString(5).c_str());
    printf("  [%.1f ms total, %.1f ms JIT compile, plan: %s]\n",
           result->total_seconds() * 1e3, result->compile_seconds * 1e3,
           result->plan_description.c_str());
  }

  // Prepared statement: parsed + bound once, re-executed with fresh `?`
  // values (no re-parse — check EngineStats::queries_parsed).
  auto prepared = session->Prepare(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate < ?");
  if (!prepared.ok()) {
    fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  printf("\n> prepared: SELECT COUNT(*) FROM lineitem WHERE l_shipdate < ?\n");
  for (int64_t ship_date : {9000, 9800, 10400}) {
    auto result = prepared->Execute({Datum::Int64(ship_date)});
    if (!result.ok()) {
      fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    printf("  ? = %-6lld -> %s rows in %.1f ms\n",
           static_cast<long long>(ship_date),
           (*result->Scalar()).ToString().c_str(),
           result->total_seconds() * 1e3);
  }

  // Streaming cursor: the drill-down arrives batch by batch instead of one
  // materialized table (bound memory for arbitrarily large results).
  auto cursor = session->Stream(
      "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE "
      "l_extendedprice > 90000.0");
  if (!cursor.ok()) {
    fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
    return 1;
  }
  printf("\n> streaming: l_extendedprice > 90000.0\n");
  int64_t streamed = 0;
  int batches = 0;
  while (true) {
    auto batch = cursor->Next();
    if (!batch.ok()) {
      fprintf(stderr, "%s\n", batch.status().ToString().c_str());
      return 1;
    }
    if (batch->empty()) break;
    streamed += batch->num_rows();
    ++batches;
  }
  printf("  %lld matching rows streamed in %d batches\n",
         static_cast<long long>(streamed), batches);

  const raw::EngineStats stats = engine.Stats();
  printf("\nsession state: shred cache %s in %lld entries; %lld kernels; "
         "cache hits %lld\n",
         HumanBytes(static_cast<uint64_t>(stats.shred_cache.bytes)).c_str(),
         static_cast<long long>(stats.shred_cache.entries),
         static_cast<long long>(stats.jit_cache.entries),
         static_cast<long long>(stats.shred_cache.hits));
  return 0;
}
