// higgs_analysis: the paper's §6 use case end-to-end on synthetic REF event
// files — declarative queries over nested event data plus the two-system
// comparison (hand-written C++ loop vs RAW) on a small dataset.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/temp_dir.h"
#include "engine/raw_engine.h"
#include "eventsim/event_generator.h"
#include "workload/higgs.h"

using namespace raw;

int main() {
  auto dir = TempDir::Create("raw_higgs_");
  if (!dir.ok()) return 1;

  // Generate two small "ATLAS" files + the good-runs CSV.
  std::vector<std::string> files;
  EventGenOptions options;
  options.num_events = 20000;
  for (int f = 0; f < 2; ++f) {
    options.seed = 500 + static_cast<uint64_t>(f);
    std::string path = dir->FilePath("atlas_" + std::to_string(f) + ".ref");
    if (!WriteRefFile(path, options).ok()) return 1;
    files.push_back(path);
  }
  std::string runs_csv = dir->FilePath("good_runs.csv");
  if (!WriteGoodRunsCsv(runs_csv, options).ok()) return 1;
  printf("generated %zu REF files x %lld events + good-runs CSV\n",
         files.size(), static_cast<long long>(options.num_events));

  // --- declarative exploration over the nested data ---------------------------
  RawEngine engine;
  if (!engine.RegisterRef("atlas", files[0]).ok()) return 1;
  if (!engine
           .RegisterCsv("good_runs", runs_csv,
                        Schema{{"run", DataType::kInt32}})
           .ok()) {
    return 1;
  }
  std::unique_ptr<Session> session = engine.OpenSession();
  const char* queries[] = {
      "SELECT COUNT(*) FROM atlas_events",
      "SELECT COUNT(*) FROM atlas_muons WHERE pt > 22.0",
      "SELECT MAX(pt) FROM atlas_jets WHERE eta < 2.4 AND eta > -2.4",
      // Multi-format join: events vs the good-runs CSV.
      "SELECT COUNT(*) FROM atlas_events JOIN good_runs ON "
      "atlas_events.runNumber = good_runs.run",
      // Per-event muon multiplicities (first few).
      "SELECT eventID, COUNT(*) FROM atlas_muons WHERE pt > 22.0 "
      "GROUP BY eventID LIMIT 5",
  };
  for (const char* sql : queries) {
    auto result = session->Query(sql);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n%s\n", sql,
              result.status().ToString().c_str());
      return 1;
    }
    printf("\n> %s\n%s", sql, result->table.ToString(5).c_str());
  }

  // --- the Table-3 comparison on this small dataset ----------------------------
  printf("\n--- hand-written C++ vs RAW (cold/warm) ---\n");
  HiggsCuts cuts;
  HandwrittenHiggsAnalysis handwritten(files, runs_csv, cuts);
  RawHiggsAnalysis raw_analysis(files, runs_csv, cuts);

  Stopwatch watch;
  auto hw_cold = handwritten.Run();
  double hw_cold_s = watch.ElapsedSeconds();
  watch.Restart();
  auto hw_warm = handwritten.Run();
  double hw_warm_s = watch.ElapsedSeconds();
  watch.Restart();
  auto raw_cold = raw_analysis.Run();
  double raw_cold_s = watch.ElapsedSeconds();
  watch.Restart();
  auto raw_warm = raw_analysis.Run();
  double raw_warm_s = watch.ElapsedSeconds();
  if (!hw_cold.ok() || !raw_cold.ok() || !hw_warm.ok() || !raw_warm.ok()) {
    fprintf(stderr, "analysis failed\n");
    return 1;
  }
  if (!(*hw_cold == *raw_cold)) {
    fprintf(stderr, "systems disagree!\n");
    return 1;
  }
  printf("candidates: %lld / %lld events\n",
         static_cast<long long>(hw_cold->candidates),
         static_cast<long long>(hw_cold->events_scanned));
  printf("hand-written  cold %7.3fs   warm %7.3fs\n", hw_cold_s, hw_warm_s);
  printf("RAW           cold %7.3fs   warm %7.3fs   (warm speedup %.0fx)\n",
         raw_cold_s, raw_warm_s, hw_warm_s / raw_warm_s);
  return 0;
}
