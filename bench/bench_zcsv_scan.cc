// Compressed-CSV scans through the pluggable format driver: the same D30
// data as Figures 1a/1b, stored as multi-member gzip.
//   Q1 (cold):  SELECT MAX(col0)  FROM t WHERE col0 < X — serial streaming
//               decompress that builds the block-offset index en route.
//   Q2 (warm):  SELECT MAX(col10) FROM t WHERE col0 < X — decompresses only
//               assigned blocks, morsel-parallel across gzip members.
// Expect: cold dominated by serial inflate; warm scales with threads
// (compare RAW_NUM_THREADS=1 vs =4) because each morsel inflates its own
// blocks independently.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

std::unique_ptr<RawEngine> ZcsvEngine(Dataset* dataset) {
  auto engine = std::make_unique<RawEngine>();
  std::string path = CheckOk(dataset->D30CsvGz(), "D30 csv.gz");
  CheckOk(engine->RegisterCsvGz("t", path, dataset->D30Spec().ToSchema()),
          "register csv.gz");
  return engine;
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Compressed-CSV scans — cold (index build) vs warm "
             "(block-parallel)");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("series", sels);

  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;

  std::vector<double> cold;
  std::vector<double> warm;
  bool printed_plan = false;
  for (double sel : sels) {
    auto engine = ZcsvEngine(&dataset);
    auto session = engine->OpenSession();
    cold.push_back(TimedQuery(session.get(), Q1(&dataset, sel), options));
    warm.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
    if (!printed_plan) {
      // Show that the warm scan really is block-parallel over the index
      // (shred cache off, else the plan shortcuts to cached columns).
      PlannerOptions scan_only = options;
      scan_only.use_shred_cache = false;
      QueryResult warm_plan =
          CheckOk(session->Query(Q2(&dataset, sel), scan_only), "warm plan");
      printf("warm plan: %s\n", warm_plan.plan_description.c_str());
      printed_plan = true;
    }
  }
  PrintSeriesRow("Zcsv-cold", cold, sels);
  PrintSeriesRow("Zcsv-warm", warm, sels);

  printf("\nExpect: cold is serial inflate-bound; warm decompresses only\n"
         "assigned blocks and scales with RAW_NUM_THREADS.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
