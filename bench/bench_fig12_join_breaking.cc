// Figure 12: join with the projected column on the build
// ("pipeline-breaking") side.
//   SELECT MAX(f2.col10) FROM f1 JOIN f2 ON f1.col0 = f2.col0
//   WHERE f2.col1 < X
// The join shuffles build-side provenance, so a Late fetch of f2.col10 reads
// the raw file at random positions. Compared: Early / Intermediate (after
// f2's filter, before the join) / Late / DBMS.
// Paper result: Late degrades as selectivity grows (random access overrides
// the benefit of fetching fewer values); Intermediate sits between; Early is
// stable.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

std::unique_ptr<RawEngine> JoinEngine(Dataset* dataset) {
  auto engine = std::make_unique<RawEngine>();
  TableSpec spec = dataset->D30Spec();
  std::string f1 = CheckOk(dataset->D30Csv(), "f1");
  std::string f2 = CheckOk(dataset->D30CsvShuffled(), "f2");
  CheckOk(engine->RegisterCsv("f1", f1, spec.ToSchema(), CsvOptions(), 10),
          "f1");
  CheckOk(engine->RegisterCsv("f2", f2, spec.ToSchema(), CsvOptions(), 10),
          "f2");
  return engine;
}

void Prime(Session* session, PlannerOptions options) {
  options.shred_policy = ShredPolicy::kFullColumns;
  TimedQuery(session, "SELECT COUNT(*) FROM f1 WHERE col0 >= 0", options);
  TimedQuery(session,
             "SELECT COUNT(*) FROM f2 WHERE col0 >= 0 AND col1 >= 0", options);
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  TableSpec spec = dataset.D30Spec();
  PrintTitle("Figure 12 — join, projected column on the breaking side");
  printf("rows=%lld per file\n", static_cast<long long>(dataset.d30_rows()));
  PrintSeriesHeader("placement", sels);

  struct Row {
    std::string name;
    AccessPathKind access;
    JoinProjectionPlacement placement;
  } systems[] = {
      {"Early", AccessPathKind::kJit, JoinProjectionPlacement::kEarly},
      {"Intermediate", AccessPathKind::kJit,
       JoinProjectionPlacement::kIntermediate},
      {"Late", AccessPathKind::kJit, JoinProjectionPlacement::kLate},
      {"DBMS", AccessPathKind::kLoaded, JoinProjectionPlacement::kEarly},
  };
  for (const Row& system : systems) {
    std::vector<double> row;
    for (double sel : sels) {
      auto engine = JoinEngine(&dataset);
      auto session = engine->OpenSession();
      PlannerOptions options;
      options.access_path = system.access;
      if (system.access == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        options.access_path = AccessPathKind::kInSitu;
      }
      options.join_placement = system.placement;
      // Prime every system (DBMS included: loading happens here, matching
      // the paper's already-loaded reference).
      Prime(session.get(), options);
      Datum lit = spec.SelectivityLiteral(1, sel);
      std::string q =
          "SELECT MAX(f2.col10) FROM f1 JOIN f2 ON f1.col0 = f2.col0 WHERE "
          "f2.col1 < " +
          lit.ToString();
      row.push_back(TimedQuery(session.get(), q, options));
    }
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: Late wins only at low selectivity, then degrades below\n"
         "Early (random raw-file access); Intermediate in between (Fig 12).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
