// Figure 1a: first query over a cold CSV file.
//   SELECT MAX(col0) FROM t WHERE col0 < X     (paper: MAX(col1), col1 < X)
// Paper result: DBMS ≈ ExternalTables > InSitu ≈ JIT; I/O masks most of the
// difference; JIT additionally pays ~2s of (template-cached) compilation.

#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  PrintTitle("Figure 1a — CSV, 1st query, cold file cache");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q1(&dataset, 0.5).c_str());

  for (const SystemConfig& system : AccessPathSystems(/*include_external=*/true)) {
    auto engine = D30CsvEngine(&dataset, system.pmap_stride);
    auto session = engine->OpenSession();
    if (system.options.access_path == AccessPathKind::kJit &&
        !engine->Stats().jit_compiler_available()) {
      printf("%-28s (skipped: no compiler)\n", system.name.c_str());
      continue;
    }
    // Best-effort cold: drop this file's pages from the OS cache.
    CheckOk(engine->DropFilePageCache("t"), "drop cache");
    double compile = 0;
    Stopwatch watch;
    double query_seconds =
        TimedQuery(session.get(), Q1(&dataset, 0.5), system.options, &compile);
    double wall = watch.ElapsedSeconds();
    printf("%-28s %9.3fs   (query %.3fs + JIT compile %.3fs)\n",
           system.name.c_str(), wall, query_seconds, compile);
    RecordJson(system.name, wall);
  }
  printf("\nExpect: DBMS/ExternalTables slowest (full load/convert); InSitu\n"
         "and JIT close (fewer conversions); JIT pays one-off compilation.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
