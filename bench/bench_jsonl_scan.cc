// JSONL scans through the pluggable format driver: the same D30 data as
// Figures 1a/1b, read as line-delimited JSON.
//   Q1 (cold):  SELECT MAX(col0)  FROM t WHERE col0 < X — full parse, builds
//               the field-offset map (the JSON generalization of the CSV
//               positional map).
//   Q2 (warm):  SELECT MAX(col10) FROM t WHERE col0 < X — jumps straight to
//               mapped value offsets.
// Expect: cold JSONL slower than cold CSV (key matching + escape handling);
// the warm/cold gap mirrors the CSV positional-map speedup.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

std::unique_ptr<RawEngine> JsonlEngine(Dataset* dataset) {
  auto engine = std::make_unique<RawEngine>();
  std::string path = CheckOk(dataset->D30Jsonl(), "D30 jsonl");
  CheckOk(engine->RegisterJsonl("t", path, dataset->D30Spec().ToSchema()),
          "register jsonl");
  return engine;
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("JSONL scans — cold (field-offset map build) vs warm");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("series", sels);

  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;

  std::vector<double> cold;
  std::vector<double> warm;
  for (double sel : sels) {
    auto engine = JsonlEngine(&dataset);
    auto session = engine->OpenSession();
    cold.push_back(TimedQuery(session.get(), Q1(&dataset, sel), options));
    warm.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
  }
  PrintSeriesRow("Jsonl-cold", cold, sels);
  PrintSeriesRow("Jsonl-warm", warm, sels);

  printf("\nExpect: warm well under cold (offset map skips key matching);\n"
         "RAW_NUM_THREADS=1 vs =4 shows the byte-morsel parallel speedup.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
