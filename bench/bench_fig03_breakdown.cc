// Figure 3: breakdown of query execution costs, InSitu vs JIT, warm CSV,
// 40% selectivity, query SELECT MAX(col0) WHERE col0 < X.
//
// The interpreted scan attributes time to main-loop bookkeeping, tokenizing/
// parsing, data-type conversion and column building. The JIT kernel fuses
// the first three into generated code (reported as "kernel"); building the
// columnar output remains — the irreducible cost column shreds then attack.

#include "bench/bench_common.h"
#include "columnar/aggregate.h"
#include "columnar/filter.h"
#include "common/mmap_file.h"
#include "engine/formats/builtin.h"
#include "scan/insitu_csv_scan.h"
#include "scan/jit_scan.h"

namespace raw::bench {
namespace {

void PrintBreakdown(const char* name, const ScanProfile& profile) {
  double total = profile.total_seconds();
  printf("%-10s total=%7.3fs | main-loop %6.1f%% | parse %6.1f%% | "
         "convert %6.1f%% | build-cols %6.1f%% | fused-kernel %6.1f%%\n",
         name, total, 100 * profile.main_loop.total_seconds() / total,
         100 * profile.parsing.total_seconds() / total,
         100 * profile.conversion.total_seconds() / total,
         100 * profile.build_columns.total_seconds() / total,
         100 * profile.kernel.total_seconds() / total);
}

void Run() {
  EnsureBuiltinFormatDriversRegistered();  // JIT codegen needs the registry
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  PrintTitle("Figure 3 — cost breakdown of raw-data access (InSitu vs JIT)");
  TableSpec spec = dataset.D30Spec();
  std::string path = CheckOk(dataset.D30Csv(), "csv");
  std::unique_ptr<MmapFile> file = CheckOk(MmapFile::Open(path), "mmap");
  Datum lit = spec.SelectivityLiteral(0, 0.4);

  // Warm the page cache once.
  {
    CsvScanSpec warm;
    warm.file_schema = spec.ToSchema();
    warm.outputs = {0};
    InsituCsvScanOperator scan(file.get(), warm);
    CheckOk(CollectAll(&scan).status(), "warm-up");
  }

  // Interpreted scan with phase instrumentation.
  ScanProfile insitu_profile;
  {
    CsvScanSpec sspec;
    sspec.file_schema = spec.ToSchema();
    sspec.outputs = {0};
    sspec.profile = &insitu_profile;
    auto scan = std::make_unique<InsituCsvScanOperator>(file.get(), sspec);
    auto filter = std::make_unique<FilterOperator>(
        std::move(scan), Cmp(CompareOp::kLt, Col(0), Lit(lit)));
    std::vector<AggSpec> specs = {{AggKind::kMax, 0, "m"}};
    AggregateOperator agg(std::move(filter), specs);
    CheckOk(CollectAll(&agg).status(), "insitu pipeline");
  }
  PrintBreakdown("InSitu", insitu_profile);

  // JIT scan: fused kernel + host-side column building.
  JitTemplateCache cache;
  if (!cache.compiler_available()) {
    printf("JIT        (skipped: no compiler)\n");
    return;
  }
  ScanProfile jit_profile;
  {
    AccessPathSpec jspec;
    jspec.format = FileFormat::kCsv;
    jspec.mode = ScanMode::kSequential;
    jspec.outputs = {{0, DataType::kInt32}};
    JitScanArgs args;
    args.spec = jspec;
    args.output_schema = Schema{{"col0", DataType::kInt32}};
    args.file = file.get();
    args.profile = &jit_profile;
    auto scan = std::make_unique<JitScanOperator>(&cache, std::move(args));
    auto filter = std::make_unique<FilterOperator>(
        std::move(scan), Cmp(CompareOp::kLt, Col(0), Lit(lit)));
    std::vector<AggSpec> specs = {{AggKind::kMax, 0, "m"}};
    AggregateOperator agg(std::move(filter), specs);
    CheckOk(CollectAll(&agg).status(), "jit pipeline");
  }
  PrintBreakdown("JIT", jit_profile);
  printf("\nExpect: JIT total well below InSitu; InSitu dominated by parsing\n"
         "+ conversion + loop overhead; JIT leaves mostly fused-kernel time\n"
         "with column building as the remaining host cost (paper Fig. 3).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
