// rawd serving-tier load driver: latency under offered load, and what the
// admission controller's shedding buys when the offered rate exceeds what
// the engine can serve.
//
//   Phase 1 (windowed closed loop): N clients keep a window of pipelined
//     queries in flight — the saturation throughput of this machine/table/
//     query combination.
//   Phase 2 (open loop): senders put queries on the wire on schedule at
//     0.5x, 1x and 2x the measured saturation rate, regardless of how fast
//     answers come back (what external load looks like); a reader thread
//     per connection collects responses. We record p50/p99 latency of
//     answered queries and the shed fraction. At 2x the server must shed
//     (typed OVERLOADED fast-fails from the bounded admission queue) rather
//     than queueing without bound: p99 of the *answered* queries stays
//     bounded, and the sheds show up in EngineStats.
//   Phase 3 (fault loop): closed loop against a CSV table whose backing
//     file a toucher thread keeps churning (mtime bumps), so queries keep
//     re-opening and re-scanning the raw file instead of riding the mmap /
//     shred / result caches — with the fault injector failing a sample of
//     those re-opens and clients dropping + transparently reconnecting
//     their sockets. Records the answered-query error fraction and client
//     retry/reconnect counts so nightly diffs catch robustness-path
//     regressions.
//
// Knobs: RAW_BENCH_ROWS (table size), RAW_BENCH_SERVE_SECONDS (per-phase
// duration), RAW_BENCH_SERVE_CLIENTS (concurrent clients). Every datapoint
// also lands in $RAW_BENCH_JSON for the nightly diff.

#include <fcntl.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/fault_injector.h"
#include "common/temp_dir.h"
#include "csv/csv_writer.h"
#include "serve/client.h"
#include "serve/server.h"

namespace raw::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWindow = 8;  // pipelined requests per connection, phase 1

struct LoadResult {
  std::vector<double> latencies;  // answered queries only, seconds
  int64_t answered = 0;
  int64_t shed = 0;
  int64_t errors = 0;

  double Percentile(double p) const {
    if (latencies.empty()) return 0;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[idx];
  }
  int64_t offered() const { return answered + shed + errors; }
  double shed_fraction() const {
    return offered() > 0 ? static_cast<double>(shed) / offered() : 0;
  }
};

const char* kQuery = "SELECT COUNT(*), MAX(value) FROM readings"
                     " WHERE value > 10.0";

/// Windowed closed loop: each client keeps kWindow queries in flight and
/// sends a new one per answer. Returns the aggregate rate of *answered*
/// queries — the service capacity, not limited by per-request round trips
/// and not inflated by shed fast-fails.
double MeasureSaturation(int port, int clients, double seconds) {
  std::atomic<int64_t> done{0};
  std::vector<std::thread> threads;
  const auto end = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(seconds));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, port] {
      auto client = serve::RawClient::Connect("127.0.0.1", port);
      if (!client.ok() || !(*client)->Hello().ok()) return;
      uint64_t next_id = 1;
      int64_t in_flight = 0;
      for (; in_flight < kWindow; ++in_flight) {
        if (!(*client)->SendQuery(next_id++, kQuery).ok()) return;
      }
      while (in_flight > 0) {
        auto resp = (*client)->ReadResponse();
        if (!resp.ok()) return;
        --in_flight;
        // Sheds are responses but not service; only answered queries count
        // toward the saturation rate.
        if (!resp->overloaded && resp->status.ok()) done.fetch_add(1);
        if (Clock::now() < end) {
          if (!(*client)->SendQuery(next_id++, kQuery).ok()) return;
          ++in_flight;
        }
      }
      (*client)->Goodbye();
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(done.load()) / seconds;
}

/// Open loop: each connection's sender puts queries on the wire on schedule
/// at `qps / clients` whether or not earlier answers came back; a reader
/// thread matches responses (possibly out of order — sheds overtake running
/// queries) back to their send times.
LoadResult RunOpenLoop(int port, int clients, double qps, double seconds) {
  std::vector<LoadResult> per_thread(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c, port] {
      LoadResult& r = per_thread[static_cast<size_t>(c)];
      auto client_or = serve::RawClient::Connect("127.0.0.1", port);
      if (!client_or.ok() || !(*client_or)->Hello().ok()) return;
      serve::RawClient* client = client_or->get();
      const double interval = static_cast<double>(clients) / qps;
      const int64_t total = static_cast<int64_t>(seconds * qps / clients);
      // Send times indexed by request_id - 1; the sender writes slot i
      // strictly before the wire carries id i+1 back, so the reader's
      // access is ordered by the response itself.
      std::vector<Clock::time_point> sent(static_cast<size_t>(total));
      std::atomic<int64_t> sends_visible{0};

      std::thread reader([&] {
        for (int64_t got = 0; got < total; ++got) {
          auto resp = client->ReadResponse();
          if (!resp.ok()) break;  // sender aborted and closed the socket
          const int64_t slot =
              static_cast<int64_t>(resp->request_id) - 1;
          // The slot's send time is published before the query hits the
          // wire; acquire it before reading.
          while (sends_visible.load(std::memory_order_acquire) <= slot) {
            std::this_thread::yield();
          }
          const double latency =
              std::chrono::duration<double>(Clock::now() -
                                            sent[static_cast<size_t>(slot)])
                  .count();
          if (resp->overloaded) {
            ++r.shed;
          } else if (resp->status.ok()) {
            ++r.answered;
            r.latencies.push_back(latency);
          } else {
            ++r.errors;
          }
        }
      });

      const auto start = Clock::now();
      bool aborted = false;
      for (int64_t i = 0; i < total; ++i) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i * interval));
        std::this_thread::sleep_until(due);
        sent[static_cast<size_t>(i)] = Clock::now();
        sends_visible.store(i + 1, std::memory_order_release);
        if (!client->SendQuery(static_cast<uint64_t>(i) + 1, kQuery,
                               /*deadline_ms=*/10000)
                 .ok()) {
          aborted = true;
          break;
        }
      }
      if (aborted) client->Close();  // unblocks the reader's recv
      reader.join();
      if (!aborted) client->Goodbye();
    });
  }
  for (std::thread& t : threads) t.join();
  LoadResult merged;
  for (LoadResult& r : per_thread) {
    merged.answered += r.answered;
    merged.shed += r.shed;
    merged.errors += r.errors;
    merged.latencies.insert(merged.latencies.end(), r.latencies.begin(),
                            r.latencies.end());
  }
  return merged;
}

/// Phase 3 (fault loop): closed-loop clients against a table whose backing
/// file churns underneath them while the fault injector fails a sample of
/// the resulting re-opens. Injected faults come back as typed ERROR frames
/// (counted into the error fraction, never a dropped connection); every
/// kDropEvery-th query the client drops its own socket first, so the
/// transparent retry/reconnect/backoff path runs under load and its cost
/// lands in this phase's throughput.
struct FaultLoadResult {
  int64_t answered = 0;
  int64_t errors = 0;     // typed per-query error responses
  int64_t transport = 0;  // Query() failures after retries were exhausted
  int64_t retries = 0;
  int64_t reconnects = 0;

  int64_t total() const { return answered + errors + transport; }
  double error_fraction() const {
    return total() > 0 ? static_cast<double>(errors + transport) / total()
                       : 0;
  }
};

FaultLoadResult RunFaultLoop(int port, int clients, double seconds,
                             const char* query) {
  constexpr int64_t kDropEvery = 64;
  std::vector<FaultLoadResult> per_thread(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  const auto end = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(seconds));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c, port] {
      FaultLoadResult& r = per_thread[static_cast<size_t>(c)];
      serve::RawClientOptions copts;
      copts.max_retries = 2;
      copts.backoff_initial_ms = 1;
      copts.backoff_max_ms = 16;
      copts.jitter_seed = static_cast<uint64_t>(c) + 1;
      auto client = serve::RawClient::Connect("127.0.0.1", port, copts);
      if (!client.ok() || !(*client)->Hello().ok()) return;
      int64_t sent = 0;
      while (Clock::now() < end) {
        if (++sent % kDropEvery == 0) (*client)->Close();
        auto resp = (*client)->Query(query);
        if (!resp.ok()) {
          ++r.transport;
          if (!(*client)->connected()) break;
          continue;
        }
        if (resp->status.ok()) {
          ++r.answered;
        } else {
          ++r.errors;
        }
      }
      r.retries = (*client)->retries();
      r.reconnects = (*client)->reconnects();
      if ((*client)->connected()) (*client)->Goodbye();
    });
  }
  for (std::thread& t : threads) t.join();
  FaultLoadResult merged;
  for (const FaultLoadResult& r : per_thread) {
    merged.answered += r.answered;
    merged.errors += r.errors;
    merged.transport += r.transport;
    merged.retries += r.retries;
    merged.reconnects += r.reconnects;
  }
  return merged;
}

void Run() {
  const int64_t rows =
      GetEnvInt64("RAW_BENCH_ROWS", 200000, 1, int64_t{1} << 40);
  const int64_t phase_seconds =
      GetEnvInt64("RAW_BENCH_SERVE_SECONDS", 2, 1, 3600);
  const int clients = static_cast<int>(
      GetEnvInt64("RAW_BENCH_SERVE_CLIENTS", 4, 1, 256));

  PrintTitle("rawd load: latency vs offered QPS, shedding at overload");
  printf("rows=%lld  clients=%d  phase=%llds  query: %s\n",
         static_cast<long long>(rows), clients,
         static_cast<long long>(phase_seconds), kQuery);

  auto dir = CheckOk(TempDir::Create("bench_serve_"), "temp dir");
  const std::string path = dir.FilePath("readings.csv");
  {
    CsvWriter writer(path);
    CheckOk(writer.Open(), "open csv");
    for (int64_t i = 0; i < rows; ++i) {
      writer.AppendInt32(static_cast<int32_t>(i));
      writer.AppendFloat64(static_cast<double>(i % 997) * 0.5);
      writer.EndRow();
    }
    CheckOk(writer.Close(), "close csv");
  }
  RawEngine engine;
  Schema schema{{"id", DataType::kInt32}, {"value", DataType::kFloat64}};
  CheckOk(engine.RegisterCsv("readings", path, schema), "register");

  // A deliberately bounded serving tier: capacity scales with `clients`,
  // the queue is shallow (2 per client) so overload turns into typed sheds
  // within milliseconds instead of an ever-growing backlog.
  serve::ServerOptions options;
  options.admission.interactive.max_concurrent = clients;
  options.admission.num_workers = clients;
  options.admission.interactive.max_queued = 2 * clients;
  options.admission.max_total_queued = 2 * clients;
  serve::RawServer server(&engine, options);
  CheckOk(server.Start(), "server start");

  // Warm the adaptive caches so phase timings measure serving, not the
  // first-query positional-map build.
  {
    auto client = CheckOk(
        serve::RawClient::Connect("127.0.0.1", server.port()), "connect");
    CheckOk(client->Hello(), "hello");
    auto resp = CheckOk(client->Query(kQuery), "warmup query");
    CheckOk(resp.status, "warmup result");
    CheckOk(client->Goodbye(), "goodbye");
  }

  const double sat = MeasureSaturation(server.port(), clients,
                                       static_cast<double>(phase_seconds));
  printf("\nsaturation: %.0f qps (windowed closed loop, %d clients x %d in "
         "flight)\n",
         sat, clients, kWindow);
  RecordJson("serve/saturation-qps", sat);
  RecordJson("serve/saturation-query-seconds", sat > 0 ? 1.0 / sat : 0);

  printf("\n%-10s %10s %10s %10s %10s %10s\n", "load", "offered", "answered",
         "shed%", "p50", "p99");
  for (double factor : {0.5, 1.0, 2.0}) {
    const double qps = std::max(1.0, sat * factor);
    LoadResult r = RunOpenLoop(server.port(), clients, qps,
                               static_cast<double>(phase_seconds));
    char label[16];
    snprintf(label, sizeof(label), "%.1fx", factor);
    printf("%-10s %10lld %10lld %9.1f%% %9.4fs %9.4fs\n", label,
           static_cast<long long>(r.offered()),
           static_cast<long long>(r.answered), 100 * r.shed_fraction(),
           r.Percentile(0.5), r.Percentile(0.99));
    RecordJson(std::string("serve/p50@") + label, r.Percentile(0.5));
    RecordJson(std::string("serve/p99@") + label, r.Percentile(0.99));
    RecordJson(std::string("serve/shed-fraction@") + label,
               r.shed_fraction());
  }

  // Phase 3: the robustness path. Repeat scans of an unchanged file do no
  // raw I/O by design (mmap once, then positional maps and column shreds
  // absorb the rest), so sustained fault pressure needs file churn: a
  // toucher thread bumps the table file's mtime every few milliseconds,
  // each bump invalidates the mmap and every structure derived from it, and
  // the next query re-opens and re-scans the raw file — with the injector
  // failing a sample of those re-opens with EIO. The nightly diff on these
  // numbers catches both error-path perf regressions and retry storms.
  {
    const std::string hostile_path = dir.FilePath("hostile.csv");
    const int64_t hostile_rows = std::min<int64_t>(rows, 20000);
    {
      CsvWriter writer(hostile_path);
      CheckOk(writer.Open(), "open hostile csv");
      for (int64_t i = 0; i < hostile_rows; ++i) {
        writer.AppendInt32(static_cast<int32_t>(i));
        writer.AppendFloat64(static_cast<double>(i % 997) * 0.5);
        writer.EndRow();
      }
      CheckOk(writer.Close(), "close hostile csv");
    }
    CheckOk(engine.RegisterCsv("hostile", hostile_path, schema),
            "register hostile");
    const char* hostile_query =
        "SELECT COUNT(*), MAX(value) FROM hostile WHERE value > 10.0";
    {
      auto client = CheckOk(
          serve::RawClient::Connect("127.0.0.1", server.port()), "connect");
      CheckOk(client->Hello(), "hello");
      auto resp = CheckOk(client->Query(hostile_query), "hostile warmup");
      CheckOk(resp.status, "hostile warmup result");
      CheckOk(client->Goodbye(), "goodbye");
    }

    FaultSpec fault;
    std::string fault_err;
    if (!FaultInjector::ParseSpec("eio:path=hostile.csv,sample=0.1,seed=11",
                                  &fault, &fault_err)) {
      fprintf(stderr, "fault spec: %s\n", fault_err.c_str());
      exit(1);
    }
    FaultInjector::Global().Arm(fault);
    std::atomic<bool> stop_toucher{false};
    std::thread toucher([&] {
      while (!stop_toucher.load(std::memory_order_relaxed)) {
        ::utimensat(AT_FDCWD, hostile_path.c_str(), nullptr, 0);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    FaultLoadResult fr =
        RunFaultLoop(server.port(), clients, static_cast<double>(phase_seconds),
                     hostile_query);
    stop_toucher.store(true, std::memory_order_relaxed);
    toucher.join();
    FaultInjector::Global().Disarm();

    printf("\nfault loop (file churn every 5 ms, 10%% of re-opens fail EIO, "
           "retries=2, drop every 64th query):\n"
           "  answered=%lld typed-errors=%lld transport-failures=%lld "
           "error-fraction=%.3f%%\n"
           "  client retries=%lld reconnects=%lld  answered qps=%.0f\n",
           static_cast<long long>(fr.answered),
           static_cast<long long>(fr.errors),
           static_cast<long long>(fr.transport), 100 * fr.error_fraction(),
           static_cast<long long>(fr.retries),
           static_cast<long long>(fr.reconnects),
           static_cast<double>(fr.answered) /
               static_cast<double>(phase_seconds));
    RecordJson("serve/fault-error-fraction", fr.error_fraction());
    RecordJson("serve/fault-answered-qps",
               static_cast<double>(fr.answered) /
                   static_cast<double>(phase_seconds));
    RecordJson("serve/fault-client-retries", static_cast<double>(fr.retries));
    RecordJson("serve/fault-client-reconnects",
               static_cast<double>(fr.reconnects));
  }

  server.Shutdown();
  const EngineStats stats = engine.Stats();
  printf("\nadmission counters: admitted=%lld executed=%lld shed=%lld "
         "deadline_expired=%lld\n",
         static_cast<long long>(stats.admission.admitted),
         static_cast<long long>(stats.admission.executed),
         static_cast<long long>(stats.admission.shed),
         static_cast<long long>(stats.admission.deadline_expired));
  RecordJson("serve/total-shed", static_cast<double>(stats.admission.shed));
  printf("robustness counters: io_faults=%lld faults_injected=%lld\n",
         static_cast<long long>(stats.io_faults),
         static_cast<long long>(stats.faults_injected));

  printf("\nExpect: at 0.5x nothing sheds and p99 stays near the closed-loop\n"
         "latency; at 2x the bounded queue sheds the excess (typed\n"
         "OVERLOADED) instead of letting answered-query p99 blow up.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
