// Figure 5: full vs shredded columns, CSV, second query, selectivity sweep.
//   Q1 (warm-up): SELECT MAX(col0)  WHERE col0 < X
//   Q2 (timed):   SELECT MAX(col10) WHERE col0 < X
// Paper result: shreds always <= full (up to ~6x at low selectivity since
// only qualifying col10 elements are fetched); the Col7 variants pay
// incremental parsing; DBMS is flat.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Figure 5 — full vs shredded columns, CSV 2nd query");
  printf("rows=%lld  query: %s\n", static_cast<long long>(dataset.d30_rows()),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("system", sels);

  struct Row {
    std::string name;
    AccessPathKind access;
    ShredPolicy policy;
    int stride;
  } systems[] = {
      {"Full", AccessPathKind::kJit, ShredPolicy::kFullColumns, 10},
      {"Shreds", AccessPathKind::kJit, ShredPolicy::kShreds, 10},
      {"Full-Col7", AccessPathKind::kJit, ShredPolicy::kFullColumns, 7},
      {"Shreds-Col7", AccessPathKind::kJit, ShredPolicy::kShreds, 7},
      {"DBMS", AccessPathKind::kLoaded, ShredPolicy::kFullColumns, 10},
  };

  for (const Row& system : systems) {
    PlannerOptions options;
    options.access_path = system.access;
    options.shred_policy = system.policy;
    std::vector<double> row;
    bool skipped = false;
    for (double sel : sels) {
      auto engine = D30CsvEngine(&dataset, system.stride);
      auto session = engine->OpenSession();
      if (system.access == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        skipped = true;
        break;
      }
      TimedQuery(session.get(), Q1(&dataset, sel), options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
    }
    if (skipped) {
      printf("%-28s (skipped: no compiler)\n", system.name.c_str());
    } else {
      PrintSeriesRow(system.name, row, sels);
    }
  }
  printf("\nExpect: Shreds <= Full everywhere, converging at 100%%; Col7\n"
         "variants uniformly more expensive; DBMS flat.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
