// Ablation: generated vs interpreted scan kernels per format (§4.1 — the
// branch-elimination gains of unrolled, schema-aware generated code),
// isolated from the planner and caches.

#include <benchmark/benchmark.h>

#include "common/mmap_file.h"
#include "engine/formats/builtin.h"
#include "common/temp_dir.h"
#include "scan/insitu_bin_scan.h"
#include "scan/insitu_csv_scan.h"
#include "scan/jit_scan.h"
#include "workload/data_gen.h"

namespace raw {
namespace {

struct Fixture {
  TempDir dir;
  TableSpec spec;
  std::unique_ptr<MmapFile> csv;
  std::unique_ptr<BinaryReader> bin;
  JitTemplateCache cache;

  Fixture()
      : dir(std::move(*TempDir::Create("raw_ab_"))),
        spec(TableSpec::UniformInt32("a", 30, 200000, 3)) {
    EnsureBuiltinFormatDriversRegistered();  // JIT codegen needs the registry
    if (!WriteCsvFile(spec, dir.FilePath("a.csv")).ok()) abort();
    if (!WriteBinaryFile(spec, dir.FilePath("a.bin")).ok()) abort();
    csv = std::move(*MmapFile::Open(dir.FilePath("a.csv")));
    auto layout = BinaryLayout::Create(spec.ToSchema());
    bin = std::move(*BinaryReader::Open(dir.FilePath("a.bin"), *layout));
  }
};

Fixture& GetFixture() {
  static Fixture* kFixture = new Fixture();
  return *kFixture;
}

void BM_CsvInterpreted(benchmark::State& state) {
  Fixture& fx = GetFixture();
  for (auto _ : state) {
    CsvScanSpec spec;
    spec.file_schema = fx.spec.ToSchema();
    spec.outputs = {0, 10};
    InsituCsvScanOperator scan(fx.csv.get(), spec);
    auto out = CollectAll(&scan);
    if (!out.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * fx.spec.rows);
}
BENCHMARK(BM_CsvInterpreted)->Unit(benchmark::kMillisecond);

void BM_CsvJit(benchmark::State& state) {
  Fixture& fx = GetFixture();
  if (!fx.cache.compiler_available()) {
    state.SkipWithError("no compiler");
    return;
  }
  AccessPathSpec jspec;
  jspec.format = FileFormat::kCsv;
  jspec.mode = ScanMode::kSequential;
  jspec.outputs = {{0, DataType::kInt32}, {10, DataType::kInt32}};
  // Compile outside the timed region (template cache would anyway).
  if (!fx.cache.GetOrCompile(jspec).ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  for (auto _ : state) {
    JitScanArgs args;
    args.spec = jspec;
    args.output_schema =
        Schema{{"c0", DataType::kInt32}, {"c10", DataType::kInt32}};
    args.file = fx.csv.get();
    JitScanOperator scan(&fx.cache, std::move(args));
    auto out = CollectAll(&scan);
    if (!out.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * fx.spec.rows);
}
BENCHMARK(BM_CsvJit)->Unit(benchmark::kMillisecond);

void BM_BinInterpreted(benchmark::State& state) {
  Fixture& fx = GetFixture();
  for (auto _ : state) {
    BinScanSpec spec;
    spec.outputs = {0, 10};
    InsituBinScanOperator scan(fx.bin.get(), spec);
    auto out = CollectAll(&scan);
    if (!out.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * fx.spec.rows);
}
BENCHMARK(BM_BinInterpreted)->Unit(benchmark::kMillisecond);

void BM_BinJit(benchmark::State& state) {
  Fixture& fx = GetFixture();
  if (!fx.cache.compiler_available()) {
    state.SkipWithError("no compiler");
    return;
  }
  auto layout = BinaryLayout::Create(fx.spec.ToSchema());
  AccessPathSpec jspec;
  jspec.format = FileFormat::kBinary;
  jspec.mode = ScanMode::kSequential;
  jspec.row_width = layout->row_width();
  jspec.outputs = {{0, DataType::kInt32}, {10, DataType::kInt32}};
  jspec.column_offsets = {layout->ColumnOffset(0), layout->ColumnOffset(10)};
  if (!fx.cache.GetOrCompile(jspec).ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  for (auto _ : state) {
    JitScanArgs args;
    args.spec = jspec;
    args.output_schema =
        Schema{{"c0", DataType::kInt32}, {"c10", DataType::kInt32}};
    args.file = fx.bin->file();
    args.total_rows = fx.bin->num_rows();
    JitScanOperator scan(&fx.cache, std::move(args));
    auto out = CollectAll(&scan);
    if (!out.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * fx.spec.rows);
}
BENCHMARK(BM_BinJit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raw

BENCHMARK_MAIN();
