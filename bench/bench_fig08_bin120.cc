// Figure 8: 120-column binary file with floating-point aggregation.
// No conversions: shreds stay competitive with the DBMS over a wide
// selectivity range; the remaining gap at 100% is column building only.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  TableSpec spec = dataset.D120Spec();
  PrintTitle("Figure 8 — 120-column binary, floating-point aggregation");
  printf("rows=%lld\n", static_cast<long long>(dataset.d120_rows()));
  PrintSeriesHeader("system", sels);

  struct Row {
    std::string name;
    AccessPathKind access;
    ShredPolicy policy;
  } systems[] = {
      {"DBMS", AccessPathKind::kLoaded, ShredPolicy::kFullColumns},
      {"FullColumns", AccessPathKind::kJit, ShredPolicy::kFullColumns},
      {"ColumnShreds", AccessPathKind::kJit, ShredPolicy::kShreds},
  };
  for (const Row& system : systems) {
    std::vector<double> row;
    for (double sel : sels) {
      auto engine = std::make_unique<RawEngine>();
      auto session = engine->OpenSession();
      std::string path = CheckOk(dataset.D120Binary(), "bin");
      CheckOk(engine->RegisterBinary("t", path, spec.ToSchema()), "register");
      PlannerOptions options;
      options.access_path = system.access;
      options.shred_policy = system.policy;
      if (system.access == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        options.access_path = AccessPathKind::kInSitu;
      }
      Datum lit = spec.SelectivityLiteral(0, sel);
      std::string q1 = "SELECT MAX(col0) FROM t WHERE col0 < " + lit.ToString();
      std::string q2 =
          "SELECT MAX(col11) FROM t WHERE col0 < " + lit.ToString();
      TimedQuery(session.get(), q1, options);
      row.push_back(TimedQuery(session.get(), q2, options));
    }
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: small absolute times; shreds ~match DBMS for a wide\n"
         "range, modest gap at 100%% (column building).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
