// Figure 6: full vs shredded columns over the binary file, second query.
// Same shape as Figure 5 without conversion costs.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Figure 6 — full vs shredded columns, binary 2nd query");
  printf("rows=%lld  query: %s\n", static_cast<long long>(dataset.d30_rows()),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("system", sels);

  struct Row {
    std::string name;
    ShredPolicy policy;
  } systems[] = {
      {"Full", ShredPolicy::kFullColumns},
      {"Shreds", ShredPolicy::kShreds},
  };
  for (const Row& system : systems) {
    PlannerOptions options;
    options.access_path = AccessPathKind::kJit;
    options.shred_policy = system.policy;
    std::vector<double> row;
    bool skipped = false;
    for (double sel : sels) {
      auto engine = D30BinEngine(&dataset);
      auto session = engine->OpenSession();
      if (!engine->Stats().jit_compiler_available()) {
        options.access_path = AccessPathKind::kInSitu;
      }
      TimedQuery(session.get(), Q1(&dataset, sel), options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
    }
    if (skipped) continue;
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: Shreds <= Full, equal at 100%% selectivity.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
