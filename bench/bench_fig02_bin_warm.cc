// Figure 2: second query over the warm *binary* file, selectivity sweep.
// No positional map is needed: InSitu computes element offsets at runtime,
// JIT hard-codes them into generated code. Paper result: same ordering as
// CSV (DBMS < JIT < InSitu) with smaller gaps — no data conversion happens.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Figure 2 — binary, 2nd query (warm), selectivity sweep");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("system", sels);

  struct Row {
    const char* name;
    AccessPathKind kind;
  } systems[] = {{"InSitu", AccessPathKind::kInSitu},
                 {"JIT", AccessPathKind::kJit},
                 {"DBMS", AccessPathKind::kLoaded}};

  for (const Row& system : systems) {
    PlannerOptions options;
    options.access_path = system.kind;
    options.shred_policy = ShredPolicy::kFullColumns;
    std::vector<double> row;
    bool skipped = false;
    for (double sel : sels) {
      auto engine = D30BinEngine(&dataset);
      auto session = engine->OpenSession();
      if (system.kind == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        skipped = true;
        break;
      }
      TimedQuery(session.get(), Q1(&dataset, sel), options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
    }
    if (skipped) {
      printf("%-28s (skipped: no compiler)\n", system.name);
    } else {
      PrintSeriesRow(system.name, row, sels);
    }
  }
  printf("\nExpect: gaps smaller than CSV (no conversion); JIT < InSitu.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
