// Figure 2: second query over the warm *binary* file, selectivity sweep.
// No positional map is needed: InSitu computes element offsets at runtime,
// JIT hard-codes them into generated code. Paper result: same ordering as
// CSV (DBMS < JIT < InSitu) with smaller gaps — no data conversion happens.

#include <algorithm>

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Figure 2 — binary, 2nd query (warm), selectivity sweep");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("system", sels);

  struct Row {
    const char* name;
    AccessPathKind kind;
  } systems[] = {{"InSitu", AccessPathKind::kInSitu},
                 {"JIT", AccessPathKind::kJit},
                 {"DBMS", AccessPathKind::kLoaded}};

  for (const Row& system : systems) {
    PlannerOptions options;
    options.access_path = system.kind;
    options.shred_policy = ShredPolicy::kFullColumns;
    std::vector<double> row;
    bool skipped = false;
    for (double sel : sels) {
      auto engine = D30BinEngine(&dataset);
      auto session = engine->OpenSession();
      if (system.kind == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        skipped = true;
        break;
      }
      TimedQuery(session.get(), Q1(&dataset, sel), options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
    }
    if (skipped) {
      printf("%-28s (skipped: no compiler)\n", system.name);
    } else {
      PrintSeriesRow(system.name, row, sels);
    }
  }
  printf("\nExpect: gaps smaller than CSV (no conversion); JIT < InSitu.\n");

  // Fusion ablation: warm Q2 at num_threads=1, pipeline compiled into one
  // generated loop (RAW_JIT_FUSION=1) vs. interpreted operators (=0). The
  // binary plug-in fuses cold (no positional map involved); Q1 still warms
  // the OS page cache and the col0 shred so both variants start identical.
  printf("\n--- pipeline fusion ablation (num_threads=1, warm) ---\n");
  PrintSeriesHeader("variant", sels);
  PlannerOptions interp;
  interp.shred_policy = ShredPolicy::kFullColumns;
  interp.num_threads = 1;
  interp.populate_shred_cache = false;
  interp.jit_fusion = JitFusion::kOff;
  PlannerOptions fused = interp;
  fused.jit_fusion = JitFusion::kOn;
  std::vector<double> interp_row, fused_row;
  for (double sel : sels) {
    auto engine = D30BinEngine(&dataset);
    if (!engine->Stats().jit_compiler_available()) {
      printf("(skipped: no compiler)\n");
      return;
    }
    auto session = engine->OpenSession();
    PlannerOptions warm = interp;
    warm.populate_shred_cache = true;
    TimedQuery(session.get(), Q1(&dataset, sel), warm);
    interp_row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), interp));
    fused_row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), fused));
  }
  PrintSeriesRow("JIT-interpreted-1t", interp_row, sels);
  PrintSeriesRow("JIT-fused-1t", fused_row, sels);
  printf("%-28s", "fused speedup");
  for (size_t i = 0; i < sels.size(); ++i) {
    double speedup = interp_row[i] / std::max(fused_row[i], 1e-9);
    printf("%9.2fx", speedup);
    char label[48];
    snprintf(label, sizeof(label), "JIT-fused-1t@%g%%/speedup",
             sels[i] * 100);
    RecordJson(label, speedup);
  }
  double interp_total = 0, fused_total = 0;
  for (size_t i = 0; i < sels.size(); ++i) {
    interp_total += interp_row[i];
    fused_total += fused_row[i];
  }
  const double sweep_speedup = interp_total / std::max(fused_total, 1e-9);
  printf("\n%-28s%9.2fx\n", "fused speedup (whole sweep)", sweep_speedup);
  RecordJson("JIT-fused-1t/speedup", sweep_speedup);
  printf("Expect: fused >= 1.3x over interpreted on the sweep; the win grows\n"
         "as selectivity drops (skipped rows never touch the value column)\n"
         "and narrows to ~parity at 100%% (the interpreted path's all-rows\n"
         "pass-through fast path).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
