// Table 3: the "Find the Higgs Boson" use case (§6).
// Hand-written C++ (object-at-a-time over REF events, format buffer pool)
// vs RAW (columnar, selective branch reads, column-shred caching), cold and
// warm. The good-runs CSV is joined with the REF event data in both systems.
// Paper result: cold runs comparable (I/O bound; RAW slightly faster);
// warm RAW ~2 orders of magnitude faster than warm hand-written C++.

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "workload/higgs.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  PrintTitle("Table 3 — Higgs analysis: hand-written C++ vs RAW");
  std::vector<std::string> files =
      CheckOk(dataset.HiggsRefFiles(), "ref files");
  std::string runs = CheckOk(dataset.GoodRunsCsv(), "good runs");
  printf("files=%d, events/file=%lld\n", dataset.higgs_files(),
         static_cast<long long>(dataset.higgs_events()));

  HiggsCuts cuts;
  HandwrittenHiggsAnalysis handwritten(files, runs, cuts);
  RawHiggsAnalysis raw_analysis(files, runs, cuts);

  Stopwatch watch;
  HiggsResult hw_cold = CheckOk(handwritten.Run(), "handwritten cold");
  double hw_cold_s = watch.ElapsedSeconds();

  watch.Restart();
  HiggsResult hw_warm = CheckOk(handwritten.Run(), "handwritten warm");
  double hw_warm_s = watch.ElapsedSeconds();

  watch.Restart();
  HiggsResult raw_cold = CheckOk(raw_analysis.Run(), "raw cold");
  double raw_cold_s = watch.ElapsedSeconds();

  watch.Restart();
  HiggsResult raw_warm = CheckOk(raw_analysis.Run(), "raw warm");
  double raw_warm_s = watch.ElapsedSeconds();

  if (!(hw_cold == raw_cold) || !(hw_warm == raw_warm)) {
    fprintf(stderr, "FATAL: systems disagree (hw=%lld raw=%lld candidates)\n",
            static_cast<long long>(hw_cold.candidates),
            static_cast<long long>(raw_cold.candidates));
    exit(1);
  }

  printf("candidates=%lld of %lld events\n\n",
         static_cast<long long>(hw_cold.candidates),
         static_cast<long long>(hw_cold.events_scanned));
  printf("%-32s %12s\n", "system", "time");
  PrintKeyValue("1st query (cold)  Hand-written C++", hw_cold_s);
  PrintKeyValue("1st query (cold)  RAW", raw_cold_s);
  PrintKeyValue("2nd query (warm)  Hand-written C++", hw_warm_s);
  PrintKeyValue("2nd query (warm)  RAW", raw_warm_s);
  printf("\nwarm speedup RAW vs hand-written: %.1fx\n",
         hw_warm_s / raw_warm_s);
  printf("\nExpect: cold runs the same order of magnitude (RAW can edge out\n"
         "the object-at-a-time loop); warm RAW orders of magnitude faster —\n"
         "its column shreds hold exactly the needed values in columnar form\n"
         "while the hand-written loop re-walks objects via the buffer pool.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
