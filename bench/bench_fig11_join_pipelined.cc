// Figure 11: join with the projected column on the probe ("pipelined") side.
//   SELECT MAX(f1.col10) FROM f1 JOIN f2 ON f1.col0 = f2.col0
//   WHERE f2.col1 < X
// f2 is a shuffled copy of f1. Join keys and f2.col1 are cached by priming
// queries (the paper assumes them loaded). Compared: Early (read col10 with
// the base scan) vs Late (fetch after the join, pipelined order) vs DBMS.
// Paper result: Late <= Early, converging at high selectivity — the probe
// side preserves row order, so late fetches stay near-sequential.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

std::unique_ptr<RawEngine> JoinEngine(Dataset* dataset) {
  auto engine = std::make_unique<RawEngine>();
  TableSpec spec = dataset->D30Spec();
  std::string f1 = CheckOk(dataset->D30Csv(), "f1");
  std::string f2 = CheckOk(dataset->D30CsvShuffled(), "f2");
  CheckOk(engine->RegisterCsv("f1", f1, spec.ToSchema(), CsvOptions(), 10),
          "f1");
  CheckOk(engine->RegisterCsv("f2", f2, spec.ToSchema(), CsvOptions(), 10),
          "f2");
  return engine;
}

void Prime(Session* session, const PlannerOptions& options) {
  // Cache f1.col0 and f2.col0/f2.col1, building both positional maps.
  PlannerOptions full = options;
  full.shred_policy = ShredPolicy::kFullColumns;
  TimedQuery(session, "SELECT COUNT(*) FROM f1 WHERE col0 >= 0", full);
  TimedQuery(session,
             "SELECT COUNT(*) FROM f2 WHERE col0 >= 0 AND col1 >= 0", full);
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  TableSpec spec = dataset.D30Spec();
  PrintTitle("Figure 11 — join, projected column on the pipelined side");
  printf("rows=%lld per file\n", static_cast<long long>(dataset.d30_rows()));
  PrintSeriesHeader("placement", sels);

  struct Row {
    std::string name;
    AccessPathKind access;
    JoinProjectionPlacement placement;
  } systems[] = {
      {"Early", AccessPathKind::kJit, JoinProjectionPlacement::kEarly},
      {"Late", AccessPathKind::kJit, JoinProjectionPlacement::kLate},
      {"DBMS", AccessPathKind::kLoaded, JoinProjectionPlacement::kEarly},
  };
  for (const Row& system : systems) {
    std::vector<double> row;
    for (double sel : sels) {
      auto engine = JoinEngine(&dataset);
      auto session = engine->OpenSession();
      PlannerOptions options;
      options.access_path = system.access;
      if (system.access == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        options.access_path = AccessPathKind::kInSitu;
      }
      options.join_placement = system.placement;
      // Prime every system: raw paths cache keys/predicate columns and the
      // positional maps; the DBMS loads its tables (the paper's reference
      // has data loaded before this experiment).
      Prime(session.get(), options);
      Datum lit = spec.SelectivityLiteral(1, sel);
      std::string q =
          "SELECT MAX(f1.col10) FROM f1 JOIN f2 ON f1.col0 = f2.col0 WHERE "
          "f2.col1 < " +
          lit.ToString();
      row.push_back(TimedQuery(session.get(), q, options));
    }
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: Late <= Early at low selectivity, converging as it\n"
         "rises; join cost masks much of the raw-access cost (Fig. 11).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
