#ifndef RAW_BENCH_BENCH_COMMON_H_
#define RAW_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks: dataset plumbing,
// engine factories for each compared system, and fixed-width table printing
// so every binary emits the rows/series of its paper figure.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/raw_engine.h"
#include "workload/dataset.h"

namespace raw::bench {

/// Selectivities swept by the figure benchmarks (fractions).
inline std::vector<double> Selectivities() {
  return {0.01, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
}

/// The scan/aggregation thread count every engine in this process will use
/// (PlannerOptions::num_threads stays 0 = auto in the benches, so this is
/// $RAW_NUM_THREADS when set, else hardware concurrency). Benches print it:
/// comparing a RAW_NUM_THREADS=1 run against =4 measures the morsel-parallel
/// speedup on otherwise identical queries.
inline int BenchNumThreads() { return ResolveNumThreads(0); }

inline void PrintTitle(const std::string& title) {
  printf("\n=== %s ===\n", title.c_str());
}

/// When $RAW_BENCH_JSON names a file, every datapoint printed through
/// PrintSeriesRow / PrintKeyValue (plus explicit calls) is also appended
/// there as one JSON object per line — the machine-readable trail the
/// nightly benchmark workflow diffs across runs. Keys must not contain
/// quotes or backslashes (bench/series names never do).
inline void RecordJson(const std::string& key, double seconds) {
  static const char* path = std::getenv("RAW_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  FILE* f = fopen(path, "a");
  if (f == nullptr) return;
  fprintf(f, "{\"key\": \"%s\", \"seconds\": %.6f}\n", key.c_str(), seconds);
  fclose(f);
}

inline void PrintSeriesHeader(const std::string& first_col,
                              const std::vector<double>& sels) {
  printf("%-28s", first_col.c_str());
  for (double s : sels) printf("%9.0f%%", s * 100);
  printf("\n");
}

inline void PrintSeriesRow(const std::string& name,
                           const std::vector<double>& seconds) {
  printf("%-28s", name.c_str());
  for (double s : seconds) printf("%9.3fs", s);
  printf("\n");
  for (size_t i = 0; i < seconds.size(); ++i) {
    RecordJson(name + "#" + std::to_string(i), seconds[i]);
  }
}

/// Series variant with self-identifying JSON keys: datapoints are keyed by
/// the swept selectivity ("name@40%"), not the position, so editing a
/// bench's selectivity list cannot silently misalign the nightly diff.
inline void PrintSeriesRow(const std::string& name,
                           const std::vector<double>& seconds,
                           const std::vector<double>& sels) {
  printf("%-28s", name.c_str());
  for (double s : seconds) printf("%9.3fs", s);
  printf("\n");
  for (size_t i = 0; i < seconds.size() && i < sels.size(); ++i) {
    char label[32];
    snprintf(label, sizeof(label), "@%g%%", sels[i] * 100);
    RecordJson(name + label, seconds[i]);
  }
}

inline void PrintKeyValue(const std::string& key, double seconds) {
  printf("%-40s %9.3fs\n", key.c_str(), seconds);
  RecordJson(key, seconds);
}

/// Dies with a message when a Status is not OK (benchmarks are scripts; any
/// failure should be loud).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T CheckOk(StatusOr<T> value, const char* what) {
  CheckOk(value.status(), what);
  if (!value.ok()) exit(1);
  return std::move(value).value();
}

/// Engine preset for one compared "system".
struct SystemConfig {
  std::string name;
  PlannerOptions options;
  int pmap_stride = 10;  // CSV tracking stride for this system
};

/// The §4 access-path line-up (Figures 1-2): full columns everywhere, the
/// access path is the independent variable. Stride 10 tracks the aggregated
/// column (col10) exactly; stride 7 forces nearest-position + incremental
/// parse — the paper's "Column 7" variants.
inline std::vector<SystemConfig> AccessPathSystems(bool include_external) {
  std::vector<SystemConfig> systems;
  auto add = [&](std::string name, AccessPathKind kind, int stride) {
    SystemConfig config;
    config.name = std::move(name);
    config.options.access_path = kind;
    config.options.shred_policy = ShredPolicy::kFullColumns;
    config.pmap_stride = stride;
    systems.push_back(std::move(config));
  };
  add("DBMS", AccessPathKind::kLoaded, 10);
  if (include_external) add("ExternalTables", AccessPathKind::kExternalTable, 10);
  add("InSitu", AccessPathKind::kInSitu, 10);
  add("JIT", AccessPathKind::kJit, 10);
  add("InSitu-Col7", AccessPathKind::kInSitu, 7);
  add("JIT-Col7", AccessPathKind::kJit, 7);
  return systems;
}

/// Registers the D30 CSV table as "t" on a fresh engine.
inline std::unique_ptr<RawEngine> D30CsvEngine(Dataset* dataset, int stride) {
  auto engine = std::make_unique<RawEngine>();
  std::string path = CheckOk(dataset->D30Csv(), "D30 csv");
  CheckOk(engine->RegisterCsv("t", path, dataset->D30Spec().ToSchema(),
                              CsvOptions(), stride),
          "register csv");
  return engine;
}

inline std::unique_ptr<RawEngine> D30BinEngine(Dataset* dataset) {
  auto engine = std::make_unique<RawEngine>();
  std::string path = CheckOk(dataset->D30Binary(), "D30 bin");
  CheckOk(engine->RegisterBinary("t", path, dataset->D30Spec().ToSchema()),
          "register bin");
  return engine;
}

/// Paper queries (0-based columns: the paper's col1/col11 are col0/col10).
inline std::string Q1(Dataset* dataset, double selectivity) {
  Datum lit = dataset->D30Spec().SelectivityLiteral(0, selectivity);
  return "SELECT MAX(col0) FROM t WHERE col0 < " + lit.ToString();
}

inline std::string Q2(Dataset* dataset, double selectivity) {
  Datum lit = dataset->D30Spec().SelectivityLiteral(0, selectivity);
  return "SELECT MAX(col10) FROM t WHERE col0 < " + lit.ToString();
}

/// Runs `sql` through a client session, returning wall seconds minus JIT
/// compilation (compilation is amortized by the template cache across
/// queries in a session; reporting it separately mirrors the paper's
/// treatment, which charges it once to the first query and caches
/// thereafter).
inline double TimedQuery(Session* session, const std::string& sql,
                         const PlannerOptions& options,
                         double* compile_seconds = nullptr) {
  QueryResult result = CheckOk(session->Query(sql, options), sql.c_str());
  if (compile_seconds != nullptr) *compile_seconds += result.compile_seconds;
  return result.total_seconds() - result.compile_seconds;
}

}  // namespace raw::bench

#endif  // RAW_BENCH_BENCH_COMMON_H_
