// Ablation: cost-model-driven adaptive shred policy (the paper's §8 future
// work) vs the fixed policies across the selectivity sweep of Figure 5.
// Adaptive should track the lower envelope of Full and Shreds: shreds at low
// selectivity, full columns once the crossover is passed.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Ablation — adaptive shred policy vs fixed (CSV 2nd query)");
  printf("rows=%lld  query: %s\n", static_cast<long long>(dataset.d30_rows()),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("policy", sels);

  struct Row {
    std::string name;
    ShredPolicy policy;
  } systems[] = {
      {"FullColumns", ShredPolicy::kFullColumns},
      {"Shreds", ShredPolicy::kShreds},
      {"Adaptive", ShredPolicy::kAdaptive},
  };
  for (const Row& system : systems) {
    std::vector<double> row;
    for (double sel : sels) {
      auto engine = D30CsvEngine(&dataset, /*stride=*/10);
      auto session = engine->OpenSession();
      PlannerOptions options;
      options.access_path = engine->Stats().jit_compiler_available()
                                ? AccessPathKind::kJit
                                : AccessPathKind::kInSitu;
      options.shred_policy = system.policy;
      TimedQuery(session.get(), Q1(&dataset, sel), options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), options));
    }
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: Adaptive hugs min(FullColumns, Shreds) on both sides of\n"
         "the crossover — the cost model picks the right placement from the\n"
         "cache-estimated selectivity.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
