// Ablation: the self-tuning tier, policy by policy. Four systems answer the
// same repeated aggregation over the D30 CSV:
//
//   off            — no adaptive state carried at all: every query is a first
//                    query on a fresh engine (the floor the tiers climb from).
//   reactive       — the classic RAW behaviour: positional maps and column
//                    shreds materialize as side effects of foreground
//                    queries; the first query pays, later ones ride warm.
//   background     — the workload-driven materializer: after the table is hot
//                    and the engine goes idle, adaptive state is *rebuilt in
//                    the background*, so the first query after idle starts
//                    warm instead of cold.
//   +result-cache  — the semantic result cache on top: a repeated identical
//                    query is answered from cached results without planning
//                    or executing anything.
//
// Expect: background/first-after-idle ~= reactive/warm (not reactive/cold),
// and result_cache/hit >= 5x faster than its miss.

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Wall-clock seconds for one query (the result cache zeroes the engine's
/// internal timings on a hit, so only wall time compares fairly).
double WallTimedQuery(Session* session, const std::string& sql,
                      const PlannerOptions& options) {
  const auto t0 = Clock::now();
  CheckOk(session->Query(sql, options), sql.c_str());
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Blocks until the background materializer has completed work and gone
/// quiet again (no action mid-flight), or `budget_ms` elapses.
void AwaitBackgroundWarm(RawEngine* engine, int64_t budget_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < deadline) {
    const autotune::MaterializerStats m = engine->Stats().materializer;
    const bool quiet =
        m.actions_started ==
        m.actions_completed + m.actions_preempted + m.actions_failed;
    if (m.actions_completed >= 1 && quiet) {
      // One settle poll: give a just-finished action's successor a beat to
      // start, so "quiet" means the pass is over, not between actions.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (engine->Stats().materializer.actions_started == m.actions_started) {
        return;
      }
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  fprintf(stderr, "warning: background warm-up did not finish in %lldms\n",
          static_cast<long long>(budget_ms));
}

/// D30 CSV engine with the autotune tier configured per-system.
std::unique_ptr<RawEngine> AutotuneEngine(Dataset* dataset, bool background,
                                          int64_t result_cache_bytes) {
  RawEngineOptions engine_options;
  engine_options.autotune.enabled = background;
  engine_options.autotune.idle_wait_ms = 50;
  engine_options.autotune.poll_ms = 5;
  engine_options.result_cache_bytes = result_cache_bytes;
  auto engine = std::make_unique<RawEngine>(engine_options);
  CheckOk(engine->RegisterCsv("t", CheckOk(dataset->D30Csv(), "D30 csv"),
                              dataset->D30Spec().ToSchema(), CsvOptions(),
                              /*pmap_stride=*/10),
          "register csv");
  return engine;
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  const double sel = 0.5;
  const std::string query = Q2(&dataset, sel);
  PrintTitle("Ablation — autotune policy tiers (D30 CSV)");
  printf("rows=%lld  query: %s\n", static_cast<long long>(dataset.d30_rows()),
         query.c_str());

  PlannerOptions options;
  {
    auto probe = D30CsvEngine(&dataset, /*stride=*/10);
    options.access_path = probe->Stats().jit_compiler_available()
                              ? AccessPathKind::kJit
                              : AccessPathKind::kInSitu;
  }

  // --- off: every query is a first query ---------------------------------
  {
    auto engine = D30CsvEngine(&dataset, /*stride=*/10);
    auto session = engine->OpenSession();
    const double cold = WallTimedQuery(session.get(), query, options);
    auto engine2 = D30CsvEngine(&dataset, /*stride=*/10);
    auto session2 = engine2->OpenSession();
    const double repeat = WallTimedQuery(session2.get(), query, options);
    PrintKeyValue("autotune/off/cold", cold);
    PrintKeyValue("autotune/off/repeat", repeat);
  }

  // --- reactive: adaptive state as a query side effect --------------------
  double reactive_warm;
  {
    auto engine = D30CsvEngine(&dataset, /*stride=*/10);
    auto session = engine->OpenSession();
    const double cold = WallTimedQuery(session.get(), query, options);
    reactive_warm = WallTimedQuery(session.get(), query, options);
    reactive_warm =
        std::min(reactive_warm, WallTimedQuery(session.get(), query, options));
    PrintKeyValue("autotune/reactive/cold", cold);
    PrintKeyValue("autotune/reactive/warm", reactive_warm);
  }

  // --- background: state rebuilt by the idle worker -----------------------
  {
    auto engine = AutotuneEngine(&dataset, /*background=*/true,
                                 /*result_cache_bytes=*/0);
    auto session = engine->OpenSession();
    // Heat the table (two scans), then wipe every piece of adaptive state —
    // the heat counters survive: they are workload history, not state.
    WallTimedQuery(session.get(), query, options);
    WallTimedQuery(session.get(), query, options);
    engine->ResetAdaptiveState();
    // Go idle; the materializer rebuilds the map and the hot columns.
    AwaitBackgroundWarm(engine.get(), /*budget_ms=*/60000);
    const double first_after_idle =
        WallTimedQuery(session.get(), query, options);
    PrintKeyValue("autotune/background/first-after-idle", first_after_idle);
    printf("  (cold would be ~ autotune/off/cold; expect ~ reactive/warm "
           "%.3fs)\n",
           reactive_warm);
  }

  // --- +result-cache: repeats answered from cached results ----------------
  {
    auto engine = AutotuneEngine(&dataset, /*background=*/true,
                                 /*result_cache_bytes=*/256ll << 20);
    auto session = engine->OpenSession();
    const double miss = WallTimedQuery(session.get(), query, options);
    const double hit = WallTimedQuery(session.get(), query, options);
    const double speedup = hit > 0 ? miss / hit : 0;
    PrintKeyValue("autotune/result_cache/miss", miss);
    PrintKeyValue("autotune/result_cache/hit", hit);
    printf("%-40s %9.1fx\n", "autotune/result_cache/speedup", speedup);
    RecordJson("autotune/result_cache/speedup", speedup);
    const EngineStats stats = engine->Stats();
    printf("  (cache: hits=%lld misses=%lld inserted=%lld)\n",
           static_cast<long long>(stats.result_cache.hits),
           static_cast<long long>(stats.result_cache.misses),
           static_cast<long long>(stats.result_cache.inserted));
  }

  printf("\nExpect: first-after-idle ~= reactive/warm (the background worker\n"
         "rebuilt the adaptive state before the query arrived), and the\n"
         "result-cache hit >= 5x below its miss.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
