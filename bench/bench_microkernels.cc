// Microbenchmarks for the kernel core (common/kernels.h): tokenizer
// throughput per dispatch tier, compare/arith/aggregate kernel rates against
// their scalar reference paths, and a fig01b-style warm-CSV predicate eval
// through the engine at num_threads=1 — all recorded via RAW_BENCH_JSON so
// the nightly diff catches kernel regressions.
//
// Speedup datapoints (`...speedup` keys) record a ratio, not seconds: the
// tokenizer criterion is swar >= 1.5x scalar, the warm predicate eval
// criterion is kernels >= 1.3x scalar.

#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "columnar/aggregate.h"
#include "columnar/batch.h"
#include "columnar/eval_kernels.h"
#include "columnar/expression.h"
#include "common/env.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "csv/csv_tokenizer.h"

namespace raw::bench {
namespace {

int64_t EnvRows() {
  return GetEnvInt64("RAW_BENCH_ROWS", /*fallback=*/2000000, /*min=*/1,
                     /*max=*/int64_t{1} << 40);
}

// Prevents the optimizer from deleting a measured loop.
volatile uint64_t g_sink;

// --- tokenizer ---------------------------------------------------------------

/// D30-shaped buffer: 30 comma-separated 9-digit integer fields per row
/// (~300-byte rows), the paper's CSV workload.
std::string MakeCsvBuffer(int64_t rows, int fields_per_row) {
  Rng rng(42);
  std::string buf;
  buf.reserve(static_cast<size_t>(rows) * fields_per_row * 10);
  for (int64_t r = 0; r < rows; ++r) {
    for (int f = 0; f < fields_per_row; ++f) {
      if (f > 0) buf.push_back(',');
      buf += std::to_string(rng.NextInt64(0, 999999999));
    }
    buf.push_back('\n');
  }
  return buf;
}

/// Walks every field of `buf` through `fn` (the FieldEnd search): the cold
/// full-tokenize workload (every column needed).
double TimeFieldWalk(ScanTwoFn fn, const std::string& buf, int reps) {
  const char* begin = buf.data();
  const char* end = begin + buf.size();
  uint64_t fields = 0;
  Stopwatch sw;
  for (int rep = 0; rep < reps; ++rep) {
    const char* p = begin;
    while (p < end) {
      p = fn(p, end, ',', '\n') + 1;
      ++fields;
    }
  }
  double seconds = sw.ElapsedSeconds();
  g_sink = fields;
  return seconds;
}

/// Per row: FieldEnd on the leading field, then skip to the row terminator —
/// the selective-scan workload (`SELECT agg(col0) WHERE col0 < x` over a
/// 30-column table: parse one field, skip ~290 bytes). The row skip is where
/// the wide kernels earn their keep.
double TimeScanWalk(ScanTwoFn field_fn, ScanOneFn row_fn,
                    const std::string& buf, int reps) {
  const char* begin = buf.data();
  const char* end = begin + buf.size();
  uint64_t rows = 0;
  Stopwatch sw;
  for (int rep = 0; rep < reps; ++rep) {
    const char* p = begin;
    while (p < end) {
      const char* field_end = field_fn(p, end, ',', '\n');
      g_sink = static_cast<uint64_t>(field_end - p);
      const char* nl = row_fn(field_end, end, '\n');
      p = (nl == end) ? end : nl + 1;
      ++rows;
    }
  }
  double seconds = sw.ElapsedSeconds();
  g_sink = rows;
  return seconds;
}

void RunTokenizer(int64_t rows) {
  PrintTitle("Microkernels — tokenizer (GB/s per tier, D30-shaped rows)");
  const std::string buf = MakeCsvBuffer(rows / 3, 30);
  const int reps = 3;
  const double gb =
      static_cast<double>(buf.size()) * reps / (1024.0 * 1024.0 * 1024.0);
  printf("buffer=%.1f MiB  reps=%d  active tier=%s\n",
         buf.size() / (1024.0 * 1024.0), reps,
         std::string(KernelTierName(ActiveKernelTier())).c_str());

  double scan_scalar = 0;
  double scan_swar = 0;
  for (KernelTier tier :
       {KernelTier::kScalar, KernelTier::kSwar, KernelTier::kSse2,
        KernelTier::kAvx2}) {
    ScanTwoFn field_fn = ScanForEitherImpl(tier);
    ScanOneFn row_fn = ScanForImpl(tier);
    if (field_fn == nullptr) continue;  // tier unsupported on this CPU
    std::string tname(KernelTierName(tier));
    double walk_seconds = TimeFieldWalk(field_fn, buf, reps);
    double scan_seconds = TimeScanWalk(field_fn, row_fn, buf, reps);
    printf("%-40s %9.3fs  %7.2f GB/s\n",
           ("ukern/tokenizer-walk/" + tname).c_str(), walk_seconds,
           gb / walk_seconds);
    printf("%-40s %9.3fs  %7.2f GB/s\n",
           ("ukern/tokenizer-scan/" + tname).c_str(), scan_seconds,
           gb / scan_seconds);
    RecordJson("ukern/tokenizer-walk/" + tname, walk_seconds);
    RecordJson("ukern/tokenizer-scan/" + tname, scan_seconds);
    if (tier == KernelTier::kScalar) scan_scalar = scan_seconds;
    if (tier == KernelTier::kSwar) scan_swar = scan_seconds;
  }
  if (scan_scalar > 0 && scan_swar > 0) {
    double speedup = scan_scalar / scan_swar;
    printf("%-40s %9.2fx  (criterion: >= 1.5x)\n",
           "ukern/tokenizer-scan/swar-speedup", speedup);
    RecordJson("ukern/tokenizer-scan/swar-speedup", speedup);
  }
}

// --- columnar kernels --------------------------------------------------------

template <typename F>
double TimeReps(int reps, F&& body) {
  Stopwatch sw;
  for (int rep = 0; rep < reps; ++rep) body();
  return sw.ElapsedSeconds();
}

void RunCompare(int64_t rows) {
  PrintTitle("Microkernels — compare selection (int32 < c, rows/s)");
  Rng rng(7);
  std::vector<int32_t> values(static_cast<size_t>(rows));
  for (auto& v : values) v = rng.NextInt32(0, 99);
  const int reps = 5;
  SelectionVector out;
  for (int pct : {1, 50, 100}) {
    const int32_t c = pct;  // values uniform in [0, 100)
    double scalar_seconds = TimeReps(reps, [&] {
      out.Clear();
      SelectCompareConstScalar<int32_t>(CompareOp::kLt, values.data(), rows, c,
                                        nullptr, &out);
      g_sink = static_cast<uint64_t>(out.size());
    });
    double kernel_seconds = TimeReps(reps, [&] {
      out.Clear();
      SelectCompareConst<int32_t>(CompareOp::kLt, values.data(), rows, c,
                                  nullptr, &out);
      g_sink = static_cast<uint64_t>(out.size());
    });
    char label[64];
    snprintf(label, sizeof(label), "ukern/compare-i32@%d%%", pct);
    printf("%-40s scalar %.3fs  kernels %.3fs  (%.2fx, %.0f Mrows/s)\n", label,
           scalar_seconds, kernel_seconds, scalar_seconds / kernel_seconds,
           rows * reps / kernel_seconds / 1e6);
    RecordJson(std::string(label) + "/scalar", scalar_seconds);
    RecordJson(std::string(label) + "/kernels", kernel_seconds);
    RecordJson(std::string(label) + "/speedup",
               scalar_seconds / kernel_seconds);
  }
}

void RunArith(int64_t rows) {
  PrintTitle("Microkernels — arithmetic (float64 a*b via ArithExpr)");
  Rng rng(11);
  Schema schema;
  schema.AddField("a", DataType::kFloat64);
  schema.AddField("b", DataType::kFloat64);
  auto a = std::make_shared<Column>(DataType::kFloat64);
  auto b = std::make_shared<Column>(DataType::kFloat64);
  a->Reserve(rows);
  b->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    a->Append<double>(rng.NextDouble(0, 1000));
    b->Append<double>(rng.NextDouble(0, 1000));
  }
  ColumnBatch batch(schema);
  batch.AddColumn(a);
  batch.AddColumn(b);
  batch.SetNumRows(rows);
  ExprPtr expr = Arith(ArithOp::kMul, Col(0), Col(1));
  const int reps = 5;
  const KernelTier restore = ActiveKernelTier();

  SetKernelTier(KernelTier::kScalar);
  double scalar_seconds = TimeReps(reps, [&] {
    auto result = expr->Evaluate(batch);
    CheckOk(result.status(), "arith scalar");
    g_sink = static_cast<uint64_t>(result->length());
  });
  SetKernelTier(restore);
  double kernel_seconds = TimeReps(reps, [&] {
    auto result = expr->Evaluate(batch);
    CheckOk(result.status(), "arith kernels");
    g_sink = static_cast<uint64_t>(result->length());
  });
  printf("%-40s scalar %.3fs  kernels %.3fs  (%.2fx)\n", "ukern/arith-f64-mul",
         scalar_seconds, kernel_seconds, scalar_seconds / kernel_seconds);
  RecordJson("ukern/arith-f64-mul/scalar", scalar_seconds);
  RecordJson("ukern/arith-f64-mul/kernels", kernel_seconds);
  RecordJson("ukern/arith-f64-mul/speedup", scalar_seconds / kernel_seconds);
}

void RunAggregate(int64_t rows) {
  PrintTitle("Microkernels — aggregation (SUM float64 + MAX int32)");
  Rng rng(13);
  Column doubles(DataType::kFloat64);
  Column ints(DataType::kInt32);
  doubles.Reserve(rows);
  ints.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    doubles.Append<double>(rng.NextDouble(0, 100));
    ints.Append<int32_t>(rng.NextInt32(0, 1000000));
  }
  const int reps = 5;
  const KernelTier restore = ActiveKernelTier();
  auto run_pair = [&](const char* label, const Column& col, AggKind kind) {
    SetKernelTier(KernelTier::kScalar);
    double scalar_seconds = TimeReps(reps, [&] {
      AggAccumulator acc(kind, col.type());
      CheckOk(acc.UpdateBatch(col, nullptr, rows), "agg scalar");
      g_sink = static_cast<uint64_t>(acc.count());
    });
    SetKernelTier(restore);
    double kernel_seconds = TimeReps(reps, [&] {
      AggAccumulator acc(kind, col.type());
      CheckOk(acc.UpdateBatch(col, nullptr, rows), "agg kernels");
      g_sink = static_cast<uint64_t>(acc.count());
    });
    printf("%-40s scalar %.3fs  kernels %.3fs  (%.2fx)\n", label,
           scalar_seconds, kernel_seconds, scalar_seconds / kernel_seconds);
    RecordJson(std::string(label) + "/scalar", scalar_seconds);
    RecordJson(std::string(label) + "/kernels", kernel_seconds);
    RecordJson(std::string(label) + "/speedup",
               scalar_seconds / kernel_seconds);
  };
  run_pair("ukern/agg-sum-f64", doubles, AggKind::kSum);
  run_pair("ukern/agg-max-i32", ints, AggKind::kMax);
}

// --- fig01b-style warm predicate eval ----------------------------------------

/// The fig01b Q2 hot loop once everything is warm: with the positional map
/// built and both columns in the shred cache, the query is exactly a
/// predicate eval + MAX over full in-memory columns — the columnar kernel
/// path, measured through the whole engine at num_threads=1.
void RunWarmEval(Dataset* dataset) {
  PrintTitle("Microkernels — fig01b warm-CSV predicate eval (1 thread)");
  auto engine = D30CsvEngine(dataset, 10);
  auto session = engine->OpenSession();
  PlannerOptions options;
  options.access_path = AccessPathKind::kInSitu;
  options.shred_policy = ShredPolicy::kFullColumns;
  options.num_threads = 1;
  const std::string sql = Q2(dataset, 0.4);
  printf("query: %s\n", sql.c_str());

  // Warm: first run builds the positional map, second runs from the map and
  // leaves both columns cached; from the third run on the timed path is
  // cache-scan -> filter -> aggregate.
  TimedQuery(session.get(), sql, options);
  TimedQuery(session.get(), sql, options);

  const int reps = 5;
  const KernelTier restore = ActiveKernelTier();
  SetKernelTier(KernelTier::kScalar);
  double scalar_seconds = 0;
  for (int rep = 0; rep < reps; ++rep) {
    scalar_seconds += TimedQuery(session.get(), sql, options);
  }
  SetKernelTier(restore);
  QueryResult probe = CheckOk(session->Query(sql, options), "warm probe");
  double kernel_seconds = 0;
  for (int rep = 0; rep < reps; ++rep) {
    kernel_seconds += TimedQuery(session.get(), sql, options);
  }
  printf("plan: %s\n", probe.plan_description.c_str());
  printf("%-40s scalar %.3fs  kernels %.3fs  (%.2fx, criterion >= 1.3x)\n",
         "ukern/fig01b-warm-eval", scalar_seconds, kernel_seconds,
         scalar_seconds / kernel_seconds);
  RecordJson("ukern/fig01b-warm-eval/scalar", scalar_seconds);
  RecordJson("ukern/fig01b-warm-eval/kernels", kernel_seconds);
  RecordJson("ukern/fig01b-warm-eval/speedup",
             scalar_seconds / kernel_seconds);
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  const int64_t rows = EnvRows();
  printf("rows=%" PRId64 "  max tier=%s  active tier=%s\n", rows,
         std::string(KernelTierName(MaxSupportedKernelTier())).c_str(),
         std::string(KernelTierName(ActiveKernelTier())).c_str());
  RunTokenizer(rows);
  RunCompare(rows);
  RunArith(rows);
  RunAggregate(rows);
  RunWarmEval(&dataset);
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
