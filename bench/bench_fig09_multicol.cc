// Figure 9: speculative multi-column shreds (§5.3.1).
//   Timed query: SELECT MAX(col5) FROM t WHERE col0 < X AND col4 < X
// Setup matches the paper: a positional map exists (tracking columns 0 and 9;
// the paper's 1-based {1,10}) and col0 is cached by a previous query.
// Compared: full columns / one-shred-at-a-time / multi-column shreds (col4
// and col5 fetched together in one pass).

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  TableSpec spec = dataset.D30Spec();
  PrintTitle("Figure 9 — full vs shreds vs multi-column shreds (CSV)");
  printf("rows=%lld  query: SELECT MAX(col5) WHERE col0 < X AND col4 < X\n",
         static_cast<long long>(dataset.d30_rows()));
  PrintSeriesHeader("system", sels);

  struct Row {
    std::string name;
    ShredPolicy policy;
  } systems[] = {
      {"Full", ShredPolicy::kFullColumns},
      {"Shreds", ShredPolicy::kShreds},
      {"MultiColumnShreds", ShredPolicy::kMultiColumnShreds},
  };
  for (const Row& system : systems) {
    std::vector<double> row;
    for (double sel : sels) {
      // Stride 9 tracks columns {0, 9, 18, 27}: jumps land on column 0 and
      // incremental parsing reaches columns 4-5, as in the paper's setup.
      auto engine = D30CsvEngine(&dataset, /*stride=*/9);
      auto session = engine->OpenSession();
      PlannerOptions options;
      options.access_path = engine->Stats().jit_compiler_available()
                                ? AccessPathKind::kJit
                                : AccessPathKind::kInSitu;
      options.shred_policy = system.policy;
      // Priming query: builds the positional map and caches col0.
      TimedQuery(session.get(), Q1(&dataset, 1.0), options);
      Datum lit = spec.SelectivityLiteral(0, sel);
      std::string q = "SELECT MAX(col5) FROM t WHERE col0 < " +
                      lit.ToString() + " AND col4 < " + lit.ToString();
      options.shred_policy = system.policy;
      row.push_back(TimedQuery(session.get(), q, options));
    }
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: single-column shreds win below ~40%% selectivity; above\n"
         "that the repeated incremental parsing dominates and multi-column\n"
         "shreds (one pass for col4+col5) give the best of both (Fig. 9).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
