// Ablation: positional-map tracking stride (§2.3's trade-off: positions
// tracked vs. future tokenizing/parsing saved).
//   Q1 warms and builds the map with the given stride; Q2 reads col10.
// Small strides place a jump target on (or right before) every column but
// cost more map memory and bookkeeping during Q1; large strides force long
// incremental parses during Q2.

#include "bench/bench_common.h"
#include "common/string_util.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  PrintTitle("Ablation — positional map stride vs Q2 latency (CSV)");
  printf("rows=%lld  Q2: %s\n", static_cast<long long>(dataset.d30_rows()),
         Q2(&dataset, 0.5).c_str());
  printf("%-8s %12s %12s %14s\n", "stride", "Q1 (build)", "Q2 (use)",
         "map memory");

  for (int stride : {1, 2, 5, 7, 10, 15, 30}) {
    auto engine = D30CsvEngine(&dataset, stride);
    auto session = engine->OpenSession();
    PlannerOptions options;
    options.access_path = engine->Stats().jit_compiler_available()
                              ? AccessPathKind::kJit
                              : AccessPathKind::kInSitu;
    options.shred_policy = ShredPolicy::kFullColumns;
    double q1 = TimedQuery(session.get(), Q1(&dataset, 0.5), options);
    double q2 = TimedQuery(session.get(), Q2(&dataset, 0.5), options);
    int64_t bytes = engine->Stats().table("t")->pmap_bytes;
    printf("%-8d %11.3fs %11.3fs %14s\n", stride, q1, q2,
           HumanBytes(static_cast<uint64_t>(bytes)).c_str());
  }
  printf("\nExpect: Q2 fastest when a tracked column lands on/near col10\n"
         "(stride <= 10); map memory shrinks with stride; Q1 pays for\n"
         "denser tracking.\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
