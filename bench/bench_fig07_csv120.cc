// Figure 7: 120-column CSV with floating-point aggregation, 2nd query sweep.
//   Q1 (warm-up): SELECT MAX(col0)  WHERE col0 < X   (int predicate column)
//   Q2 (timed):   SELECT MAX(col11) WHERE col0 < X   (float64 column)
// Paper result: float conversion makes the raw-access curves steep; DBMS
// (pre-converted) is clearly fastest; shreds only competitive at low
// selectivity.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  TableSpec spec = dataset.D120Spec();
  PrintTitle("Figure 7 — 120-column CSV, floating-point aggregation");
  printf("rows=%lld\n", static_cast<long long>(dataset.d120_rows()));
  PrintSeriesHeader("system", sels);

  struct Row {
    std::string name;
    AccessPathKind access;
    ShredPolicy policy;
  } systems[] = {
      {"DBMS", AccessPathKind::kLoaded, ShredPolicy::kFullColumns},
      {"FullColumns", AccessPathKind::kJit, ShredPolicy::kFullColumns},
      {"ColumnShreds", AccessPathKind::kJit, ShredPolicy::kShreds},
  };
  for (const Row& system : systems) {
    std::vector<double> row;
    for (double sel : sels) {
      auto engine = std::make_unique<RawEngine>();
      auto session = engine->OpenSession();
      std::string path = CheckOk(dataset.D120Csv(), "csv");
      CheckOk(engine->RegisterCsv("t", path, spec.ToSchema()), "register");
      PlannerOptions options;
      options.access_path = system.access;
      options.shred_policy = system.policy;
      if (system.access == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        options.access_path = AccessPathKind::kInSitu;
      }
      Datum lit = spec.SelectivityLiteral(0, sel);
      std::string q1 = "SELECT MAX(col0) FROM t WHERE col0 < " + lit.ToString();
      std::string q2 =
          "SELECT MAX(col11) FROM t WHERE col0 < " + lit.ToString();
      TimedQuery(session.get(), q1, options);
      row.push_back(TimedQuery(session.get(), q2, options));
    }
    PrintSeriesRow(system.name, row, sels);
  }
  printf("\nExpect: DBMS flat and fastest; shreds track DBMS only at low\n"
         "selectivity, then rise steeply (float conversion cost).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
