// Ablation: vectorized batch size (§3 — RAW "exploits vectorized columnar
// processing to achieve better utilization of CPU data caches").
// Sweeps the batch row count for the filter+aggregate pipeline over an
// in-memory table, isolating the execution engine from raw-file access.

#include <benchmark/benchmark.h>

#include "columnar/aggregate.h"
#include "columnar/filter.h"
#include "columnar/in_memory_table.h"
#include "common/rng.h"

namespace raw {
namespace {

const InMemoryTable& TestTable() {
  static const InMemoryTable* kTable = [] {
    Schema schema{{"a", DataType::kInt32}, {"b", DataType::kFloat64}};
    auto* table = new InMemoryTable(schema);
    Rng rng(7);
    ColumnBatch batch(schema);
    auto a = std::make_shared<Column>(DataType::kInt32);
    auto b = std::make_shared<Column>(DataType::kFloat64);
    for (int64_t i = 0; i < 2000000; ++i) {
      a->Append<int32_t>(rng.NextInt32(0, 999999999));
      b->Append<double>(rng.NextDouble());
    }
    batch.AddColumn(a);
    batch.AddColumn(b);
    if (!table->AppendBatch(batch).ok()) abort();
    return table;
  }();
  return *kTable;
}

void BM_FilterAggSweep(benchmark::State& state) {
  const InMemoryTable& table = TestTable();
  int64_t batch_rows = state.range(0);
  for (auto _ : state) {
    auto filter = std::make_unique<FilterOperator>(
        table.CreateScan(batch_rows),
        Cmp(CompareOp::kLt, Col(0), Lit(Datum::Int32(400000000))));
    std::vector<AggSpec> specs = {{AggKind::kMax, 1, "m"}};
    AggregateOperator agg(std::move(filter), specs);
    auto result = CollectAll(&agg);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_FilterAggSweep)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raw

BENCHMARK_MAIN();
