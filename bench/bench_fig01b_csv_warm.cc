// Figure 1b: second query over a warm CSV file, selectivity sweep.
//   Q1 (warm-up): SELECT MAX(col0)  FROM t WHERE col0 < X  — builds the
//                 positional map and caches col0.
//   Q2 (timed):   SELECT MAX(col10) FROM t WHERE col0 < X
// Paper result: DBMS fastest (already loaded); JIT ≈ 2x faster than InSitu;
// the "Col7" variants (map tracks column 7, incremental parse to 10) are
// uniformly slower than direct-tracked counterparts.

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Figure 1b — CSV, 2nd query (warm), selectivity sweep");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("system", sels);

  for (const SystemConfig& system : AccessPathSystems(false)) {
    std::vector<double> row;
    bool skipped = false;
    for (double sel : sels) {
      // Fresh engine per point: Q1 warms (not timed), Q2 measured.
      auto engine = D30CsvEngine(&dataset, system.pmap_stride);
      auto session = engine->OpenSession();
      if (system.options.access_path == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        skipped = true;
        break;
      }
      TimedQuery(session.get(), Q1(&dataset, sel), system.options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), system.options));
    }
    if (skipped) {
      printf("%-28s (skipped: no compiler)\n", system.name.c_str());
    } else {
      PrintSeriesRow(system.name, row, sels);
    }
  }
  printf("\nExpect: DBMS flat & fastest; JIT < InSitu (~2x); *-Col7 slower\n"
         "than direct variants (incremental parsing).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
