// Figure 1b: second query over a warm CSV file, selectivity sweep.
//   Q1 (warm-up): SELECT MAX(col0)  FROM t WHERE col0 < X  — builds the
//                 positional map and caches col0.
//   Q2 (timed):   SELECT MAX(col10) FROM t WHERE col0 < X
// Paper result: DBMS fastest (already loaded); JIT ≈ 2x faster than InSitu;
// the "Col7" variants (map tracks column 7, incremental parse to 10) are
// uniformly slower than direct-tracked counterparts.

#include <algorithm>

#include "bench/bench_common.h"

namespace raw::bench {
namespace {

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  std::vector<double> sels = Selectivities();
  PrintTitle("Figure 1b — CSV, 2nd query (warm), selectivity sweep");
  printf("rows=%lld  num_threads=%d  query: %s\n",
         static_cast<long long>(dataset.d30_rows()), BenchNumThreads(),
         Q2(&dataset, 0.5).c_str());
  PrintSeriesHeader("system", sels);

  for (const SystemConfig& system : AccessPathSystems(false)) {
    std::vector<double> row;
    bool skipped = false;
    for (double sel : sels) {
      // Fresh engine per point: Q1 warms (not timed), Q2 measured.
      auto engine = D30CsvEngine(&dataset, system.pmap_stride);
      auto session = engine->OpenSession();
      if (system.options.access_path == AccessPathKind::kJit &&
          !engine->Stats().jit_compiler_available()) {
        skipped = true;
        break;
      }
      TimedQuery(session.get(), Q1(&dataset, sel), system.options);
      row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), system.options));
    }
    if (skipped) {
      printf("%-28s (skipped: no compiler)\n", system.name.c_str());
    } else {
      PrintSeriesRow(system.name, row, sels);
    }
  }
  printf("\nExpect: DBMS flat & fastest; JIT < InSitu (~2x); *-Col7 slower\n"
         "than direct variants (incremental parsing).\n");

  // Fusion ablation: the same warm Q2 at num_threads=1, with the whole
  // scan→filter→aggregate pipeline either compiled into one generated loop
  // (RAW_JIT_FUSION=1) or run through the interpreted operators (=0). Both
  // variants start from identical warm state (pmap + cached col0 from Q1)
  // and read col10 from the file, so the ratio isolates the fusion win.
  printf("\n--- pipeline fusion ablation (num_threads=1, warm) ---\n");
  PrintSeriesHeader("variant", sels);
  PlannerOptions interp;
  interp.shred_policy = ShredPolicy::kFullColumns;
  interp.num_threads = 1;
  interp.populate_shred_cache = false;
  interp.jit_fusion = JitFusion::kOff;
  PlannerOptions fused = interp;
  fused.jit_fusion = JitFusion::kOn;
  std::vector<double> interp_row, fused_row;
  for (double sel : sels) {
    auto engine = D30CsvEngine(&dataset, 10);
    if (!engine->Stats().jit_compiler_available()) {
      printf("(skipped: no compiler)\n");
      return;
    }
    auto session = engine->OpenSession();
    // Warm-up (not timed): builds the positional map and caches col0.
    PlannerOptions warm = interp;
    warm.populate_shred_cache = true;
    TimedQuery(session.get(), Q1(&dataset, sel), warm);
    interp_row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), interp));
    fused_row.push_back(TimedQuery(session.get(), Q2(&dataset, sel), fused));
  }
  PrintSeriesRow("JIT-interpreted-1t", interp_row, sels);
  PrintSeriesRow("JIT-fused-1t", fused_row, sels);
  printf("%-28s", "fused speedup");
  for (size_t i = 0; i < sels.size(); ++i) {
    double speedup = interp_row[i] / std::max(fused_row[i], 1e-9);
    printf("%9.2fx", speedup);
    char label[48];
    snprintf(label, sizeof(label), "JIT-fused-1t@%g%%/speedup",
             sels[i] * 100);
    RecordJson(label, speedup);
  }
  double interp_total = 0, fused_total = 0;
  for (size_t i = 0; i < sels.size(); ++i) {
    interp_total += interp_row[i];
    fused_total += fused_row[i];
  }
  const double sweep_speedup = interp_total / std::max(fused_total, 1e-9);
  printf("\n%-28s%9.2fx\n", "fused speedup (whole sweep)", sweep_speedup);
  RecordJson("JIT-fused-1t/speedup", sweep_speedup);
  printf("Expect: fused >= 1.3x over interpreted on the sweep; the win grows\n"
         "as selectivity drops (skipped rows never touch the value column)\n"
         "and narrows to ~parity at 100%% (the interpreted path's all-rows\n"
         "pass-through fast path).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
