// Ablation: the JIT template cache (§4.2 discussion — amortizing compilation
// by caching generated libraries keyed by access-path spec).
// Measures GetOrCompile() latency for a cold spec vs a cached one.

#include <benchmark/benchmark.h>

#include "engine/formats/builtin.h"
#include "jit/template_cache.h"

namespace raw {
namespace {

AccessPathSpec SpecForColumns(int first_col) {
  AccessPathSpec spec;
  spec.format = FileFormat::kBinary;
  spec.mode = ScanMode::kSequential;
  spec.row_width = 120;
  for (int c = 0; c < 3; ++c) {
    spec.outputs.push_back(OutputField{first_col + c, DataType::kInt32});
    spec.column_offsets.push_back((first_col + c) * 4);
  }
  return spec;
}

void BM_CompileColdSpec(benchmark::State& state) {
  EnsureBuiltinFormatDriversRegistered();
  JitTemplateCache cache;
  if (!cache.compiler_available()) {
    state.SkipWithError("no external compiler");
    return;
  }
  int next = 0;
  for (auto _ : state) {
    auto kernel = cache.GetOrCompile(SpecForColumns(next++));
    if (!kernel.ok()) {
      state.SkipWithError(kernel.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(kernel->entry);
  }
  state.counters["compile_s_total"] = cache.total_compile_seconds();
}
BENCHMARK(BM_CompileColdSpec)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_TemplateCacheHit(benchmark::State& state) {
  EnsureBuiltinFormatDriversRegistered();
  JitTemplateCache cache;
  if (!cache.compiler_available()) {
    state.SkipWithError("no external compiler");
    return;
  }
  auto first = cache.GetOrCompile(SpecForColumns(0));
  if (!first.ok()) {
    state.SkipWithError(first.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto kernel = cache.GetOrCompile(SpecForColumns(0));
    benchmark::DoNotOptimize(kernel->entry);
  }
  state.counters["hits"] = static_cast<double>(cache.hits());
}
BENCHMARK(BM_TemplateCacheHit);

}  // namespace
}  // namespace raw

BENCHMARK_MAIN();
