// Table 2: first-query execution time over the 120-column mixed-type table
// (paper: CSV 380s DBMS vs 216s full/shreds; binary 42s vs 22s).
//   Q1: SELECT MAX(col0) FROM t WHERE col0 < X   (50% selectivity)
// DBMS loads *every* column up front; full columns and shreds read only what
// the query needs (and are identical for Q1, which touches one column).

#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace raw::bench {
namespace {

void RunFormat(Dataset* dataset, bool csv) {
  TableSpec spec = dataset->D120Spec();
  Datum lit = spec.SelectivityLiteral(0, 0.5);
  std::string sql = "SELECT MAX(col0) FROM t WHERE col0 < " + lit.ToString();

  struct Row {
    const char* name;
    AccessPathKind access;
    ShredPolicy policy;
  } rows[] = {
      {"DBMS", AccessPathKind::kLoaded, ShredPolicy::kFullColumns},
      {"FullColumns", AccessPathKind::kJit, ShredPolicy::kFullColumns},
      {"ColumnShreds", AccessPathKind::kJit, ShredPolicy::kShreds},
  };
  for (const Row& row : rows) {
    auto engine = std::make_unique<RawEngine>();
    auto session = engine->OpenSession();
    if (csv) {
      std::string path = CheckOk(dataset->D120Csv(), "d120 csv");
      CheckOk(engine->RegisterCsv("t", path, spec.ToSchema()), "register");
    } else {
      std::string path = CheckOk(dataset->D120Binary(), "d120 bin");
      CheckOk(engine->RegisterBinary("t", path, spec.ToSchema()), "register");
    }
    PlannerOptions options;
    options.access_path = row.access;
    options.shred_policy = row.policy;
    if (row.access == AccessPathKind::kJit &&
        !engine->Stats().jit_compiler_available()) {
      options.access_path = AccessPathKind::kInSitu;
    }
    CheckOk(engine->DropFilePageCache("t"), "drop");
    double compile = 0;
    double seconds = TimedQuery(session.get(), sql, options, &compile);
    PrintKeyValue(std::string(csv ? "CSV    " : "Binary ") + row.name, seconds);
  }
}

void Run() {
  Dataset dataset = CheckOk(Dataset::Open(), "dataset");
  PrintTitle("Table 2 — 1st query over the 120-column table");
  printf("rows=%lld, 120 columns (int32/float64 interleaved)\n",
         static_cast<long long>(dataset.d120_rows()));
  RunFormat(&dataset, /*csv=*/true);
  RunFormat(&dataset, /*csv=*/false);
  printf("\nExpect: DBMS markedly slower on both formats (loads all 120\n"
         "columns); Full == Shreds for the 1st query; CSV slower than binary\n"
         "(conversion cost + larger file).\n");
}

}  // namespace
}  // namespace raw::bench

int main() {
  raw::bench::Run();
  return 0;
}
