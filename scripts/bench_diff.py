#!/usr/bin/env python3
"""Diff two directories of nightly benchmark JSONL results.

Each file holds one JSON object per line: {"key": "<series>", "seconds": x}
(written by bench_common.h when RAW_BENCH_JSON is set). Datapoints are
identified by (file stem, key). Any datapoint slower than the baseline by
more than --threshold (default 10%) is flagged: a GitHub warning annotation
per regression plus a markdown table in $GITHUB_STEP_SUMMARY (or stdout).

Exit code is 0 even when regressions are found — nightly timing on shared
runners is noisy, so the workflow flags instead of failing; use
--fail-on-regression to gate.
"""

import argparse
import json
import os
import sys
from pathlib import Path


def load_dir(path):
    """(file stem, key) -> seconds for every JSONL file under `path`."""
    points = {}
    root = Path(path)
    if not root.is_dir():
        return points
    for file in sorted(root.glob("*.jsonl")) + sorted(root.glob("*.json")):
        for line in file.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "key" not in obj or "seconds" not in obj:
                continue
            points[(file.stem, str(obj["key"]))] = float(obj["seconds"])
    return points


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="directory of previous-run JSONL files")
    parser.add_argument("current", help="directory of this run's JSONL files")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore datapoints faster than this (noise floor)")
    parser.add_argument("--fail-on-regression", action="store_true")
    args = parser.parse_args()

    baseline = load_dir(args.baseline)
    current = load_dir(args.current)

    if not baseline:
        print("No baseline results found — first run, nothing to diff.")
        return 0
    if not current:
        print("ERROR: no current results found", file=sys.stderr)
        return 1

    def is_ratio(key):
        # `.../speedup` datapoints (bench_microkernels) record a unitless
        # scalar-vs-kernels ratio: higher is better, so the regression test
        # inverts, and the seconds noise floor does not apply.
        return key.endswith("speedup")

    rows = []
    regressions = []
    missing = sorted(set(baseline) - set(current))
    for point, now in sorted(current.items()):
        before = baseline.get(point)
        if before is None:
            rows.append((point, before, now, "new"))
            continue
        delta = (now - before) / before if before > 0 else 0.0
        status = f"{delta:+.1%}"
        if is_ratio(point[1]):
            regressed = -delta > args.threshold
        else:
            regressed = (max(before, now) >= args.min_seconds
                         and delta > args.threshold)
        if regressed:
            status += " REGRESSION"
            regressions.append((point, before, now, delta))
        rows.append((point, before, now, status))

    lines = ["| benchmark | key | baseline | current | change |",
             "| --- | --- | --- | --- | --- |"]
    for (stem, key), before, now, status in rows:
        unit = "x" if is_ratio(key) else "s"
        before_s = f"{before:.3f}{unit}" if before is not None else "—"
        lines.append(
            f"| {stem} | {key} | {before_s} | {now:.3f}{unit} | {status} |")
    # A datapoint that vanished is as suspicious as a slow one: a renamed
    # series or a bench that stopped emitting must not look like a clean run.
    for (stem, key) in missing:
        lines.append(f"| {stem} | {key} | {baseline[(stem, key)]:.3f}s | — "
                     "| MISSING |")
    summary = "\n".join(
        [f"## Nightly benchmark diff ({len(regressions)} regression(s) "
         f">{args.threshold:.0%}, {len(missing)} missing datapoint(s))",
         ""] + lines)

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(summary + "\n")
    print(summary)

    for (stem, key), before, now, delta in regressions:
        # GitHub annotation: shows on the workflow run page.
        unit = "x" if is_ratio(key) else "s"
        print(f"::warning title=Bench regression::{stem} / {key}: "
              f"{before:.3f}{unit} -> {now:.3f}{unit} ({delta:+.1%})")
    for (stem, key) in missing:
        print(f"::warning title=Bench datapoint missing::{stem} / {key}: "
              f"present in baseline, absent from this run")

    if (regressions or missing) and args.fail_on_regression:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
