#!/usr/bin/env python3
"""Smoke-test a running rawd daemon over its wire protocol.

Speaks the length-framed protocol from src/serve/wire.h with nothing but the
Python stdlib: Hello as an interactive client, a pipelined burst of queries
against the --demo table, a STATS round-trip (the response must be valid
JSON carrying the engine's introspection sections), then Goodbye. Exits
non-zero if any frame is malformed, any query errors, or fewer responses
than queries come back — shed (OVERLOADED) responses are counted as
answered for liveness purposes but reported separately.

Usage: rawd_smoke.py PORT [BURST]
"""

import json
import socket
import struct
import sys

KHELLO, KQUERY, KGOODBYE, KSTATS = 1, 2, 3, 4
KHELLO_OK, KRESULT, KERROR, KOVERLOADED, KGOODBYE_OK = 128, 129, 130, 131, 132
KSTATS_OK = 133

QUERY = b"SELECT COUNT(*), MAX(value) FROM demo WHERE value > 1.0"


def send_frame(sock, frame_type, payload=b""):
    sock.sendall(struct.pack("<IB", len(payload), frame_type) + payload)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        buf += chunk
    return buf


def recv_frame(sock):
    length, frame_type = struct.unpack("<IB", recv_exact(sock, 5))
    if length > 64 << 20:
        raise ValueError(f"oversized frame: {length} bytes")
    return frame_type, recv_exact(sock, length)


def main():
    port = int(sys.argv[1])
    burst = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    sock.settimeout(30)

    send_frame(sock, KHELLO, struct.pack("<B", 0))  # priority: interactive
    frame_type, _ = recv_frame(sock)
    assert frame_type == KHELLO_OK, f"expected HelloOk, got {frame_type}"

    # Pipelined burst: all queries on the wire before reading any response.
    for i in range(burst):
        payload = struct.pack("<QI", i + 1, 10000)  # id, deadline_ms
        payload += struct.pack("<I", len(QUERY)) + QUERY
        send_frame(sock, KQUERY, payload)

    answered = shed = 0
    seen_ids = set()
    for _ in range(burst):
        frame_type, payload = recv_frame(sock)
        (request_id,) = struct.unpack_from("<Q", payload)
        seen_ids.add(request_id)
        if frame_type == KRESULT:
            answered += 1
        elif frame_type == KOVERLOADED:
            shed += 1
        elif frame_type == KERROR:
            code, msg_len = struct.unpack_from("<II", payload, 8)
            msg = payload[16 : 16 + msg_len].decode("utf-8", "replace")
            sys.exit(f"query {request_id} failed: code={code} {msg}")
        else:
            sys.exit(f"unexpected frame type {frame_type}")

    assert seen_ids == set(range(1, burst + 1)), f"missing ids: {seen_ids}"
    assert answered >= 1, "every query was shed — burst proved nothing"

    # STATS: served inline on the event loop, must work even under load.
    send_frame(sock, KSTATS)
    frame_type, payload = recv_frame(sock)
    assert frame_type == KSTATS_OK, f"expected StatsResult, got {frame_type}"
    (json_len,) = struct.unpack_from("<I", payload)
    stats = json.loads(payload[4 : 4 + json_len].decode("utf-8"))
    for key in ("shred_cache", "result_cache", "materializer", "admission",
                "tables"):
        assert key in stats, f"STATS json missing {key!r}: {stats.keys()}"
    assert stats["admission"]["admitted"] >= answered + shed
    demo = [t for t in stats["tables"] if t["name"] == "demo"]
    assert demo and demo[0]["scans"] >= 1, f"demo table heat missing: {demo}"

    send_frame(sock, KGOODBYE)
    frame_type, _ = recv_frame(sock)
    assert frame_type == KGOODBYE_OK, f"expected GoodbyeOk, got {frame_type}"
    sock.close()
    print(f"rawd smoke ok: {answered} answered, {shed} shed of {burst}; "
          f"stats: {len(stats['tables'])} tables, "
          f"result_cache hits={stats['result_cache']['hits']}")


if __name__ == "__main__":
    main()
