# Resolves GoogleTest so a clean checkout builds without network access:
#   1. the distro source tree at /usr/src/googletest (Debian/Ubuntu
#      libgtest-dev) — built with our exact compiler and flags,
#   2. an installed GTest package (explicitly ignoring PATH-derived prefixes
#      so a conda/toolchain env on PATH cannot inject an ABI-mismatched build),
#   3. FetchContent from GitHub as the online fallback.
# Afterwards GTest::gtest and GTest::gtest_main exist either way.

if(EXISTS "/usr/src/googletest/CMakeLists.txt")
  message(STATUS "raw: building GTest from /usr/src/googletest")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest "${CMAKE_BINARY_DIR}/_deps/system-googletest"
                   EXCLUDE_FROM_ALL)
else()
  find_package(GTest QUIET NO_CMAKE_ENVIRONMENT_PATH NO_SYSTEM_ENVIRONMENT_PATH)
  if(GTest_FOUND)
    message(STATUS "raw: using installed GTest ${GTest_VERSION}")
  else()
    message(STATUS "raw: fetching GTest with FetchContent")
    include(FetchContent)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    FetchContent_MakeAvailable(googletest)
  endif()
endif()

foreach(_raw_gt_target gtest gtest_main)
  if(NOT TARGET GTest::${_raw_gt_target} AND TARGET ${_raw_gt_target})
    add_library(GTest::${_raw_gt_target} ALIAS ${_raw_gt_target})
  endif()
endforeach()

if(NOT TARGET GTest::gtest_main)
  message(FATAL_ERROR "raw: could not resolve GoogleTest; install libgtest-dev "
                      "or allow network access for FetchContent")
endif()
