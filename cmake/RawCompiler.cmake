# Compiler-wide knobs: ccache, warnings, sanitizers.

# Opt-in default only: an explicit -DCMAKE_CXX_COMPILER_LAUNCHER (including
# an empty one, to disable ccache) always wins.
if(NOT DEFINED CMAKE_CXX_COMPILER_LAUNCHER)
  find_program(RAW_CCACHE_PROGRAM ccache)
  if(RAW_CCACHE_PROGRAM)
    set(CMAKE_CXX_COMPILER_LAUNCHER "${RAW_CCACHE_PROGRAM}")
    message(STATUS "raw: using ccache at ${RAW_CCACHE_PROGRAM}")
  endif()
endif()

set(RAW_WARNING_FLAGS -Wall -Wextra)
if(RAW_WERROR)
  list(APPEND RAW_WARNING_FLAGS -Werror)
endif()

# Sanitizer flags are global (not per-target) so that third-party code built
# from source (GoogleTest, Benchmark) is instrumented consistently with ours.
if(RAW_SANITIZE)
  string(REPLACE ";" "," _raw_san "${RAW_SANITIZE}")
  add_compile_options(-fsanitize=${_raw_san} -fno-omit-frame-pointer
                      -fno-sanitize-recover=all)
  add_link_options(-fsanitize=${_raw_san})
  message(STATUS "raw: sanitizers enabled: ${_raw_san}")
endif()
