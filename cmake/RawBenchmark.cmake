# Resolves Google Benchmark for the three microbenchmark ablations.
# Preference order mirrors RawGoogleTest.cmake: installed package first
# (ignoring PATH-derived prefixes such as conda), then a tolerant download +
# FetchContent. Unlike FetchContent_MakeAvailable's built-in download, a
# network failure here is NOT fatal: RAW_HAVE_BENCHMARK is set OFF and the
# gbench targets are dropped (bench/CMakeLists.txt warns with the list), so
# offline builds still get everything else.

set(RAW_HAVE_BENCHMARK OFF)

find_package(benchmark CONFIG QUIET NO_CMAKE_ENVIRONMENT_PATH NO_SYSTEM_ENVIRONMENT_PATH)
if(benchmark_FOUND)
  message(STATUS "raw: using installed Google Benchmark ${benchmark_VERSION}")
else()
  set(_raw_gb_sha256 6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
  set(_raw_gb_tar "${CMAKE_BINARY_DIR}/_deps/benchmark-v1.8.3.tar.gz")
  if(NOT EXISTS "${_raw_gb_tar}")
    message(STATUS "raw: downloading Google Benchmark v1.8.3")
    file(DOWNLOAD
      https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
      "${_raw_gb_tar}" STATUS _raw_gb_status)
    list(GET _raw_gb_status 0 _raw_gb_code)
    if(NOT _raw_gb_code EQUAL 0)
      file(REMOVE "${_raw_gb_tar}")
    endif()
  endif()
  if(EXISTS "${_raw_gb_tar}")
    file(SHA256 "${_raw_gb_tar}" _raw_gb_actual)
    if(NOT _raw_gb_actual STREQUAL _raw_gb_sha256)
      message(WARNING "raw: Google Benchmark download hash mismatch; discarding")
      file(REMOVE "${_raw_gb_tar}")
    else()
      include(FetchContent)
      set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
      set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
      FetchContent_Declare(benchmark
        URL "${_raw_gb_tar}"
        URL_HASH SHA256=${_raw_gb_sha256})
      FetchContent_MakeAvailable(benchmark)
    endif()
  endif()
endif()

if(TARGET benchmark::benchmark)
  set(RAW_HAVE_BENCHMARK ON)
  # --benchmark_min_time grammar changed at 1.8: older releases reject the
  # '0.01s' suffix form, 1.8+ deprecates the bare-number form. The FetchContent
  # path is pinned to 1.8.3 (benchmark_VERSION unset there).
  if(DEFINED benchmark_VERSION AND benchmark_VERSION VERSION_LESS 1.8)
    set(RAW_GBENCH_MIN_TIME "--benchmark_min_time=0.01")
  else()
    set(RAW_GBENCH_MIN_TIME "--benchmark_min_time=0.01s")
  endif()
endif()
